"""CI gate: fail the build when a measured contract regresses.

Absolute wall-clock numbers are machine-dependent, so every gate
compares a machine-normalised quantity from one and the same run:

* **E12 (fast path)** — the speedup ratio (fast path on / off).  Fails
  when it drops more than ``TOLERANCE`` below the committed baseline
  (``benchmarks/baseline_e12.json``) or under the hard 2x floor.
* **E14 (obs plane)** — the scrape-overhead percentage (obs on vs off,
  same seed, min of reps) and the bit-identity verdict.  Fails when
  overhead reaches ``E14_MAX_OVERHEAD_PCT`` or the seeded run was
  perturbed.  Gated only when ``BENCH_E14.json`` is present, so the
  fast-path gate keeps working on partial benchmark runs.
* **E16 (workload suite)** — the reproducibility verdicts: per-scenario
  digests identical across worker counts, paired run artifacts diff
  clean, and every scenario completed flows.  Gated only when
  ``BENCH_E16.json`` is present.

Usage (after the benchmark smoke run has written the BENCH files)::

    python benchmarks/check_regression.py [path/to/BENCH_E12.json]
"""

from __future__ import annotations

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE = os.path.join(HERE, "baseline_e12.json")
DEFAULT_CURRENT = os.path.join(os.path.dirname(HERE), "BENCH_E12.json")

TOLERANCE = 0.30   # >30% speedup regression vs baseline fails
HARD_FLOOR = 2.0   # E12's contract, machine-independent

E14_CURRENT = os.path.join(os.path.dirname(HERE), "BENCH_E14.json")
E14_MAX_OVERHEAD_PCT = 5.0   # E14's contract: scrapes cost < 5% wall

E16_CURRENT = os.path.join(os.path.dirname(HERE), "BENCH_E16.json")


def check_e14() -> int:
    """Gate the obs plane when its benchmark ran; 0 = pass."""
    if not os.path.exists(E14_CURRENT):
        print("obs gate: BENCH_E14.json absent, skipping")
        return 0
    with open(E14_CURRENT) as fh:
        current = json.load(fh)
    overhead = current["overhead_pct"]
    identical = current["identical"]
    print(f"obs plane: scrape overhead {overhead:.2f}% "
          f"(budget {E14_MAX_OVERHEAD_PCT:.1f}%), "
          f"bit-identical={identical}")
    if not identical:
        print("FAIL: obs plane perturbed the seeded run")
        return 1
    if overhead >= E14_MAX_OVERHEAD_PCT:
        print(f"FAIL: obs scrape overhead {overhead:.2f}% at or above "
              f"{E14_MAX_OVERHEAD_PCT:.1f}%")
        return 1
    print("OK: obs plane within budget")
    return 0


def check_e16() -> int:
    """Gate the workload suite when its benchmark ran; 0 = pass."""
    if not os.path.exists(E16_CURRENT):
        print("workload gate: BENCH_E16.json absent, skipping")
        return 0
    with open(E16_CURRENT) as fh:
        current = json.load(fh)
    identical = current["identical"]
    diff_clean = current["diff_clean"]
    scenarios = current["scenarios"]
    print(f"workload suite: {len(scenarios)} scenario(s), "
          f"digests identical across worker counts={identical}, "
          f"paired diffs clean={diff_clean}")
    if not identical:
        print("FAIL: workload suite digests depend on the worker count")
        return 1
    if not diff_clean:
        print("FAIL: paired workload run artifacts diverged")
        return 1
    starved = [name for name, s in sorted(scenarios.items())
               if s["flows_completed"] <= 0]
    if starved:
        print(f"FAIL: scenario(s) completed no flows: {starved}")
        return 1
    print("OK: workload suite reproducible and productive")
    return 0


def main(argv) -> int:
    current_path = argv[1] if len(argv) > 1 else DEFAULT_CURRENT
    try:
        with open(current_path) as fh:
            current = json.load(fh)
    except OSError as exc:
        print(f"regression gate: cannot read {current_path}: {exc}")
        return 1
    with open(BASELINE) as fh:
        baseline = json.load(fh)

    speedup = current["speedup"]
    base_speedup = baseline["speedup"]
    floor = base_speedup * (1.0 - TOLERANCE)
    print(f"fast-path speedup: current {speedup:.2f}x, "
          f"baseline {base_speedup:.2f}x, "
          f"floor {floor:.2f}x (tolerance {TOLERANCE:.0%}), "
          f"hard floor {HARD_FLOOR:.1f}x")
    if speedup < HARD_FLOOR:
        print(f"FAIL: speedup {speedup:.2f}x below hard floor "
              f"{HARD_FLOOR:.1f}x")
        return 1
    if speedup < floor:
        print(f"FAIL: speedup {speedup:.2f}x regressed more than "
              f"{TOLERANCE:.0%} from baseline {base_speedup:.2f}x")
        return 1
    print("OK: fast path within budget")
    rc = check_e14()
    return rc if rc else check_e16()


if __name__ == "__main__":
    sys.exit(main(sys.argv))
