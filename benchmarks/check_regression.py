"""CI gate: fail the build when the datapath fast path regresses.

Absolute packets-per-wall-second numbers are machine-dependent, so the
gate compares the *speedup ratio* (fast path on / off from the very
same run), which normalises machine speed out.  Two conditions fail
the build:

* the current speedup dropped more than ``TOLERANCE`` relative to the
  committed baseline (``benchmarks/baseline_e12.json``), or
* the current speedup is below the hard floor of 2x that E12 promises.

Usage (after the benchmark smoke run has written ``BENCH_E12.json``)::

    python benchmarks/check_regression.py [path/to/BENCH_E12.json]
"""

from __future__ import annotations

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE = os.path.join(HERE, "baseline_e12.json")
DEFAULT_CURRENT = os.path.join(os.path.dirname(HERE), "BENCH_E12.json")

TOLERANCE = 0.30   # >30% speedup regression vs baseline fails
HARD_FLOOR = 2.0   # E12's contract, machine-independent


def main(argv) -> int:
    current_path = argv[1] if len(argv) > 1 else DEFAULT_CURRENT
    try:
        with open(current_path) as fh:
            current = json.load(fh)
    except OSError as exc:
        print(f"regression gate: cannot read {current_path}: {exc}")
        return 1
    with open(BASELINE) as fh:
        baseline = json.load(fh)

    speedup = current["speedup"]
    base_speedup = baseline["speedup"]
    floor = base_speedup * (1.0 - TOLERANCE)
    print(f"fast-path speedup: current {speedup:.2f}x, "
          f"baseline {base_speedup:.2f}x, "
          f"floor {floor:.2f}x (tolerance {TOLERANCE:.0%}), "
          f"hard floor {HARD_FLOOR:.1f}x")
    if speedup < HARD_FLOOR:
        print(f"FAIL: speedup {speedup:.2f}x below hard floor "
              f"{HARD_FLOOR:.1f}x")
        return 1
    if speedup < floor:
        print(f"FAIL: speedup {speedup:.2f}x regressed more than "
              f"{TOLERANCE:.0%} from baseline {base_speedup:.2f}x")
        return 1
    print("OK: fast path within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
