"""CI gate: fail the build when a measured contract regresses.

Absolute wall-clock numbers are machine-dependent, so every gate
compares a machine-normalised quantity from one and the same run:

* **E12 (fast path)** — the speedup ratio (fast path on / off).  Fails
  when it drops more than ``TOLERANCE`` below the committed baseline
  (``benchmarks/baseline_e12.json``) or under the hard 2x floor.
* **E14 (obs plane)** — the scrape-overhead percentage (obs on vs off,
  same seed, min of reps) and the bit-identity verdict.  Fails when
  overhead reaches ``E14_MAX_OVERHEAD_PCT`` or the seeded run was
  perturbed.  Gated only when ``BENCH_E14.json`` is present, so the
  fast-path gate keeps working on partial benchmark runs.
* **E15 (controller cluster)** — the crash-recovery verdicts: every
  run delivered 100% before and after the crash with clean cluster
  invariants, 2- and 3-controller failover completed within the
  recovery SLO (sim time, machine-independent), and recovery never
  degraded as the cluster grew.  Gated only when ``BENCH_E15.json`` is
  present.
* **E16 (workload suite)** — the reproducibility verdicts: per-scenario
  digests identical across worker counts, paired run artifacts diff
  clean, and every scenario completed flows.  Gated only when
  ``BENCH_E16.json`` is present.
* **E17 (sharded kernel)** — bit-identity of the merged observables
  across shard counts and coordinators (gated on every machine, and
  against the committed reference digest in
  ``benchmarks/baseline_e17.json``), plus the 4-shard speedup floor —
  a pure ratio from one run, gated only on machines with at least
  ``E17_MIN_CPUS`` CPUs (starved CI runners cannot parallelise and
  would fail vacuously).  Gated only when ``BENCH_E17.json`` is
  present.
* **E18 (trace plane)** — the tracing-overhead percentage at the
  always-on sampling config (1-in-8, min of reps) and three
  bit-identity verdicts: single-process observables, sharded merged
  digest, and clustered dataplane digest, each with tracing on vs
  off.  Also requires that the merged sharded artifact contained
  boundary-crossing traces and the clustered fault run produced a
  handover critical path.  Gated only when ``BENCH_E18.json`` is
  present.

Usage (after the benchmark smoke run has written the BENCH files)::

    python benchmarks/check_regression.py [path/to/BENCH_E12.json]
"""

from __future__ import annotations

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE = os.path.join(HERE, "baseline_e12.json")
DEFAULT_CURRENT = os.path.join(os.path.dirname(HERE), "BENCH_E12.json")

TOLERANCE = 0.30   # >30% speedup regression vs baseline fails
HARD_FLOOR = 2.0   # E12's contract, machine-independent

E14_CURRENT = os.path.join(os.path.dirname(HERE), "BENCH_E14.json")
E14_MAX_OVERHEAD_PCT = 5.0   # E14's contract: scrapes cost < 5% wall

E15_CURRENT = os.path.join(os.path.dirname(HERE), "BENCH_E15.json")

E16_CURRENT = os.path.join(os.path.dirname(HERE), "BENCH_E16.json")

E17_CURRENT = os.path.join(os.path.dirname(HERE), "BENCH_E17.json")
E17_BASELINE = os.path.join(HERE, "baseline_e17.json")
E17_MIN_CPUS = 4

E18_CURRENT = os.path.join(os.path.dirname(HERE), "BENCH_E18.json")
E18_MAX_OVERHEAD_PCT = 5.0   # E18's contract: sampled tracing < 5% wall


def check_e14() -> int:
    """Gate the obs plane when its benchmark ran; 0 = pass."""
    if not os.path.exists(E14_CURRENT):
        print("obs gate: BENCH_E14.json absent, skipping")
        return 0
    with open(E14_CURRENT) as fh:
        current = json.load(fh)
    overhead = current["overhead_pct"]
    identical = current["identical"]
    print(f"obs plane: scrape overhead {overhead:.2f}% "
          f"(budget {E14_MAX_OVERHEAD_PCT:.1f}%), "
          f"bit-identical={identical}")
    if not identical:
        print("FAIL: obs plane perturbed the seeded run")
        return 1
    if overhead >= E14_MAX_OVERHEAD_PCT:
        print(f"FAIL: obs scrape overhead {overhead:.2f}% at or above "
              f"{E14_MAX_OVERHEAD_PCT:.1f}%")
        return 1
    print("OK: obs plane within budget")
    return 0


def check_e15() -> int:
    """Gate the controller cluster when its benchmark ran; 0 = pass."""
    if not os.path.exists(E15_CURRENT):
        print("cluster gate: BENCH_E15.json absent, skipping")
        return 0
    with open(E15_CURRENT) as fh:
        current = json.load(fh)
    recovery = current["recovery_s"]
    slo = current["recovery_slo_s"]
    summary = ", ".join(f"N={n}: {recovery[n]:.3f}s"
                        for n in sorted(recovery))
    print(f"controller cluster: recovery {summary} "
          f"(failover SLO {slo:.2f}s), clean={current['clean']}, "
          f"delivered={current['delivered']}")
    if not current["clean"]:
        print("FAIL: cluster invariants violated after recovery")
        return 1
    if not current["delivered"]:
        print("FAIL: a cluster run dropped traffic before or after "
              "the crash")
        return 1
    solo = recovery["1"]
    for n in ("2", "3"):
        if recovery[n] > slo:
            print(f"FAIL: {n}-controller failover took "
                  f"{recovery[n]:.3f}s, over the {slo:.2f}s SLO")
            return 1
        if recovery[n] >= solo:
            print(f"FAIL: {n}-controller failover ({recovery[n]:.3f}s) "
                  f"no faster than the single-controller restart "
                  f"({solo:.3f}s)")
            return 1
    print("OK: cluster failover within SLO and faster than a restart")
    return 0


def check_e16() -> int:
    """Gate the workload suite when its benchmark ran; 0 = pass."""
    if not os.path.exists(E16_CURRENT):
        print("workload gate: BENCH_E16.json absent, skipping")
        return 0
    with open(E16_CURRENT) as fh:
        current = json.load(fh)
    identical = current["identical"]
    diff_clean = current["diff_clean"]
    scenarios = current["scenarios"]
    print(f"workload suite: {len(scenarios)} scenario(s), "
          f"digests identical across worker counts={identical}, "
          f"paired diffs clean={diff_clean}")
    if not identical:
        print("FAIL: workload suite digests depend on the worker count")
        return 1
    if not diff_clean:
        print("FAIL: paired workload run artifacts diverged")
        return 1
    starved = [name for name, s in sorted(scenarios.items())
               if s["flows_completed"] <= 0]
    if starved:
        print(f"FAIL: scenario(s) completed no flows: {starved}")
        return 1
    print("OK: workload suite reproducible and productive")
    return 0


def check_e17() -> int:
    """Gate the sharded kernel when its benchmark ran; 0 = pass."""
    if not os.path.exists(E17_CURRENT):
        print("shard gate: BENCH_E17.json absent, skipping")
        return 0
    with open(E17_CURRENT) as fh:
        current = json.load(fh)
    with open(E17_BASELINE) as fh:
        baseline = json.load(fh)
    identical = current["identical"]
    cpus = current.get("cpu_count", 1)
    speedup = current["speedup_4_shards"]
    floor = current.get("min_speedup", baseline["min_speedup"])
    print(f"sharded kernel: digests identical across shard "
          f"counts/coordinators={identical}, 4-shard speedup "
          f"{speedup:.2f}x (floor {floor:.1f}x, gated when "
          f">= {E17_MIN_CPUS} CPUs; this run saw {cpus})")
    if not identical:
        print("FAIL: sharded observables depend on the shard count")
        return 1
    if current["digest"] != baseline["digest"]:
        print(f"FAIL: sharded bench digest {current['digest'][:16]} "
              f"drifted from committed reference "
              f"{baseline['digest'][:16]} — the simulation changed "
              f"behaviour (or refresh baseline_e17.json deliberately)")
        return 1
    if current["flows_completed"] <= 0:
        print("FAIL: sharded bench completed no flows")
        return 1
    if cpus >= E17_MIN_CPUS and speedup < floor:
        print(f"FAIL: 4-shard speedup {speedup:.2f}x below "
              f"{floor:.1f}x on a {cpus}-CPU machine")
        return 1
    print("OK: sharded kernel bit-identical"
          + ("" if cpus >= E17_MIN_CPUS
             else " (speedup floor skipped: too few CPUs)"))
    return 0


def check_e18() -> int:
    """Gate the trace plane when its benchmark ran; 0 = pass."""
    if not os.path.exists(E18_CURRENT):
        print("trace gate: BENCH_E18.json absent, skipping")
        return 0
    with open(E18_CURRENT) as fh:
        current = json.load(fh)
    overhead = current["overhead_pct"]
    identical = current["identical"]
    sample = current.get("sample_every", 1)
    print(f"trace plane: tracing overhead {overhead:.2f}% at 1-in-"
          f"{sample} sampling (budget {E18_MAX_OVERHEAD_PCT:.1f}%), "
          f"bit-identical={identical}, "
          f"sharded={current['sharded_identical']}, "
          f"cluster={current['cluster_identical']}, "
          f"cross-shard traces={current['cross_shard_traces']}")
    if not identical:
        print("FAIL: trace plane perturbed the seeded run")
        return 1
    if not current["sharded_identical"]:
        print("FAIL: tracing changed the sharded observables digest")
        return 1
    if not current["cluster_identical"]:
        print("FAIL: tracing changed the clustered dataplane digest")
        return 1
    if overhead >= E18_MAX_OVERHEAD_PCT:
        print(f"FAIL: tracing overhead {overhead:.2f}% at or above "
              f"{E18_MAX_OVERHEAD_PCT:.1f}%")
        return 1
    if current["cross_shard_traces"] <= 0:
        print("FAIL: no trace crossed a shard boundary")
        return 1
    if current["handover_critical_path_s"] <= 0:
        print("FAIL: clustered fault run recorded no handover "
              "critical path")
        return 1
    print("OK: trace plane within budget and invisible to the runs")
    return 0


def main(argv) -> int:
    current_path = argv[1] if len(argv) > 1 else DEFAULT_CURRENT
    try:
        with open(current_path) as fh:
            current = json.load(fh)
    except OSError as exc:
        print(f"regression gate: cannot read {current_path}: {exc}")
        return 1
    with open(BASELINE) as fh:
        baseline = json.load(fh)

    speedup = current["speedup"]
    base_speedup = baseline["speedup"]
    floor = base_speedup * (1.0 - TOLERANCE)
    print(f"fast-path speedup: current {speedup:.2f}x, "
          f"baseline {base_speedup:.2f}x, "
          f"floor {floor:.2f}x (tolerance {TOLERANCE:.0%}), "
          f"hard floor {HARD_FLOOR:.1f}x")
    if speedup < HARD_FLOOR:
        print(f"FAIL: speedup {speedup:.2f}x below hard floor "
              f"{HARD_FLOOR:.1f}x")
        return 1
    if speedup < floor:
        print(f"FAIL: speedup {speedup:.2f}x regressed more than "
              f"{TOLERANCE:.0%} from baseline {base_speedup:.2f}x")
        return 1
    print("OK: fast path within budget")
    for gate in (check_e14, check_e15, check_e16, check_e17, check_e18):
        rc = gate()
        if rc:
            return rc
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
