"""Shared utilities for the experiment benchmarks (E1–E10).

Each benchmark module regenerates one table or figure from DESIGN.md's
experiment index.  Results are printed to stdout *and* written under
``benchmarks/results/`` so ``pytest benchmarks/ --benchmark-only | tee``
captures them and EXPERIMENTS.md can cite them verbatim.
"""

from __future__ import annotations

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def publish(artifact_id: str, table) -> str:
    """Render ``table``, print it, and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = table.render()
    path = os.path.join(RESULTS_DIR, f"{artifact_id}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)
    return text


def publish_json(bench_id: str, payload: dict) -> dict:
    """Persist machine-readable results for trajectory tracking.

    Two copies are written: ``benchmarks/results/<bench_id>.json``
    (committed history) and ``BENCH_<BENCH_ID>.json`` at the repo root
    (picked up by CI as a build artifact and by the regression gate).
    """
    record = {"bench": bench_id.upper()}
    record.update(payload)
    blob = json.dumps(record, indent=2, sort_keys=True) + "\n"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{bench_id.lower()}.json"),
              "w") as fh:
        fh.write(blob)
    with open(os.path.join(REPO_ROOT, f"BENCH_{bench_id.upper()}.json"),
              "w") as fh:
        fh.write(blob)
    return record


def seed_arp(network) -> None:
    """Static-ARP every host pair so experiments measure forwarding,
    not ARP resolution."""
    hosts = list(network.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)

