"""Ablation A1 — How much of reactive flow setup is controller distance?

DESIGN.md's E1 expectation claims the reactive penalty "grows with
controller latency".  This ablation isolates that variable: identical
topology and workload, controller latency swept 0.1 ms → 10 ms.

Expected shape: first-packet RTT is affine in the control latency with
slope ≈ 4 × path-switches (each of the two switches punts both the echo
request and the reply, each punt costing one control round trip = 2
latencies), while warm RTT is independent of it.
"""

import pytest

from repro.analysis import Series
from repro.core import ZenPlatform
from repro.netem import Topology

from harness import publish, seed_arp

LATENCIES = (0.0001, 0.001, 0.005, 0.01)
SWITCHES = 2


def setup_cost(latency):
    platform = ZenPlatform(
        Topology.linear(SWITCHES, hosts_per_switch=1,
                        bandwidth_bps=1e9, delay=0.00005),
        profile="reactive",
        control_latency=latency,
    ).start()
    seed_arp(platform.net)
    src = platform.host("h1")
    dst = platform.host(f"h{SWITCHES}")
    cold = src.ping(dst.ip, count=1)
    platform.run(5.0)
    assert cold.received == 1
    warm = src.ping(dst.ip, count=3, interval=0.05)
    platform.run(5.0)
    assert warm.received == 3
    return cold.avg_rtt * 1e3, warm.avg_rtt * 1e3


def run_experiment():
    series = Series(
        "A1 — reactive first-packet RTT vs controller latency "
        f"({SWITCHES}-switch path)",
        "control_latency_ms",
        ["first_ping_ms", "warm_ping_ms"],
    )
    data = {}
    for latency in LATENCIES:
        cold, warm = setup_cost(latency)
        data[latency] = (cold, warm)
        series.add_point(latency * 1e3, cold, warm)
    return series, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_a1_control_latency(results, benchmark):
    series, data = results
    publish("a1_control_latency", series)
    benchmark.pedantic(lambda: setup_cost(0.001), rounds=1, iterations=1)
    colds = [data[lat][0] for lat in LATENCIES]
    warms = [data[lat][1] for lat in LATENCIES]
    # Cold setup grows monotonically with latency...
    assert colds == sorted(colds)
    # ...and roughly linearly: slope between the two extreme points is
    # ~8 control latencies (4 punts × 2 one-way trips each).
    slope = (colds[-1] - colds[0]) / ((LATENCIES[-1] - LATENCIES[0]) * 1e3)
    assert 6.0 < slope < 10.0, slope
    # Warm latency is essentially flat in comparison: its spread is a
    # small fraction of the cold spread.
    assert (max(warms) - min(warms)) < (colds[-1] - colds[0]) * 0.35
