"""Ablation A2 — Microflow rules under flow-table pressure.

E2 shows exact-match state grows with flow count; this ablation asks
what happens when it *cannot*: the flow table is capped and the LRU
eviction policy (a real OpenFlow option) must churn entries.

Workload: 60 concurrent microflows through a single reactive
(exact-match) switch whose table holds 16–128 entries, each flow
re-sending periodically.

Expected shape: with capacity ≥ flows, no evictions and no extra
punts.  Under pressure, evictions and controller punts climb steeply —
the working set thrashes.  Delivery still succeeds (the controller
reinstalls), which is exactly why undersized tables show up as control-
plane load rather than loss.
"""

import pytest

from repro.analysis import Series
from repro.core import ZenPlatform
from repro.netem import Topology

from harness import publish, seed_arp

FLOWS = 60
ROUNDS = 5
CAPACITIES = (16, 32, 64, 128)


def run_capacity(capacity):
    platform = ZenPlatform(
        Topology.single(6, bandwidth_bps=1e9),
        profile="reactive",
        exact_match=True,
        table_capacity=capacity,
        eviction_policy="lru",
    ).start()
    seed_arp(platform.net)
    hosts = list(platform.net.hosts.values())
    # Primer so destinations are learnable.
    for i, host in enumerate(hosts):
        host.send_udp(hosts[(i + 1) % len(hosts)].ip, 8, 8, b"p")
    platform.run(1.0)
    dp = platform.switch("s1")
    punts_before = dp.packets_to_controller
    received = [0]
    for host in hosts:
        host.on_udp = lambda pkt, h: received.__setitem__(
            0, received[0] + 1)
    for round_no in range(ROUNDS):
        for n in range(FLOWS):
            src = hosts[n % len(hosts)]
            dst = hosts[(n + 1 + n // len(hosts)) % len(hosts)]
            if dst is src:
                dst = hosts[(n + 2) % len(hosts)]
            src.send_udp(dst.ip, 10000 + n, 9000, b"data")
        platform.run(1.0)
    punts = dp.packets_to_controller - punts_before
    occupancy = sum(len(t) for t in dp.tables)
    return {
        "punts": punts,
        "delivered": received[0],
        "occupancy": occupancy,
    }


def run_experiment():
    series = Series(
        f"A2 — LRU table pressure: {FLOWS} microflows x {ROUNDS} "
        "rounds vs table capacity",
        "capacity",
        ["controller_punts", "delivered", "final_occupancy"],
    )
    data = {}
    for capacity in CAPACITIES:
        out = run_capacity(capacity)
        data[capacity] = out
        series.add_point(capacity, out["punts"], out["delivered"],
                         out["occupancy"])
    return series, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_a2_table_pressure(results, benchmark):
    series, data = results
    publish("a2_table_pressure", series)
    benchmark.pedantic(lambda: run_capacity(32), rounds=1, iterations=1)
    total = FLOWS * ROUNDS
    # Delivery never fails — pressure turns into control load, not loss.
    for out in data.values():
        assert out["delivered"] == total
    # With room for the working set, later rounds ride installed rules:
    # punts stay near one per flow.
    assert data[128]["punts"] <= FLOWS * 2
    # Undersized tables thrash: punts approach one per packet.
    assert data[16]["punts"] > total * 0.6
    # Monotone: less capacity, more punts.
    punts = [data[c]["punts"] for c in CAPACITIES]
    assert punts == sorted(punts, reverse=True)
    # The table never exceeds its cap.
    for capacity, out in data.items():
        assert out["occupancy"] <= capacity + 1  # +1: LLDP punt rule
