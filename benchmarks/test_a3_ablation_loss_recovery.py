"""Ablation A3 — Reliable-transfer cost vs path loss rate.

The link model's loss knob meets the go-back-N transport: a fixed
200 KB transfer crosses a single switch while the path loss rate sweeps
0 → 30 %.

Expected shape: goodput decays faster than (1 - loss) — go-back-N
throws away the whole in-flight window on a gap, so each lost packet
costs up to ``window`` retransmissions plus a timeout stall.  The
retransmission ratio grows superlinearly in the loss rate.  (This is
why real transports moved to selective repeat; the ablation quantifies
what that buys.)
"""

import pytest

from repro.analysis import Series
from repro.dataplane import FlowEntry, Match, Output, PORT_FLOOD
from repro.netem import Network, Topology
from repro.netem.reliable import ReliableReceiver, ReliableSender

from harness import publish

TRANSFER = 200_000  # bytes
LOSSES = (0.0, 0.05, 0.15, 0.30)


def run_loss(loss):
    net = Network(Topology.single(2, bandwidth_bps=20e6,
                                  loss_rate=loss),
                  miss_behaviour="drop", seed=7)
    net.switch("s1").install_flow(
        FlowEntry(Match(), [Output(PORT_FLOOD)], priority=0))
    h1, h2 = net.host("h1"), net.host("h2")
    h1.add_static_arp(h2.ip, h2.mac)
    h2.add_static_arp(h1.ip, h1.mac)
    ReliableReceiver(h2, 7000)
    sender = ReliableSender(h1, h2.ip, 7000, b"\xaa" * TRANSFER,
                            window=8, timeout=0.05, mss=1000)
    net.run(300.0)
    assert sender.complete, f"transfer died at loss={loss}"
    return {
        "time_s": sender.transfer_time,
        "goodput_mbps": sender.goodput_bps / 1e6,
        "retx_ratio": sender.retransmissions / sender.total,
    }


def run_experiment():
    series = Series(
        "A3 — go-back-N 200 KB transfer vs path loss "
        "(20 Mb/s link, window 8)",
        "loss_rate",
        ["transfer_s", "goodput_mbps", "retx_per_segment"],
    )
    data = {}
    for loss in LOSSES:
        out = run_loss(loss)
        data[loss] = out
        series.add_point(loss, out["time_s"], out["goodput_mbps"],
                         out["retx_ratio"])
    return series, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_a3_loss_recovery(results, benchmark):
    series, data = results
    publish("a3_loss_recovery", series)
    benchmark.pedantic(lambda: run_loss(0.05), rounds=1, iterations=1)
    # Goodput decays monotonically with loss...
    goodputs = [data[loss]["goodput_mbps"] for loss in LOSSES]
    assert goodputs == sorted(goodputs, reverse=True)
    # ...and far faster than the raw delivery ratio would suggest:
    # at 30% loss, goodput is under half of (1 - 0.3) x lossless.
    assert data[0.30]["goodput_mbps"] < 0.5 * 0.7 * data[0.0]["goodput_mbps"]
    # Retransmission amplification: each lost segment drags neighbours
    # with it, so retx/segment exceeds the loss rate itself.
    assert data[0.15]["retx_ratio"] > 0.15
    assert data[0.30]["retx_ratio"] > data[0.15]["retx_ratio"]
    # Lossless pays nothing.
    assert data[0.0]["retx_ratio"] == 0.0
