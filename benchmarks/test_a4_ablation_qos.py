"""Ablation A4 — Strict-priority queueing for expedited traffic.

A 10 Mb/s bottleneck carries best-effort bulk at increasing offered
load (0.5× → 1.5× line rate) while EF-marked (DSCP 46) probes cross it.
Measured: EF probe RTT with 1 band (plain FIFO) vs 2 bands (strict
priority).

Expected shape: with FIFO, EF latency explodes once the bulk load
saturates the queue (tens of ms, the full drop-tail queue depth); with
priority bands EF stays at propagation + one serialisation slot
regardless of load.  This is the dataplane-enforcement argument of E10
applied to latency instead of bandwidth.
"""

import pytest

from repro.analysis import Series, mean
from repro.dataplane import FlowEntry, Match, Output, PORT_FLOOD
from repro.netem import CBRStream, FlowSink, Network, Topology
from repro.packet import Ethernet, ICMP, ICMPType, IPv4

from harness import publish

BOTTLENECK = 10e6
LOADS = (0.5, 1.0, 1.5)


def ef_rtt(load_factor, priority_bands):
    topo = Topology()
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.add_link("s1", "s2", bandwidth_bps=BOTTLENECK,
                  queue_capacity=100, priority_bands=priority_bands)
    for name, sw in (("src", "s1"), ("dst", "s2"),
                     ("bulk_src", "s1"), ("bulk_dst", "s2")):
        topo.add_link(topo.add_host(name), sw, bandwidth_bps=100e6)
    net = Network(topo, miss_behaviour="drop")
    for name in net.switches:
        net.switch(name).install_flow(
            FlowEntry(Match(), [Output(PORT_FLOOD)], priority=0))
    hosts = list(net.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    FlowSink(net.host("bulk_dst"), 9000)
    CBRStream(net.host("bulk_src"), net.host("bulk_dst").ip,
              rate_bps=BOTTLENECK * load_factor, packet_size=1000,
              duration=8.0)
    net.run(1.0)
    src, dst = net.host("src"), net.host("dst")
    rtts = []
    send_times = {}

    def on_reply(packet):
        icmp = packet.get(ICMP)
        if icmp is not None and icmp.is_echo_reply:
            rtts.append(net.sim.now - send_times[icmp.seq])

    src.on_receive = on_reply
    for seq in range(10):
        probe = (Ethernet(dst=dst.mac, src=src.mac)
                 / IPv4(src=src.ip, dst=dst.ip, dscp=46)
                 / ICMP(ICMPType.ECHO_REQUEST, ident=1, seq=seq)
                 / b"ef")
        send_times[seq] = net.sim.now + 0.3 * seq
        net.sim.schedule(0.3 * seq, src.send_frame, probe)
    net.run(6.0)
    assert rtts, "EF probes all lost"
    return mean(rtts) * 1e3


def run_experiment():
    series = Series(
        "A4 — EF probe RTT (ms) vs best-effort offered load "
        "(10 Mb/s bottleneck)",
        "bulk_load_factor",
        ["fifo_rtt_ms", "priority_rtt_ms"],
    )
    data = {}
    for load in LOADS:
        fifo = ef_rtt(load, priority_bands=1)
        prio = ef_rtt(load, priority_bands=2)
        data[load] = (fifo, prio)
        series.add_point(load, fifo, prio)
    return series, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_a4_qos(results, benchmark):
    series, data = results
    publish("a4_qos", series)
    benchmark.pedantic(lambda: ef_rtt(1.0, 2), rounds=1, iterations=1)
    # Priority keeps EF flat and fast at every load.
    for load in LOADS:
        assert data[load][1] < 5.0
    # FIFO at overload queues EF behind the full drop-tail backlog.
    assert data[1.5][0] > 20.0
    assert data[1.5][0] > 10 * data[1.5][1]
    # Below saturation the two disciplines are comparable.
    assert data[0.5][0] < 4 * data[0.5][1] + 2.0
