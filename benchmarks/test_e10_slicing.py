"""E10 / Figure 5 — Slice isolation under a misbehaving tenant.

Question: can one tenant's overload depress another tenant's
throughput, with and without dataplane meters enforcing slice caps?

Workload: two slices share one 20 Mb/s bottleneck link.  Tenant A (cap
8 Mb/s) behaves, offering a constant 6 Mb/s.  Tenant B (cap 8 Mb/s)
offers 2→40 Mb/s (sweeping from polite to hostile).

Expected shape: with enforcement, A's goodput stays at its offered
6 Mb/s at every B load, and B is clamped to its 8 Mb/s cap.  Without
enforcement, B's overload saturates the shared queue and A's goodput
collapses — the concrete argument for pushing isolation into the
dataplane instead of trusting tenants.
"""

import pytest

from repro.analysis import Series
from repro.apps import NetworkSlicing, ProactiveRouter
from repro.core import ZenPlatform
from repro.netem import CBRStream, FlowSink, Topology

from harness import publish, seed_arp

BOTTLENECK = 20e6
SLICE_CAP = 8e6
A_OFFER = 6e6
B_OFFERS = (2e6, 8e6, 20e6, 40e6)
MEASURE = 4.0


def build():
    """Two senders on s1, two receivers on s2, one bottleneck link."""
    topo = Topology()
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.add_link("s1", "s2", bandwidth_bps=BOTTLENECK,
                  queue_capacity=50)
    for name in ("a_src", "b_src"):
        topo.add_link(topo.add_host(name), "s1", bandwidth_bps=100e6)
    for name in ("a_dst", "b_dst"):
        topo.add_link(topo.add_host(name), "s2", bandwidth_bps=100e6)
    return topo


def run_point(b_offer, enforce):
    platform = ZenPlatform(build(), profile="bare")
    platform.router = platform.add_app(ProactiveRouter(table_id=1))
    slicing = platform.add_app(
        NetworkSlicing(table_id=0, next_table=1, enforce=enforce)
    )
    platform.start()
    seed_arp(platform.net)
    a_src, b_src = platform.host("a_src"), platform.host("b_src")
    a_dst, b_dst = platform.host("a_dst"), platform.host("b_dst")
    slicing.define_slice("tenant-a", [a_src.ip], rate_bps=SLICE_CAP)
    slicing.define_slice("tenant-b", [b_src.ip], rate_bps=SLICE_CAP)
    # Warm host discovery.
    for src, dst in ((a_src, a_dst), (b_src, b_dst)):
        src.send_udp(dst.ip, 7, 7, b"w")
        dst.send_udp(src.ip, 7, 7, b"w")
    platform.run(1.0)
    a_sink, b_sink = FlowSink(a_dst, 9000), FlowSink(b_dst, 9000)
    CBRStream(a_src, a_dst.ip, rate_bps=A_OFFER, packet_size=1000,
              duration=MEASURE + 1)
    CBRStream(b_src, b_dst.ip, rate_bps=b_offer, packet_size=1000,
              duration=MEASURE + 1)
    platform.run(MEASURE)
    return (a_sink.total_bytes * 8 / MEASURE,
            b_sink.total_bytes * 8 / MEASURE)


def run_experiment():
    series = Series(
        "E10 / Figure 5 — tenant A goodput (offers 6 Mb/s, cap 8) vs "
        "tenant B offered load over a shared 20 Mb/s link",
        "b_offered_mbps",
        ["a_goodput_enforced", "b_goodput_enforced",
         "a_goodput_unenforced", "b_goodput_unenforced"],
    )
    data = {}
    for b_offer in B_OFFERS:
        a_on, b_on = run_point(b_offer, enforce=True)
        a_off, b_off = run_point(b_offer, enforce=False)
        data[b_offer] = (a_on, b_on, a_off, b_off)
        series.add_point(b_offer / 1e6, a_on / 1e6, b_on / 1e6,
                         a_off / 1e6, b_off / 1e6)
    return series, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e10_slicing(results, benchmark):
    series, data = results
    publish("e10_figure5", series)
    benchmark.pedantic(lambda: run_point(20e6, True), rounds=1,
                       iterations=1)
    hostile = data[40e6]
    polite = data[2e6]
    # With meters, A's goodput is immune to B's hostility...
    assert hostile[0] == pytest.approx(A_OFFER, rel=0.1)
    assert polite[0] == pytest.approx(A_OFFER, rel=0.1)
    # ...and B is clamped near its cap.
    assert hostile[1] <= SLICE_CAP * 1.15
    # Without meters, the hostile B crushes A...
    assert hostile[2] < A_OFFER * 0.75
    # ...and takes far more than its share.
    assert hostile[3] > SLICE_CAP * 1.3
    # When B is polite, enforcement changes nothing for anyone.
    assert polite[2] == pytest.approx(A_OFFER, rel=0.1)
    assert polite[3] == pytest.approx(2e6, rel=0.1)
