"""E11 / Figure 6 — Failover under control-channel churn.

Question: how much does a flapping control channel cost when a
dataplane failure needs central repair?

Workload: the E4 scenario — a 100-packet/s CBR stream h1→h2 on a
4-switch ring, the path's first link (s1–s2) cut mid-stream — except
here s1's *control channel* is down when the link dies, for a swept
duration.  The controller re-paths the ring immediately (it hears about
the cut from s2, whose channel is fine), but s1 holds the stale rule
steering traffic into the dead port until its channel returns, the
reconnect handshake completes, and the resync + rebuild install the
detour.  Recovery is therefore pinned to the channel outage:

    recovery ≈ remaining channel downtime + handshake + resync + install

and packets blackholed ≈ recovery × stream rate.  With no channel fault
the scenario degenerates to E4's ``sdn-central`` row (tens of ms).

The keynote's centralisation caveat, quantified: when repair must flow
through the controller, control-plane availability bounds dataplane
recovery.  Determinism check: the same seed and schedule reproduce the
outage byte-for-byte (the property the whole fault subsystem exists
to provide).
"""

import pytest

from repro.analysis import Series
from repro.core import ZenPlatform
from repro.faults import FaultSchedule
from repro.netem import CBRStream, Topology

from harness import publish, seed_arp

PKT_INTERVAL = 0.01   # 100 pkt/s
FAIL_AT_REL = 2.0     # link cut, seconds into the stream
CHANNEL_LEAD = 0.05   # channel drops this long before the link cut
DOWN_FORS = [0.0, 0.2, 0.4, 0.8]  # swept channel outage durations


def run_scenario(channel_down_for, seed=0):
    """Cut s1–s2 while s1's channel is down; return outage metrics."""
    platform = ZenPlatform(
        Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9),
        control_latency=0.002, seed=seed,
    ).start()
    net = platform.net
    seed_arp(net)
    h1, h2 = platform.host("h1"), platform.host("h2")
    h1.send_udp(h2.ip, 7, 7, b"warm")
    h2.send_udp(h1.ip, 7, 7, b"warm")
    platform.run(1.0)

    arrivals = []

    def timestamping(packet, host):
        arrivals.append(net.sim.now)

    h2.bind_udp(9000, timestamping)
    duration = 12.0
    CBRStream(h1, h2.ip, rate_bps=1000 * 8 / PKT_INTERVAL,
              packet_size=1000, duration=duration)

    t_fail = net.sim.now + FAIL_AT_REL
    sched = FaultSchedule(net)
    sched.link_down(t_fail, "s1", "s2")
    if channel_down_for > 0:
        sched.channel_down(t_fail - CHANNEL_LEAD, "s1")
        sched.channel_up(t_fail - CHANNEL_LEAD + channel_down_for, "s1")
    net.run(duration + 2.0)

    before = [t for t in arrivals if t < t_fail]
    after = [t for t in arrivals if t >= t_fail]
    assert before, "stream never started"
    assert after, "stream never recovered"
    gap = after[0] - t_fail
    # Packets emitted during the outage that never reached the sink.
    blackholed = round(duration / PKT_INTERVAL) - len(arrivals)
    connectivity = platform.ping_all(count=1, settle=5.0)
    return {
        "gap": gap,
        "blackholed": blackholed,
        "resyncs": platform.controller.resyncs,
        "connectivity": connectivity,
        "events": net.sim.events_processed,
    }


def run_experiment():
    series = Series(
        "E11 / Figure 6 — recovery after a link cut vs control-channel "
        "outage (100 pkt/s CBR on a 4-ring)",
        "channel_down_ms",
        ["recovery_ms", "blackholed_pkts"],
    )
    data = {}
    for down_for in DOWN_FORS:
        result = run_scenario(down_for)
        data[down_for] = result
        series.add_point(f"{down_for * 1e3:.0f}",
                         result["gap"] * 1e3, result["blackholed"])
    return series, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e11_failover_under_churn(results, benchmark):
    series, data = results
    publish("e11_figure6", series)
    benchmark.pedantic(lambda: run_scenario(0.4), rounds=1, iterations=1)
    # Healthy channel: E4's sdn-central behaviour, tens of ms.
    assert data[0.0]["gap"] < 0.25
    assert data[0.0]["resyncs"] == 0
    # Channel outage pins recovery: monotone in the outage duration...
    gaps = [data[d]["gap"] for d in DOWN_FORS]
    assert gaps == sorted(gaps)
    for down_for in DOWN_FORS[1:]:
        result = data[down_for]
        # ...bounded below by the downtime remaining after the cut and
        # above by downtime + handshake/resync/install slack.
        assert result["gap"] > down_for - CHANNEL_LEAD
        assert result["gap"] < down_for + 0.5
        assert result["resyncs"] == 1
        # Blackholed packets track the outage (one interval of slack
        # each side for phase alignment).
        expected = result["gap"] / PKT_INTERVAL
        assert abs(result["blackholed"] - expected) <= 2
    # Post-resync connectivity equals pre-fault connectivity: full.
    for result in data.values():
        assert result["connectivity"] == 1.0


def test_e11_deterministic_across_runs(results):
    """Same seed + same schedule => identical outage, to the event."""
    a = run_scenario(0.4, seed=42)
    b = run_scenario(0.4, seed=42)
    assert a == b


def test_e11_blackhole_scales_with_flap_frequency(results):
    series, data = results
    # Doubling the outage roughly doubles the loss: the 0.8 s outage
    # blackholes at least 1.5x the 0.4 s outage's packets.
    assert data[0.8]["blackholed"] >= 1.5 * data[0.4]["blackholed"]
