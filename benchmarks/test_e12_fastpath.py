"""E12 — Datapath fast path: microflow cache throughput on deep tables.

Question: what does the exact-match microflow cache buy when flow
tables get deep, and does it change any observable behaviour?

Workload: a k=4 fat-tree under the proactive profile.  Every table 0 is
deepened with 512 high-priority filler rules that never match traffic
(the linear-scan tax real pipelines pay), then a fixed set of host
pairs exchanges repeated UDP flows.  The identical simulation runs
twice — fast path off, then on — and we measure dataplane packets per
*wall-clock* second plus a kernel events-per-second microbench for the
tuple-heap hot loop.

Expected shape: with the cache off every packet re-scans the filler
rules at every hop; with it on, the first packet of each microflow
pays the scan and the rest are one dict probe.  The speedup must be
>= 2x, and every simulation observable (switch counters, flow stats)
must be bit-identical between the two runs — the cache is a pure
performance construct.
"""

import time

import pytest

from repro.analysis import Table
from repro.core import ZenPlatform
from repro.dataplane.flowtable import FlowEntry
from repro.dataplane.match import Match
from repro.netem import Topology
from repro.sim import Simulator

from harness import publish, publish_json, seed_arp

DEEP_PRIORITIES = 64       # filler priority bands above the router rules
ENTRIES_PER_PRIORITY = 8   # 512 never-matching entries per table 0
PACKETS_PER_FLOW = 40
FILLER_ETH_TYPE = 0x86DD   # IPv6: never sent by this workload
MIN_SPEEDUP = 2.0
KERNEL_EVENTS = 200_000


def drive(fast_path):
    """One full fat-tree run; returns (packets/wall-s, observables)."""
    platform = ZenPlatform(
        Topology.fat_tree(4, bandwidth_bps=1e9, delay=0.00005),
        profile="proactive",
        seed=3,
        fast_path=fast_path,
    ).start()
    seed_arp(platform.net)
    hosts = list(platform.net.hosts.values())
    pairs = [(hosts[i], hosts[(i + 5) % len(hosts)])
             for i in range(len(hosts))]
    # Warm the proactive router: one frame each way installs the rules.
    for a, b in pairs:
        a.send_udp(b.ip, 5000, 5000, b"warm")
        b.send_udp(a.ip, 5000, 5000, b"warm")
    platform.run(2.0)
    # Deepen every table 0 with filler the workload must scan past.
    for dp in platform.net.switches.values():
        table = dp.tables[0]
        for i in range(DEEP_PRIORITIES):
            for j in range(ENTRIES_PER_PRIORITY):
                table.insert(FlowEntry(
                    Match(eth_type=FILLER_ETH_TYPE, l4_dst=j),
                    [], priority=1000 + i,
                ))
    # Measured workload: repeated packets per microflow, spread over 1 s.
    sim = platform.sim
    rng = sim.fork_rng()
    for idx, (a, b) in enumerate(pairs):
        for _ in range(PACKETS_PER_FLOW):
            sim.schedule(rng.uniform(0.0, 1.0), a.send_udp,
                         b.ip, 6000 + idx, 7000, b"x" * 64)
    switches = platform.net.switches
    base = sum(dp.packets_forwarded for dp in switches.values())
    hits0 = sum(dp.fast_path_hits for dp in switches.values())
    misses0 = sum(dp.fast_path_misses for dp in switches.values())
    start = time.perf_counter()
    platform.run(2.0)
    wall = time.perf_counter() - start
    forwarded = sum(
        dp.packets_forwarded for dp in switches.values()
    ) - base
    observables = {
        name: (dp.stats(),
               [(t.table_id, t.lookup_count, t.matched_count)
                for t in dp.tables],
               sorted((repr(e.match), e.priority, e.packet_count,
                       e.byte_count)
                      for t in dp.tables for e in t))
        for name, dp in switches.items()
    }
    hits = sum(dp.fast_path_hits for dp in switches.values()) - hits0
    misses = sum(
        dp.fast_path_misses for dp in switches.values()
    ) - misses0
    return {
        "pps": forwarded / wall,
        "wall_s": wall,
        "forwarded": forwarded,
        "events": sim.events_processed,
        "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "observables": observables,
    }


def kernel_events_per_second(n=KERNEL_EVENTS):
    """Raw kernel dispatch rate, with a cancellation-churn component."""
    sim = Simulator(seed=0)
    counter = [0]

    def tick():
        counter[0] += 1

    for i in range(n):
        sim.schedule_at(i * 1e-6, tick)
    churn = [sim.schedule_at(i * 1e-6 + 5e-7, tick)
             for i in range(n // 4)]
    for event in churn[::2]:
        event.cancel()
    start = time.perf_counter()
    sim.run_until_idle()
    wall = time.perf_counter() - start
    return sim.events_processed / wall


def run_experiment():
    off = drive(fast_path=False)
    on = drive(fast_path=True)
    kernel_rate = kernel_events_per_second()
    table = Table(
        "E12 — fast-path throughput, fat-tree k=4, 512 filler rules",
        ["fast_path", "packets_per_wall_s", "wall_s", "forwarded",
         "cache_hit_rate"],
    )
    table.add_row("off", off["pps"], off["wall_s"], off["forwarded"],
                  off["hit_rate"])
    table.add_row("on", on["pps"], on["wall_s"], on["forwarded"],
                  on["hit_rate"])
    return table, off, on, kernel_rate


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e12_fastpath(results, benchmark):
    table, off, on, kernel_rate = results
    publish("e12_fastpath", table)
    speedup = on["pps"] / off["pps"]
    publish_json("E12", {
        "packets_per_wall_s": {"fast_path_off": off["pps"],
                               "fast_path_on": on["pps"]},
        "speedup": speedup,
        "cache_hit_rate": on["hit_rate"],
        "kernel_events_per_s": kernel_rate,
        "forwarded_packets": on["forwarded"],
        "sim_events": on["events"],
    })
    benchmark.pedantic(lambda: drive(True), rounds=1, iterations=1)
    # The cache is semantically invisible: identical seeds produce
    # identical counters whether it is on or off.
    assert on["observables"] == off["observables"]
    assert on["events"] == off["events"]
    assert on["forwarded"] == off["forwarded"]
    # And it pays for itself on deep tables.
    assert on["hit_rate"] > 0.8
    assert speedup >= MIN_SPEEDUP, (
        f"fast path speedup {speedup:.2f}x below {MIN_SPEEDUP}x "
        f"({off['pps']:.0f} -> {on['pps']:.0f} pkts/wall-s)"
    )


def test_e12_kernel_microbench(results):
    _, _, _, kernel_rate = results
    # The tuple-heap hot loop should sustain a healthy dispatch rate
    # even on slow CI machines; this is a smoke floor, not a target.
    assert kernel_rate > 50_000
