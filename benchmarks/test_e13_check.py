"""E13 — Invariant checker: seeded-bug recall and clean-network precision.

Question: does the verification plane find every bug we plant, with
zero false positives on healthy networks, at a cost that permits
online use?

Workload: (1) recall — a bare ring is programmed with each seeded
defect in turn (forwarding loop, dead-port blackhole, slice leak,
firewall bypass) and the checker must flag exactly that defect with a
counterexample packet class; (2) precision — every canned example
scenario plus a fuzz sweep of seeded scenarios must check clean after
convergence; (3) cost — wall-clock per full network check on the
largest clean stack.

Expected shape: 4/4 seeded defects detected, 0 violations across all
clean runs, and a per-check latency in the low milliseconds — cheap
enough to re-run at every convergence event, which is exactly what the
online monitor does.
"""

import time

from repro.analysis import Table
from repro.core import ZenPlatform
from repro.dataplane.actions import Output
from repro.dataplane.flowtable import FlowEntry
from repro.dataplane.match import Match
from repro.netem import Topology
from repro.packet import MACAddress

from repro.check import (
    FirewallCompliance,
    NetworkChecker,
    SliceIsolation,
    example_scenarios,
    generate_scenario,
    run_scenario,
)

from harness import publish, publish_json

FUZZ_SEEDS = 8


def _bare_ring():
    return ZenPlatform(Topology.ring(3, hosts_per_switch=1),
                       profile="bare", seed=1).start()


def _plant(kind):
    """Build a ring with one seeded defect; return (net, checker)."""
    platform = _bare_ring()
    net = platform.net

    def install(switch, match, port):
        net.switches[switch].install_flow(
            FlowEntry(match, [Output(port)], priority=500))

    if kind == "loop":
        mac = MACAddress("02:aa:00:00:00:99")
        for a, b in (("s1", "s2"), ("s2", "s3"), ("s3", "s1")):
            install(a, Match(eth_dst=mac), net.port_of(a, b))
        return net, NetworkChecker()
    if kind == "dead_port":
        install("s1", Match(eth_dst=net.hosts["h2"].mac),
                net.port_of("s1", "s2"))
        net.fail_link("s1", "s2")
        return net, NetworkChecker()
    if kind == "slice_leak":
        h3 = net.hosts["h3"]
        install("s1", Match(eth_dst=h3.mac), net.port_of("s1", "s3"))
        install("s3", Match(eth_dst=h3.mac), net.port_of("s3", "h3"))
        return net, NetworkChecker(
            [SliceIsolation({"blue": ["h1"], "red": ["h3"]})])
    if kind == "firewall_bypass":
        from repro.apps.firewall import Firewall

        firewall = platform.add_app(Firewall(table_id=1, next_table=2))
        firewall.deny(ip_proto=17)
        h2 = net.hosts["h2"]
        install("s1", Match(eth_dst=h2.mac), net.port_of("s1", "s2"))
        install("s2", Match(eth_dst=h2.mac), net.port_of("s2", "h2"))
        return net, NetworkChecker([FirewallCompliance(firewall)])
    raise ValueError(kind)


def test_e13_checker_recall_precision_cost():
    table = Table(
        "Table 7: invariant checker on seeded defects and clean stacks",
        ["case", "expected", "found", "counterexample", "verdict"],
    )

    # -- recall on seeded defects -------------------------------------
    detected = 0
    for kind in ("loop", "dead_port", "slice_leak", "firewall_bypass"):
        net, checker = _plant(kind)
        result = checker.check(net)
        hits = result.of_kind(kind)
        with_cx = [v for v in hits if v.counterexample is not None]
        ok = bool(with_cx)
        detected += ok
        table.add_row(f"seeded {kind}", kind,
                      f"{len(hits)} violation(s)",
                      "yes" if with_cx else "no",
                      "detected" if ok else "MISSED")
        assert ok, f"seeded {kind} not detected"

    # -- precision on clean stacks ------------------------------------
    clean_runs = 0
    false_positives = 0
    for scenario in example_scenarios():
        result = run_scenario(scenario)
        clean_runs += 1
        false_positives += len(result.verdicts["violations"])
    for seed in range(FUZZ_SEEDS):
        result = run_scenario(generate_scenario(seed))
        clean_runs += 1
        false_positives += len(result.verdicts["violations"])
    table.add_row("clean stacks", "0 violations",
                  f"{false_positives} across {clean_runs} runs", "—",
                  "clean" if false_positives == 0 else "NOISY")
    assert false_positives == 0

    # -- cost on the largest clean stack ------------------------------
    scenario = example_scenarios()[-1]  # multipath mesh fabric
    from repro.check.fuzzer import _build_stack

    platform = _build_stack(scenario, fast_path=True)
    platform.start()
    checker = NetworkChecker()
    checker.check(platform.net)  # warm any import-time costs
    start = time.perf_counter()
    reps = 5
    for _ in range(reps):
        result = checker.check(platform.net)
    per_check_ms = (time.perf_counter() - start) / reps * 1e3
    table.add_row("full-network check", "online-usable",
                  f"{per_check_ms:.1f} ms", "—",
                  f"{result.probes_run} probes")

    print()
    print(publish("Table 7", table))
    publish_json("E13", {
        "seeded_detected": detected,
        "clean_runs": clean_runs,
        "false_positives": false_positives,
        "per_check_ms": round(per_check_ms, 3),
    })
