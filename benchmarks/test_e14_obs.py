"""E14 — Observability plane: scrape overhead, health, run diffing.

Question: what does the full ``repro.obs`` plane — the 100 ms metrics
scraper, per-channel backlog probes, and online SLO evaluation — cost,
and does attaching it change anything the simulation computes?

Workload: the E12 fat-tree (k=4, proactive profile) driving repeated
UDP microflows, telemetry enabled in both arms.  The identical seeded
run executes twice per rep — obs plane absent, then attached with the
stock SLO set at a 100 ms sim scrape interval — and the wall-clock
delta is the plane's overhead.  Reps are interleaved and each arm takes
its minimum wall time, which strips scheduler noise the way
min-of-reps microbenchmarks do.

Contract: overhead below 5% of wall time, and every simulation
observable (switch counters, table stats, flow entries) bit-identical
between the arms — scrapes ride the kernel's read-only observer
side-channel, so they must be invisible to the run.

A second scenario exercises the health/diff story end to end: a clean
ring run versus one with a 2 s control-channel outage.  The outage must
fire the stale-switch SLO, and ``diff_runs`` must flag the health
regression while diffing the clean run against itself stays empty —
the property the CI baseline gate leans on.
"""

import os
import time

import pytest

from repro.analysis import Table
from repro.core import ZenPlatform
from repro.faults import FaultSchedule
from repro.netem import Topology
from repro.obs import ObsPlane, diff_runs, render_dashboard
from repro.telemetry import Telemetry

from harness import RESULTS_DIR, publish, publish_json, seed_arp

PACKETS_PER_FLOW = 40
SCRAPE_INTERVAL = 0.1      # the acceptance criterion's 100 ms
MAX_OVERHEAD_PCT = 5.0
REPS = 3


def drive(obs: bool):
    """One seeded fat-tree run; returns (wall_s, observables, plane)."""
    platform = ZenPlatform(
        Topology.fat_tree(4, bandwidth_bps=1e9, delay=0.00005),
        profile="proactive",
        seed=3,
        telemetry=Telemetry(profile=False),
    ).start()
    plane = ObsPlane(platform, interval=SCRAPE_INTERVAL) if obs else None
    seed_arp(platform.net)
    hosts = list(platform.net.hosts.values())
    pairs = [(hosts[i], hosts[(i + 5) % len(hosts)])
             for i in range(len(hosts))]
    for a, b in pairs:
        a.send_udp(b.ip, 5000, 5000, b"warm")
        b.send_udp(a.ip, 5000, 5000, b"warm")
    platform.run(2.0)
    sim = platform.sim
    rng = sim.fork_rng()
    for idx, (a, b) in enumerate(pairs):
        for _ in range(PACKETS_PER_FLOW):
            sim.schedule(rng.uniform(0.0, 1.0), a.send_udp,
                         b.ip, 6000 + idx, 7000, b"x" * 64)
    start = time.perf_counter()
    platform.run(2.0)
    wall = time.perf_counter() - start
    if plane is not None:
        plane.finish()
    observables = {
        name: (dp.stats(),
               [(t.table_id, t.lookup_count, t.matched_count)
                for t in dp.tables],
               sorted((repr(e.match), e.priority, e.packet_count,
                       e.byte_count)
                      for t in dp.tables for e in t))
        for name, dp in platform.net.switches.items()
    }
    return wall, observables, plane


def ring_artifact(churn: bool):
    """A ring run frozen to an artifact; with ``churn``, a 2 s channel
    outage long enough to fire the stale-switch SLO."""
    platform = ZenPlatform(
        Topology.ring(4, hosts_per_switch=1),
        profile="proactive", seed=7,
        telemetry=Telemetry(profile=False),
    ).start()
    plane = ObsPlane(platform, interval=SCRAPE_INTERVAL)
    schedule = FaultSchedule(platform.net)
    plane.watch_faults(schedule)
    seed_arp(platform.net)
    hosts = list(platform.net.hosts.values())
    for i, host in enumerate(hosts):
        host.send_udp(hosts[(i + 1) % len(hosts)].ip, 7, 7, b"e14")
    if churn:
        schedule.channel_flap(platform.sim.now + 0.5, "s1",
                              down_for=2.0, period=3.5, count=1)
    platform.run(6.0)
    plane.finish()
    return plane.artifact(seed=7, churn=churn)


def run_experiment():
    walls = {False: [], True: []}
    observables = {}
    plane = None
    for _ in range(REPS):
        for obs in (False, True):
            wall, obs_state, p = drive(obs)
            walls[obs].append(wall)
            observables[obs] = obs_state
            if p is not None:
                plane = p
    off = min(walls[False])
    on = min(walls[True])
    overhead_pct = (on - off) / off * 100.0
    identical = observables[False] == observables[True]

    clean = ring_artifact(churn=False)
    churn = ring_artifact(churn=True)
    self_diff = diff_runs(clean, clean)
    churn_diff = diff_runs(clean, churn)

    table = Table(
        "E14 — obs plane overhead (fat-tree k=4, 100 ms scrapes) "
        "and run diffing",
        ["measure", "value"],
    )
    table.add_row("wall_s obs off (min of reps)", f"{off:.3f}")
    table.add_row("wall_s obs on (min of reps)", f"{on:.3f}")
    table.add_row("scrape overhead %", f"{overhead_pct:.2f}")
    table.add_row("observables bit-identical", identical)
    table.add_row("series scraped", len(plane.scraper.series))
    table.add_row("scrapes", plane.scraper.scrapes)
    table.add_row("self-diff changed signals", len(self_diff.changed))
    table.add_row("churn-diff regressions", len(churn_diff.regressions))
    table.add_row("churn alerts fired", len(churn.health.alerts))
    return (table, off, on, overhead_pct, identical, plane,
            clean, churn, self_diff, churn_diff)


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e14_obs(results, benchmark):
    (table, off, on, overhead_pct, identical, plane,
     clean, churn, self_diff, churn_diff) = results
    publish("e14_obs", table)
    dashboard = render_dashboard(churn, width=60,
                                 select=["channel_messages",
                                         "controller_",
                                         "obs_channel_backlog"])
    with open(os.path.join(RESULTS_DIR, "e14_dashboard.txt"),
              "w") as fh:
        fh.write(dashboard + "\n")
    publish_json("E14", {
        "wall_s": {"obs_off": off, "obs_on": on},
        "overhead_pct": overhead_pct,
        "identical": identical,
        "scrape_interval_s": SCRAPE_INTERVAL,
        "series": len(plane.scraper.series),
        "scrapes": plane.scraper.scrapes,
        "self_diff_changed": len(self_diff.changed),
        "churn_diff_regressions": len(churn_diff.regressions),
        "churn_alerts": len(churn.health.alerts),
    })
    # One scrape of the full fat-tree registry, for the record.
    benchmark.pedantic(plane.scraper.scrape_now, rounds=1, iterations=1)

    assert identical, "obs plane perturbed the seeded run"
    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"scrape overhead {overhead_pct:.2f}% exceeds "
        f"{MAX_OVERHEAD_PCT}%"
    )
    assert plane.scraper.scrapes >= 20  # 100 ms over >= 2 s measured


def test_e14_health_and_diff(results):
    (_, _, _, _, _, _, clean, churn, self_diff, churn_diff) = results
    # Same artifact diffs empty: the CI baseline-gate property.
    assert self_diff.ok and not self_diff.changed
    # The outage fired the stale-switch objective and the diff saw it.
    assert not churn.health.ok
    assert any(a.slo == "stale-switches" for a in churn.health.alerts)
    assert not churn_diff.ok
    assert any(e.signal.startswith("slo:stale-switches")
               for e in churn_diff.regressions)
    # Clean run stays healthy.
    assert clean.health.ok
