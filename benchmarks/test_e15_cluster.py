"""E15 — Controller cluster: recovery time and throughput vs size.

Question: what does a controller crash cost the network, and how does
that cost change with cluster size?

Workload: a 6-switch ring under full-mesh pings, driven by a ZenCluster
at ``controllers`` in {1, 2, 3}.  In every run the master of the first
switch is crashed; with one controller the network must wait out a
scripted restart (``RESTART_AFTER``) before the rebooted instance
re-adopts and resyncs its switches, while with two or three the
surviving instances detect the death and take mastership of the
orphaned switches themselves.  Recovery is the cluster's own
``on_failover_complete`` measurement: crash time to the instant the
last orphaned switch has a new master (sim time, machine-independent).

Contracts (the regression gate re-checks these from BENCH_E15.json):

* every run delivers 100% before the crash and again after recovery,
  and the cluster invariants check clean at the end;
* a 2- or 3-controller cluster recovers within ``RECOVERY_SLO`` sim
  seconds — the same threshold the obs plane's handover SLO pages on;
* recovery never degrades as the cluster grows: failover beats the
  single-controller restart, and adding a third instance costs nothing
  over the second.
"""

import time

import pytest

from repro.analysis import Table
from repro.check import check_cluster
from repro.cluster import ZenCluster
from repro.netem import Topology

from harness import publish, publish_json

SIZES = (1, 2, 3)
RESTART_AFTER = 0.4    # scripted restart delay for the 1-controller run
RECOVERY_SLO = 0.5     # sim-seconds; mirrors obs.handover_slo(0.5)


def drive(controllers: int) -> dict:
    start = time.perf_counter()
    platform = ZenCluster(Topology.ring(6, hosts_per_switch=1),
                          controllers=controllers,
                          profile="proactive", seed=7)
    platform.start()
    before = platform.ping_all(count=2, settle=5.0)

    cluster = platform.cluster
    recoveries = []
    cluster.on_failover_complete.append(
        lambda node, elapsed: recoveries.append(elapsed)
    )
    victim_dpid = platform.net.switches[
        sorted(platform.net.switches)[0]
    ].dpid
    victim = cluster.master_of(victim_dpid)
    orphaned = len(cluster.node(victim).switches)
    cluster.crash_node(victim)
    if controllers == 1:
        # No survivors: recovery is restart + re-adoption + resync.
        platform.sim.schedule(
            RESTART_AFTER, lambda: cluster.restart_node(victim)
        )
    platform.run(2.0)
    assert cluster.handover_complete()
    handovers = len(cluster.handover_log)
    if controllers > 1:
        # Restore full strength so the post-crash measurement compares
        # like with like (a rebalanced N-instance cluster).
        cluster.restart_node(victim)
        platform.run(1.0)

    after = platform.ping_all(count=2, settle=5.0)
    violations = check_cluster(cluster, platform.net)
    wall = time.perf_counter() - start
    msgs = platform.total_control_messages()
    return {
        "controllers": controllers,
        "victim": victim,
        "orphaned": orphaned,
        "recovery_s": recoveries[0] if recoveries else None,
        "handovers": handovers,
        "delivery_before": before,
        "delivery_after": after,
        "violations": [v.to_dict() for v in violations],
        "wall_s": wall,
        "control_msgs": msgs,
        "msgs_per_s": msgs / wall,
    }


def run_experiment():
    runs = {n: drive(n) for n in SIZES}
    table = Table(
        "E15 — controller cluster: crash recovery vs size, ring(6)",
        ["controllers", "recovery_s", "handovers", "delivery",
         "ctrl msgs", "wall_s"],
    )
    for n, row in runs.items():
        table.add_row(
            n, f"{row['recovery_s']:.3f}", row["handovers"],
            f"{row['delivery_before']:.0%}/{row['delivery_after']:.0%}",
            row["control_msgs"], f"{row['wall_s']:.2f}",
        )
    return table, runs


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e15_cluster(results, benchmark):
    table, runs = results
    publish("e15_cluster", table)
    clean = all(not r["violations"] for r in runs.values())
    delivered = all(
        r["delivery_before"] == 1.0 and r["delivery_after"] == 1.0
        for r in runs.values()
    )
    publish_json("E15", {
        "clean": clean,
        "delivered": delivered,
        "recovery_s": {str(n): runs[n]["recovery_s"] for n in SIZES},
        "handovers": {str(n): runs[n]["handovers"] for n in SIZES},
        "delivery": {
            str(n): {"before": runs[n]["delivery_before"],
                     "after": runs[n]["delivery_after"]}
            for n in SIZES
        },
        "control_msgs": {str(n): runs[n]["control_msgs"] for n in SIZES},
        "msgs_per_s": {str(n): runs[n]["msgs_per_s"] for n in SIZES},
        "wall_s": {str(n): runs[n]["wall_s"] for n in SIZES},
        "recovery_slo_s": RECOVERY_SLO,
        "restart_after_s": RESTART_AFTER,
    })
    benchmark.pedantic(lambda: drive(3), rounds=1, iterations=1)
    assert clean, [r["violations"] for r in runs.values()]
    assert delivered
    for n in SIZES:
        assert runs[n]["recovery_s"] is not None
        assert runs[n]["handovers"] >= runs[n]["orphaned"]
    # Failover must beat the scripted restart, and growing the cluster
    # must not slow recovery down.
    solo = runs[1]["recovery_s"]
    assert solo >= RESTART_AFTER
    for n in (2, 3):
        assert runs[n]["recovery_s"] <= RECOVERY_SLO, (
            f"controllers={n} recovered in {runs[n]['recovery_s']:.3f}s, "
            f"over the {RECOVERY_SLO}s SLO"
        )
        assert runs[n]["recovery_s"] < solo
