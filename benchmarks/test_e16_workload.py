"""E16 — Workload suite: tail FCT and flow-table occupancy.

Question: what do the platform's flows actually experience under
*realistic* load — heavy-tailed datacenter mixes, incast storms, a
carrier WAN breathing through a diurnal cycle — and is the whole
scenario plane reproducible enough to gate on?

Workload: the ``repro.workload`` library scenarios ``dc-heavy-tail``
(fat-tree k=4, elephant/mice Poisson mix), ``incast-storm`` (periodic
8-way fan-in at one aggregator), and ``wan-diurnal`` (carrier WAN,
sinusoidal day curve, one core link flap).  The suite runs twice — one
worker, then two worker processes — and every run freezes into an obs
:class:`~repro.obs.artifact.RunArtifact`.

Contract:

* per-scenario digests are bit-identical across the two suite runs —
  the process fan-out changes wall-clock only;
* ``diff_runs`` between the paired artifacts is clean (the property
  that lets CI diff workload runs against committed baselines);
* every scenario completes flows and reports tail FCT and a non-zero
  flow-table occupancy peak.

Published: per-scenario tail FCT (p50/p95/p99), flow-table peak, flow
counts, and the reproducibility verdicts (``BENCH_E16.json``).
"""

import os

import pytest

from repro.analysis import Table
from repro.obs import RunArtifact, diff_runs
from repro.workload import library, run_suite, suite_digest

from harness import RESULTS_DIR, publish, publish_json

SCENARIOS = ("dc-heavy-tail", "incast-storm", "wan-diurnal")


def fmt_ms(value):
    return f"{value * 1e3:.1f}" if value is not None else "-"


def run_experiment():
    specs = [library()[name] for name in SCENARIOS]
    serial = run_suite(specs, jobs=1)
    parallel = run_suite(specs, jobs=2,
                         out_dir=os.path.join(RESULTS_DIR,
                                              "e16_artifacts"))
    identical = suite_digest(serial) == suite_digest(parallel)
    diffs = {
        a["name"]: diff_runs(RunArtifact.from_dict(a["artifact"]),
                             RunArtifact.from_dict(b["artifact"]))
        for a, b in zip(serial, parallel)
    }

    table = Table(
        "E16 — workload suite: tail FCT and flow-table occupancy "
        "(suite digests compared at 1 vs 2 worker processes)",
        ["scenario", "flows", "fct p50 ms", "fct p95 ms", "fct p99 ms",
         "table peak", "faults", "health"],
    )
    for entry in serial:
        s = entry["summary"]
        table.add_row(
            entry["name"],
            f"{s['flows_completed']}/{s['flows_started']}",
            fmt_ms(s["fct_p50"]), fmt_ms(s["fct_p95"]),
            fmt_ms(s["fct_p99"]), s["flow_table_peak"],
            s["faults_fired"],
            "ok" if s["health_ok"] else "ALERTS",
        )
    return table, serial, parallel, identical, diffs


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e16_workload(results, benchmark):
    table, serial, parallel, identical, diffs = results
    publish("e16_workload", table)
    publish_json("E16", {
        "identical": identical,
        "diff_clean": all(d.ok for d in diffs.values()),
        "scenarios": {
            entry["name"]: {
                "flows_started": entry["summary"]["flows_started"],
                "flows_completed": entry["summary"]["flows_completed"],
                "fct_p50_s": entry["summary"]["fct_p50"],
                "fct_p95_s": entry["summary"]["fct_p95"],
                "fct_p99_s": entry["summary"]["fct_p99"],
                "flow_table_peak": entry["summary"]["flow_table_peak"],
                "health_ok": entry["summary"]["health_ok"],
                "digest": entry["digest"],
            }
            for entry in serial
        },
    })
    # One full scenario run, timed for the record.
    benchmark.pedantic(
        lambda: run_suite([library()["dc-heavy-tail"]], jobs=1),
        rounds=1, iterations=1,
    )

    assert identical, "suite digest depends on the worker count"
    assert [r["digest"] for r in serial] == \
        [r["digest"] for r in parallel]
    for name, diff in diffs.items():
        assert diff.ok, f"{name}: paired runs diverged: {diff.regressions}"


def test_e16_every_scenario_produces_flows_and_occupancy(results):
    _, serial, _, _, _ = results
    assert [r["name"] for r in serial] == list(SCENARIOS)
    for entry in serial:
        s = entry["summary"]
        assert s["flows_completed"] > 0, entry["name"]
        assert s["fct_p99"] is not None and s["fct_p99"] > 0
        assert s["flow_table_peak"] > 0
        artifact = RunArtifact.from_dict(entry["artifact"])
        assert any(sid.startswith("workload_flow_entries")
                   for sid in artifact.series), entry["name"]
        assert artifact.health is not None


def test_e16_artifacts_written_for_diffing(results):
    _, _, parallel, _, _ = results
    out_dir = os.path.join(RESULTS_DIR, "e16_artifacts")
    for entry in parallel:
        assert os.path.exists(
            os.path.join(out_dir, f"{entry['name']}.json"))
