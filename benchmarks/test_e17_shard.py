"""E17 — Sharded kernel: conservative-sync speedup and bit-identity.

Question: does partitioning the event loop across worker processes buy
aggregate event throughput without changing a single observable?

Workload: a k=6 fat-tree (45 switches, 54 hosts, 8 ms links so the
conservative window amortises IPC) under a heavy-tailed Poisson flow
mix plus periodic incast bursts.  The identical spec runs on the
sharded kernel at ``shards=1`` (the oracle: one worker, one inclusive
window), then at 2 and 4 shards with one OS process per shard, plus a
4-shard in-process run to isolate coordinator overhead from
parallelism.

Contracts (the regression gate re-checks these from BENCH_E17.json):

* every merged-observable digest is identical to the oracle's — the
  partition is semantically invisible;
* the in-process 4-shard run is bit-identical to the multiprocess one;
* on hardware with >= 4 CPUs, the 4-shard multiprocess run clears
  ``MIN_SPEEDUP``x the oracle's wall-clock (skipped on starved CI
  runners — digest identity is the portable contract).
"""

import os
import time

import pytest

from repro.analysis import Table
from repro.sim.shard import run_sharded
from repro.workload import WorkloadSpec

from harness import publish, publish_json

MIN_SPEEDUP = 3.0          # at --shards 4, when >= 4 CPUs are present
MIN_CPUS_FOR_SPEEDUP = 4


def bench_spec() -> WorkloadSpec:
    return WorkloadSpec(
        "e17-shard-bench",
        topology={"family": "fat_tree",
                  "params": {"k": 6, "delay": 0.008,
                             "bandwidth_bps": 1e9}},
        seed=23,
        duration=3.0,
        traffic=[
            {"kind": "flows", "rate": 400.0,
             "sizes": {"dist": "mix", "mice_mean": 2_000,
                       "elephant_mean": 80_000, "elephant_frac": 0.05},
             "start": 0.2, "duration": 2.5},
            {"kind": "incast", "fanin": 12, "bytes_per_sender": 20_000,
             "period": 0.4, "start": 0.3, "duration": 2.4},
        ],
    )


def drive(shards: int, processes) -> dict:
    spec = bench_spec()
    start = time.perf_counter()
    result = run_sharded(spec, shards=shards, processes=processes)
    wall = time.perf_counter() - start
    s = result.summary
    return {
        "shards": s["shards"],
        "processes": s["processes"],
        "digest": result.digest,
        "events": s["events"],
        "rounds": s["rounds"],
        "flows_completed": s["flows_completed"],
        "wall_s": wall,
        "events_per_s": s["events"] / wall,
    }


def run_experiment():
    oracle = drive(1, False)
    seq4 = drive(4, False)
    mp2 = drive(2, True)
    mp4 = drive(4, True)
    table = Table(
        "E17 — sharded kernel, fat-tree k=6, 8ms links",
        ["config", "events", "rounds", "wall_s", "events_per_s",
         "digest=oracle"],
    )
    for label, row in (("1 shard (oracle)", oracle),
                       ("4 shards in-proc", seq4),
                       ("2 shards mp", mp2),
                       ("4 shards mp", mp4)):
        table.add_row(label, row["events"], row["rounds"],
                      f"{row['wall_s']:.2f}",
                      f"{row['events_per_s']:.0f}",
                      row["digest"] == oracle["digest"])
    return table, oracle, seq4, mp2, mp4


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e17_shard(results, benchmark):
    table, oracle, seq4, mp2, mp4 = results
    publish("e17_shard", table)
    cpus = os.cpu_count() or 1
    speedup = oracle["wall_s"] / mp4["wall_s"]
    publish_json("E17", {
        "identical": all(r["digest"] == oracle["digest"]
                         for r in (seq4, mp2, mp4)),
        "digest": oracle["digest"],
        "cpu_count": cpus,
        "oracle_events_per_s": oracle["events_per_s"],
        "mp4_events_per_s": mp4["events_per_s"],
        "speedup_4_shards": speedup,
        "wall_s": {"shards1": oracle["wall_s"],
                   "shards2_mp": mp2["wall_s"],
                   "shards4_mp": mp4["wall_s"],
                   "shards4_seq": seq4["wall_s"]},
        "events": oracle["events"],
        "rounds": {"shards1": oracle["rounds"], "shards4": mp4["rounds"]},
        "flows_completed": oracle["flows_completed"],
        "min_speedup": MIN_SPEEDUP,
        "speedup_gated": cpus >= MIN_CPUS_FOR_SPEEDUP,
    })
    benchmark.pedantic(lambda: drive(1, False), rounds=1, iterations=1)
    # Bit-identity is the portable contract: every configuration merges
    # to the oracle's observables, byte for byte.
    assert seq4["digest"] == oracle["digest"]
    assert mp2["digest"] == oracle["digest"]
    assert mp4["digest"] == oracle["digest"]
    assert oracle["flows_completed"] > 0
    # Worker processes change wall-clock only, never the event count.
    assert mp4["events"] == seq4["events"]
    if cpus >= MIN_CPUS_FOR_SPEEDUP:
        assert speedup >= MIN_SPEEDUP, (
            f"4-shard speedup {speedup:.2f}x below {MIN_SPEEDUP}x on a "
            f"{cpus}-CPU machine "
            f"({oracle['wall_s']:.2f}s -> {mp4['wall_s']:.2f}s)"
        )
