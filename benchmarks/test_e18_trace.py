"""E18 — Causal trace plane: tracing overhead and bit-identity.

Question: what does full causal tracing — per-packet span trees, the
flight recorder's ring chaining, cross-shard context propagation —
cost, and does switching it on change anything a seeded run computes?

Workload: the E14 fat-tree (k=4, proactive profile) driving repeated
UDP microflows.  The identical seeded run executes twice per rep —
tracing off, then tracing on with a flight recorder chained onto the
tracer — and the wall-clock delta is the trace plane's overhead.
Reps are interleaved and each arm takes its minimum wall time.

Contract (the telemetry doctrine, extended to traces): at the gated
sampling config (1-in-8, the production default for always-on
tracing) overhead stays below 5% of wall time, and every simulation
observable is bit-identical between the arms.  Full per-packet
sampling is measured too and reported ungated — it costs ~10-15%,
which is why sampled tracing is the always-on config and per-packet
tracing is reserved for targeted `repro trace` runs.  The identity
contract must also hold across the other two execution planes — a
sharded run's merged observables digest (shards=2, in process) and a
clustered fault run's dataplane digest — because spans ride the
observer side-channel and never touch the event heap.
"""

import os
import time

import pytest

from repro.analysis import Table
from repro.cluster import ZenCluster
from repro.cluster.platform import dataplane_digest
from repro.core import ZenPlatform
from repro.faults import FaultSchedule
from repro.netem import Topology
from repro.sim.shard import run_sharded
from repro.telemetry import Telemetry
from repro.trace import FlightRecorder, TraceArtifact, critical_path
from repro.workload import WorkloadSpec

from harness import RESULTS_DIR, publish, publish_json, seed_arp

PACKETS_PER_FLOW = 40
MAX_OVERHEAD_PCT = 5.0
SAMPLE_EVERY = 8           # the gated always-on sampling config
REPS = 3


def drive(trace: bool, sample_every: int = SAMPLE_EVERY):
    """One seeded fat-tree run; returns (wall_s, observables, tracer)."""
    telemetry = Telemetry(profile=False, trace=trace,
                          trace_sample_every=sample_every)
    platform = ZenPlatform(
        Topology.fat_tree(4, bandwidth_bps=1e9, delay=0.00005),
        profile="proactive",
        seed=3,
        telemetry=telemetry,
    ).start()
    recorder = FlightRecorder(telemetry) if trace else None
    seed_arp(platform.net)
    hosts = list(platform.net.hosts.values())
    pairs = [(hosts[i], hosts[(i + 5) % len(hosts)])
             for i in range(len(hosts))]
    for a, b in pairs:
        a.send_udp(b.ip, 5000, 5000, b"warm")
        b.send_udp(a.ip, 5000, 5000, b"warm")
    platform.run(2.0)
    sim = platform.sim
    rng = sim.fork_rng()
    for idx, (a, b) in enumerate(pairs):
        for _ in range(PACKETS_PER_FLOW):
            sim.schedule(rng.uniform(0.0, 1.0), a.send_udp,
                         b.ip, 6000 + idx, 7000, b"x" * 64)
    start = time.perf_counter()
    platform.run(2.0)
    wall = time.perf_counter() - start
    observables = {
        name: (dp.stats(),
               [(t.table_id, t.lookup_count, t.matched_count)
                for t in dp.tables],
               sorted((repr(e.match), e.priority, e.packet_count,
                       e.byte_count)
                      for t in dp.tables for e in t))
        for name, dp in platform.net.switches.items()
    }
    return wall, observables, telemetry.tracer, recorder


def _shard_spec():
    return WorkloadSpec(
        "e18-shard",
        topology={"family": "fat_tree", "size": 4},
        seed=18,
        duration=1.0,
        traffic=[
            {"kind": "flows", "rate": 50.0,
             "sizes": {"dist": "pareto", "mean": 6_000, "alpha": 1.5},
             "start": 0.1, "duration": 0.8},
        ],
    )


def sharded_identity():
    """Sharded runs: digest with tracing on == off, and the merged
    artifact actually carries boundary-crossing traces."""
    spec = _shard_spec()
    off = run_sharded(spec, shards=2, processes=False)
    on = run_sharded(spec, shards=2, processes=False, trace=True)
    art = on.trace_artifact
    crossing = sum(1 for t in art.traces if len(art.shards_of(t)) > 1)
    return off.digest == on.digest, art, crossing


def cluster_identity():
    """Clustered crash runs: dataplane digest with tracing on == off."""
    def digest(tel):
        platform = ZenCluster(
            Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9),
            controllers=3, profile="reactive", seed=18,
            telemetry=tel,
        ).start()
        net = platform.net
        seed_arp(net)
        hosts = list(net.hosts.values())
        for i, host in enumerate(hosts):
            host.send_udp(hosts[(i + 1) % len(hosts)].ip, 7, 7, b"e18")
        platform.run(1.0)
        sched = FaultSchedule(net)
        sched.attach_cluster(platform.cluster)
        victim = platform.cluster.master_of(net.switches["s1"].dpid)
        sched.controller_crash(net.sim.now + 0.5, victim,
                               restart_after=0.4)
        platform.run(3.0)
        return dataplane_digest(net), tel

    off, _ = digest(Telemetry(profile=False, trace=False))
    on, tel = digest(Telemetry(profile=False, trace=True))
    return off == on, tel.tracer


def run_experiment():
    walls = {False: [], True: []}
    observables = {}
    tracer = recorder = None
    for _ in range(REPS):
        for trace in (False, True):
            wall, obs_state, tr, rec = drive(trace)
            walls[trace].append(wall)
            observables[trace] = obs_state
            if trace:
                tracer, recorder = tr, rec
    off = min(walls[False])
    on = min(walls[True])
    overhead_pct = (on - off) / off * 100.0
    identical = observables[False] == observables[True]

    # Full per-packet sampling, ungated: the cost ceiling that makes
    # 1-in-8 the always-on default.  Bit-identity must hold here too.
    full_walls = []
    for _ in range(REPS):
        wall, full_obs, _, _ = drive(True, sample_every=1)
        full_walls.append(wall)
    full_overhead_pct = (min(full_walls) - off) / off * 100.0
    identical = identical and full_obs == observables[False]

    shard_identical, shard_art, crossing = sharded_identity()
    cluster_identical, cluster_tracer = cluster_identity()
    fault_traces = [
        (tid, label, spans) for tid, label, spans in
        cluster_tracer.traces()
        if label.startswith("fault:controller_crash")
    ]
    handover_total = 0.0
    if fault_traces:
        art = TraceArtifact.from_tracer(cluster_tracer)
        handover_total = critical_path(
            art.trace(fault_traces[0][0]))["total"]

    table = Table(
        "E18 — trace plane overhead (fat-tree k=4, proactive) "
        "and bit-identity across execution planes",
        ["measure", "value"],
    )
    table.add_row("wall_s trace off (min of reps)", f"{off:.3f}")
    table.add_row(f"wall_s trace on, 1-in-{SAMPLE_EVERY} (min of reps)",
                  f"{on:.3f}")
    table.add_row(f"tracing overhead % (1-in-{SAMPLE_EVERY}, gated)",
                  f"{overhead_pct:.2f}")
    table.add_row("tracing overhead % (per-packet, ungated)",
                  f"{full_overhead_pct:.2f}")
    table.add_row("observables bit-identical", identical)
    table.add_row("traces retained", tracer.trace_count)
    table.add_row("spans recorded (flight rings)", recorder.spans_seen)
    table.add_row("sharded digest identical (2 shards)", shard_identical)
    table.add_row("cross-shard traces in merged artifact", crossing)
    table.add_row("cluster dataplane identical", cluster_identical)
    table.add_row("handover critical path (s)", f"{handover_total:.4f}")
    return (table, off, on, overhead_pct, full_overhead_pct, identical,
            tracer, recorder, shard_identical, shard_art, crossing,
            cluster_identical, handover_total)


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e18_trace(results, benchmark):
    (table, off, on, overhead_pct, full_overhead_pct, identical, tracer,
     recorder, shard_identical, shard_art, crossing, cluster_identical,
     handover_total) = results
    publish("e18_trace", table)
    shard_art.save(os.path.join(RESULTS_DIR, "e18_trace_artifact.json"))
    publish_json("E18", {
        "wall_s": {"trace_off": off, "trace_on": on},
        "overhead_pct": overhead_pct,
        "full_sampling_overhead_pct": full_overhead_pct,
        "sample_every": SAMPLE_EVERY,
        "identical": identical,
        "sharded_identical": shard_identical,
        "cluster_identical": cluster_identical,
        "traces": tracer.trace_count,
        "spans_seen": recorder.spans_seen,
        "cross_shard_traces": crossing,
        "handover_critical_path_s": handover_total,
    })
    # One full-artifact merge from the sharded run, for the record.
    benchmark.pedantic(
        lambda: TraceArtifact.merge([shard_art]).digest,
        rounds=1, iterations=1)

    assert identical, "trace plane perturbed the seeded run"
    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"tracing overhead {overhead_pct:.2f}% exceeds "
        f"{MAX_OVERHEAD_PCT}%"
    )
    assert tracer.trace_count > 0 and recorder.spans_seen > 0


def test_e18_cross_plane_identity(results):
    (_, _, _, _, _, _, _, _, shard_identical, shard_art, crossing,
     cluster_identical, handover_total) = results
    assert shard_identical, "tracing changed the sharded digest"
    assert cluster_identical, "tracing changed the cluster dataplane"
    assert crossing > 0, "no trace crossed a shard boundary"
    assert handover_total > 0, "no handover critical path recorded"
