"""E1 / Table 1 — Flow-setup latency across control-plane designs.

Question: what does the first packet of a new flow pay under reactive
SDN control, proactive SDN control, and classic distributed switching?

Workload: one host pair at the ends of a linear topology of 2–8
switches; cold ping (first flow) vs warm ping (rules in place).

Expected shape: reactive pays roughly one controller round trip *per
switch on the path* on the first packet (each switch misses in turn);
proactive and the distributed baseline serve the first packet at
dataplane speed once converged, and all three agree on warm latency.
"""

import pytest

from repro.analysis import Table
from repro.baselines import SpanningTreeNetwork
from repro.core import ZenPlatform
from repro.netem import Network, Topology

from harness import publish, publish_json, seed_arp

SIZES = (2, 4, 8)
CONTROL_LATENCY = 0.002  # 2 ms to the controller


def _ping_ms(net, src, dst, count=1):
    session = src.ping(dst.ip, count=count, interval=0.05)
    net.run(5.0)
    assert session.received == count, f"ping lost ({session})"
    return session.avg_rtt * 1e3


def measure_sdn(profile, num_switches):
    platform = ZenPlatform(
        Topology.linear(num_switches, hosts_per_switch=1,
                        bandwidth_bps=1e9, delay=0.00005),
        profile=profile,
        control_latency=CONTROL_LATENCY,
    ).start()
    seed_arp(platform.net)
    src = platform.host("h1")
    dst = platform.host(f"h{num_switches}")
    if profile == "proactive":
        # Proactive control needs the hosts known; one warm frame each,
        # then rules exist before the measured flow starts.
        src.send_udp(dst.ip, 7, 7, b"warm")
        dst.send_udp(src.ip, 7, 7, b"warm")
        platform.run(1.0)
    cold = _ping_ms(platform.net, src, dst)
    warm = _ping_ms(platform.net, src, dst, count=3)
    return cold, warm


def measure_stp(num_switches):
    net = Network(Topology.linear(num_switches, hosts_per_switch=1,
                                  bandwidth_bps=1e9, delay=0.00005))
    stp = SpanningTreeNetwork(net)
    stp.converge(5.0)
    seed_arp(net)
    src, dst = net.host("h1"), net.host(f"h{num_switches}")
    cold = _ping_ms(net, src, dst)
    warm = _ping_ms(net, src, dst, count=3)
    stp.stop()
    return cold, warm


def run_experiment():
    table = Table(
        "E1 / Table 1 — flow-setup latency (ms), controller 2 ms away",
        ["switches", "scheme", "first_ping_ms", "warm_ping_ms",
         "setup_penalty_x"],
    )
    data = {}
    for size in SIZES:
        for scheme, fn in (
            ("reactive", lambda s=size: measure_sdn("reactive", s)),
            ("proactive", lambda s=size: measure_sdn("proactive", s)),
            ("stp+learn", lambda s=size: measure_stp(s)),
        ):
            cold, warm = fn()
            data[(size, scheme)] = (cold, warm)
            table.add_row(size, scheme, cold, warm,
                          cold / warm if warm else float("nan"))
    return table, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e1_flow_setup(results, benchmark):
    table, data = results
    publish("e1_table1", table)
    publish_json("E1", {"rows": [
        {"switches": size, "scheme": scheme, "first_ping_ms": cold,
         "warm_ping_ms": warm}
        for (size, scheme), (cold, warm) in sorted(data.items())
    ]})
    benchmark.pedantic(lambda: measure_sdn("reactive", 2), rounds=1,
                       iterations=1)
    for size in SIZES:
        reactive_cold, reactive_warm = data[(size, "reactive")]
        proactive_cold, _ = data[(size, "proactive")]
        stp_cold, _ = data[(size, "stp+learn")]
        # Reactive first packets pay controller RTTs; everyone else is
        # within dataplane noise of their warm latency.
        assert reactive_cold > reactive_warm * 3
        assert reactive_cold > proactive_cold * 2
        assert proactive_cold < 2.0
        assert stp_cold < 4.0  # flood path, no controller
    # The reactive penalty grows with path length.
    assert data[(8, "reactive")][0] > data[(2, "reactive")][0]
