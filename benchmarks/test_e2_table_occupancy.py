"""E2 / Figure 1 — Flow-table occupancy vs. number of active flows.

Question: how does switch TCAM state scale with offered flows for the
three rule granularities a controller can choose?

Workload: N simultaneous UDP flows (distinct 5-tuples) between the 8
hosts of a single switch, N swept 8→128.

Expected shape: exact-match (microflow) rules grow linearly with flow
count; destination-MAC rules plateau at the host count; proactive
rules are constant in the flow count (O(hosts), installed up front).
"""

import pytest

from repro.analysis import Series
from repro.core import ZenPlatform
from repro.netem import Topology

from harness import publish, seed_arp

FLOW_COUNTS = (8, 32, 64, 128)
HOSTS = 8


def peak_occupancy(profile, exact_match, flows):
    platform = ZenPlatform(
        Topology.single(HOSTS, bandwidth_bps=1e9),
        profile=profile,
        exact_match=exact_match,
    ).start()
    seed_arp(platform.net)
    hosts = list(platform.net.hosts.values())
    if profile == "proactive":
        # Warm every host so the proactive rules exist.
        for i, host in enumerate(hosts):
            host.send_udp(hosts[(i + 1) % HOSTS].ip, 7, 7, b"w")
        platform.run(1.0)
    # Both directions of each pair must be learnable: send one primer
    # from each host so dst lookups succeed under the learning switch.
    for i, host in enumerate(hosts):
        host.send_udp(hosts[(i + 1) % HOSTS].ip, 8, 8, b"p")
    platform.run(1.0)
    # N concurrent "flows": one packet each, distinct source ports, then
    # a couple of refreshes so reactive rules actually install and stay.
    pairs = []
    for n in range(flows):
        src = hosts[n % HOSTS]
        dst = hosts[(n + 1 + n // HOSTS) % HOSTS]
        if dst is src:
            dst = hosts[(n + 2) % HOSTS]
        pairs.append((src, dst, 10000 + n))
    for _ in range(3):
        for src, dst, sport in pairs:
            src.send_udp(dst.ip, sport, 9000, b"flowpkt")
        platform.run(0.5)
    dp = platform.switch("s1")
    # Exclude infrastructure rules (LLDP punt at 65000).
    return sum(
        1 for t in dp.tables for e in t if e.priority < 60000
    )


def run_experiment():
    series = Series(
        "E2 / Figure 1 — switch flow-table entries vs active flows "
        f"({HOSTS} hosts, single switch)",
        "active_flows",
        ["reactive_exact", "reactive_dst", "proactive"],
    )
    data = {}
    for flows in FLOW_COUNTS:
        exact = peak_occupancy("reactive", True, flows)
        dst = peak_occupancy("reactive", False, flows)
        proactive = peak_occupancy("proactive", False, flows)
        data[flows] = (exact, dst, proactive)
        series.add_point(flows, exact, dst, proactive)
    return series, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e2_table_occupancy(results, benchmark):
    series, data = results
    publish("e2_figure1", series)
    benchmark.pedantic(lambda: peak_occupancy("reactive", True, 16),
                       rounds=1, iterations=1)
    low, high = FLOW_COUNTS[0], FLOW_COUNTS[-1]
    exact_low, dst_low, pro_low = data[low]
    exact_high, dst_high, pro_high = data[high]
    # Microflow state scales with flows...
    assert exact_high >= exact_low * (high / low) * 0.5
    assert exact_high > high * 0.5
    # ...destination rules plateau at O(hosts)...
    assert dst_high <= 2 * HOSTS
    # ...and proactive state is flat and equal to the host count.
    assert pro_low == pro_high == HOSTS
    # Crossover: at high flow counts exact-match costs the most.
    assert exact_high > dst_high >= pro_high
