"""E3 / Table 2 — Controller packet-in capacity and queueing delay.

Question: how does a single controller behave as the packet-in load
approaches its service capacity, and does switch fan-in matter?

Workload: ``k`` switches (1–16) each offering a Poisson-ish stream of
packet-ins for one second; the controller models 50 µs of CPU per
event (20 k events/s capacity).  Offered load is swept over 0.5×,
0.9×, and 1.5× capacity.

Expected shape: below capacity the controller keeps up and delay stays
near zero; at 1.5× capacity the queue grows without bound and the mean
delay explodes — classic M/D/1 behaviour.  Fan-in (same load from more
switches) changes nothing: the bottleneck is the CPU.
"""

import pytest

from repro.analysis import Table, mean
from repro.controller import Controller, PacketInEvent
from repro.dataplane import Datapath
from repro.packet import Ethernet, IPv4, UDP
from repro.sim import Simulator
from repro.southbound import ControlChannel, SwitchAgent

from harness import publish, publish_json

SERVICE_TIME = 50e-6  # 50 µs per packet-in => 20k/s capacity
CAPACITY = 1.0 / SERVICE_TIME
DURATION = 1.0


def drive(num_switches, offered_rate):
    """Offer ``offered_rate`` packet-ins/s spread over the switches."""
    sim = Simulator(seed=1)
    controller = Controller(sim, packet_in_service_time=SERVICE_TIME)
    datapaths = []
    for i in range(num_switches):
        dp = Datapath(i + 1, sim)
        dp.add_port(1)
        channel = ControlChannel(sim, latency=0.0002)
        SwitchAgent(dp, channel)
        controller.accept_channel(channel)
        channel.connect()
        datapaths.append(dp)
    # A sink app so events are consumed.
    handled = []
    controller.subscribe(PacketInEvent, lambda ev: handled.append(1))
    sim.run_until_idle()

    rng = sim.fork_rng()

    def feed(index):
        dp = datapaths[index % num_switches]
        pkt = (Ethernet(dst="00:00:00:00:00:02",
                        src="00:00:00:00:00:01")
               / IPv4(src="10.0.0.1", dst="10.0.0.2")
               / UDP(src_port=index % 60000, dst_port=9) / b"x")
        dp.inject(pkt, 1)

    total = int(offered_rate * DURATION)
    for index in range(total):
        sim.schedule(rng.uniform(0, DURATION), feed, index)
    sim.run(until=DURATION)
    in_flight_delay = controller.packet_in_delays
    handled_rate = controller.packet_ins_handled / DURATION
    backlog = total - controller.packet_ins_handled
    return {
        "handled_per_s": handled_rate,
        "mean_delay_ms": mean(in_flight_delay) * 1e3
        if in_flight_delay else 0.0,
        "backlog": backlog,
    }


def run_experiment():
    table = Table(
        "E3 / Table 2 — controller capacity (service 50us => 20k/s)",
        ["switches", "offered_per_s", "handled_per_s", "mean_delay_ms",
         "backlog_at_1s"],
    )
    data = {}
    for num_switches in (1, 4, 16):
        for load_factor in (0.5, 0.9, 1.5):
            offered = int(CAPACITY * load_factor)
            out = drive(num_switches, offered)
            data[(num_switches, load_factor)] = out
            table.add_row(num_switches, offered,
                          out["handled_per_s"], out["mean_delay_ms"],
                          out["backlog"])
    return table, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e3_controller_throughput(results, benchmark):
    table, data = results
    publish("e3_table2", table)
    publish_json("E3", {"rows": [
        {"switches": num_switches, "load_factor": load_factor, **out}
        for (num_switches, load_factor), out in sorted(data.items())
    ]})
    benchmark.pedantic(lambda: drive(1, int(CAPACITY * 0.5)),
                       rounds=1, iterations=1)
    for num_switches in (1, 4, 16):
        under = data[(num_switches, 0.5)]
        near = data[(num_switches, 0.9)]
        over = data[(num_switches, 1.5)]
        # Under capacity: negligible queueing, no backlog to speak of.
        assert under["mean_delay_ms"] < 1.0
        assert under["backlog"] < CAPACITY * 0.02
        # Over capacity: the controller saturates at ~20k/s and the
        # queue (and delay) blow up.
        assert over["handled_per_s"] == pytest.approx(CAPACITY, rel=0.05)
        assert over["backlog"] > CAPACITY * 0.3
        assert over["mean_delay_ms"] > 20 * under["mean_delay_ms"] + 1
        # Delay rises monotonically with load.
        assert under["mean_delay_ms"] <= near["mean_delay_ms"] \
            <= over["mean_delay_ms"]
    # Fan-in does not change the saturation point.
    assert data[(1, 1.5)]["handled_per_s"] == pytest.approx(
        data[(16, 1.5)]["handled_per_s"], rel=0.02
    )
