"""E4 / Figure 2 — Recovery time after a link failure.

Question: how long does a steady flow black-hole when a link on its
path dies, under four repair mechanisms?

Workload: a 100-packet/s CBR stream h1→h2 across a 4-switch ring; the
primary path's first link is cut mid-stream.  Recovery time is the gap
the sink observes (last packet before the cut to first packet after).

Schemes and expected ordering (fastest first):

1. ``fast-failover`` and ``link-state+carrier`` — *local* repair with
   carrier detection: recovery ≈ one packet interval, no control round
   trips (the LS router's detour is computed locally too).
2. ``sdn-central``  — port-down event → controller recomputes → new
   rules: recovery ≈ controller RTT + install (tens of ms).
3. ``stp``          — carrier detection is native to 802.1D, but the
   re-election and TC flush take a few hello exchanges (~100 ms here).
4. ``link-state``   — with hello-based detection the dead interval
   (1.5 s) dominates everything else: seconds.

The comparison's real lesson (and the keynote's): *where* failure is
detected and repaired matters more than central-vs-distributed — local
repair wins, and detection latency, not path computation, is the cost.
"""

import pytest

from repro.analysis import Series
from repro.baselines import LinkStateNetwork, SpanningTreeNetwork
from repro.core import ZenPlatform
from repro.dataplane import (
    Bucket,
    FlowEntry,
    Group,
    GroupEntry,
    GroupType,
    Match,
    Output,
)
from repro.netem import CBRStream, FlowSink, Network, Topology

from harness import publish, seed_arp

PKT_INTERVAL = 0.01  # 100 pkt/s
FAIL_AT_REL = 2.0    # seconds into the stream


def measure_gap(net, src, dst, fail, duration=12.0):
    """Run CBR across the failure; return the sink's outage in seconds."""
    arrivals = []
    sink = FlowSink(dst, 9000)
    dst.bind_udp(9001, lambda pkt, host: None)  # unused guard port

    original = sink._receive

    def timestamping(packet, host):
        arrivals.append(net.sim.now)
        original(packet, host)

    dst.unbind_udp(9000)
    dst.bind_udp(9000, timestamping)
    CBRStream(src, dst.ip, rate_bps=1000 * 8 / PKT_INTERVAL,
              packet_size=1000, duration=duration)
    t_fail = net.sim.now + FAIL_AT_REL
    net.sim.schedule(FAIL_AT_REL, fail)
    net.run(duration + 2.0)
    before = [t for t in arrivals if t < t_fail]
    after = [t for t in arrivals if t >= t_fail]
    assert before, "stream never started"
    assert after, "stream never recovered"
    return after[0] - t_fail


def sdn_central():
    platform = ZenPlatform(
        Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9),
        control_latency=0.002,
    ).start()
    seed_arp(platform.net)
    h1, h2 = platform.host("h1"), platform.host("h2")
    h1.send_udp(h2.ip, 7, 7, b"warm")
    h2.send_udp(h1.ip, 7, 7, b"warm")
    platform.run(1.0)
    return measure_gap(platform.net, h1, h2,
                       lambda: platform.net.fail_link("s1", "s2"))


def fast_failover():
    """Hand-programmed FF groups on the ring: local repair, no controller."""
    net = Network(Topology.ring(4, hosts_per_switch=1,
                                bandwidth_bps=1e9),
                  miss_behaviour="drop")
    seed_arp(net)
    h1, h2 = net.host("h1"), net.host("h2")
    # Forward path: s1 -> s2 primary, s1 -> s4 -> s3 -> s2 backup.
    s = {name: net.switches[name] for name in ("s1", "s2", "s3", "s4")}
    p = net.port_of
    s["s1"].groups.add(GroupEntry(1, GroupType.FAST_FAILOVER, [
        Bucket([Output(p("s1", "s2"))], watch_port=p("s1", "s2")),
        Bucket([Output(p("s1", "s4"))], watch_port=p("s1", "s4")),
    ]))
    s["s1"].install_flow(FlowEntry(Match(eth_dst=h2.mac), [Group(1)],
                                   priority=10))
    s["s1"].install_flow(FlowEntry(Match(eth_dst=h1.mac),
                                   [Output(p("s1", "h1"))], priority=10))
    # s4 and s3 carry the backup path; s2 delivers either way.
    s["s4"].install_flow(FlowEntry(Match(eth_dst=h2.mac),
                                   [Output(p("s4", "s3"))], priority=10))
    s["s3"].install_flow(FlowEntry(Match(eth_dst=h2.mac),
                                   [Output(p("s3", "s2"))], priority=10))
    s["s2"].install_flow(FlowEntry(Match(eth_dst=h2.mac),
                                   [Output(p("s2", "h2"))], priority=10))
    # Reverse path mirrors it (s2 -> s1 primary, via s3/s4 backup).
    s["s2"].groups.add(GroupEntry(2, GroupType.FAST_FAILOVER, [
        Bucket([Output(p("s2", "s1"))], watch_port=p("s2", "s1")),
        Bucket([Output(p("s2", "s3"))], watch_port=p("s2", "s3")),
    ]))
    s["s2"].install_flow(FlowEntry(Match(eth_dst=h1.mac), [Group(2)],
                                   priority=10))
    s["s3"].install_flow(FlowEntry(Match(eth_dst=h1.mac),
                                   [Output(p("s3", "s4"))], priority=10))
    s["s4"].install_flow(FlowEntry(Match(eth_dst=h1.mac),
                                   [Output(p("s4", "s1"))], priority=10))
    return measure_gap(net, h1, h2,
                       lambda: net.fail_link("s1", "s2"))


def distributed(kind, carrier_detect=False):
    net = Network(Topology.ring(4, hosts_per_switch=1,
                                bandwidth_bps=1e9))
    if kind == "ls":
        proto = LinkStateNetwork(net, carrier_detect=carrier_detect)
    else:
        proto = SpanningTreeNetwork(net)
    proto.converge(5.0)
    seed_arp(net)
    h1, h2 = net.host("h1"), net.host("h2")
    h1.ping(h2.ip, count=1)
    net.run(2.0)
    gap = measure_gap(net, h1, h2,
                      lambda: net.fail_link("s1", "s2"),
                      duration=15.0)
    proto.stop()
    return gap


def run_experiment():
    rows = [
        ("fast-failover", fast_failover()),
        ("sdn-central", sdn_central()),
        ("link-state+carrier", distributed("ls", carrier_detect=True)),
        ("link-state", distributed("ls")),
        ("stp", distributed("stp")),
    ]
    series = Series(
        "E4 / Figure 2 — recovery time after a link cut "
        "(100 pkt/s CBR on a 4-ring)",
        "scheme",
        ["recovery_ms"],
    )
    data = {}
    for name, gap in rows:
        data[name] = gap
        series.add_point(name, gap * 1e3)
    return series, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e4_failover(results, benchmark):
    series, data = results
    publish("e4_figure2", series)
    benchmark.pedantic(fast_failover, rounds=1, iterations=1)
    # The headline ordering: local repair < central repair <
    # distributed re-election < timeout-detected distributed routing.
    assert data["fast-failover"] < data["sdn-central"]
    assert data["link-state+carrier"] < data["sdn-central"]
    assert data["sdn-central"] < data["stp"]
    assert data["stp"] < data["link-state"]
    # Magnitudes: local repair within ~3 packet intervals; central
    # within tens of ms; STP ~100 ms of hello exchanges; hello-detected
    # link-state dominated by the 1.5 s dead interval.
    assert data["fast-failover"] < 3 * PKT_INTERVAL
    assert data["link-state+carrier"] < 3 * PKT_INTERVAL
    assert data["sdn-central"] < 0.25
    assert 0.02 < data["stp"] < 1.0
    assert data["link-state"] > 0.5
    # Ablation: carrier detection removes the dead-interval wait.
    assert data["link-state+carrier"] < data["link-state"] / 100
