"""E5 / Table 3 — Traffic engineering vs. shortest-path vs. ECMP.

Question: under a skewed traffic matrix, how much does capacity-aware
central placement buy over topology-oblivious schemes?

Workload: fat-tree k=4 (10 Mb/s fabric links), a hotspot matrix of 8
inter-pod CBR demands of 3 Mb/s each — enough aggregate (24 Mb/s) that
single-shortest-path routing must congest some 10 Mb/s core link.

Metrics: planned max-link utilisation (from the placement), *measured*
max/mean fabric-link utilisation (from the emulated links), and
delivered goodput at the sinks.

Expected shape: SPF concentrates the hotspot and loses traffic to queue
drops; ECMP spreads by hash (better, but collisions persist); greedy TE
keeps every link under capacity and delivers everything.
"""

import pytest

from repro.analysis import Table, mean
from repro.apps import Demand, TrafficEngineering
from repro.core import ZenPlatform
from repro.netem import CBRStream, FlowSink, Topology

from harness import publish, seed_arp

FABRIC_BW = 10e6
DEMAND_BPS = 3e6
MEASURE_SECONDS = 4.0

#: Hotspot matrix: every pod-0/1 host pair targets pod 2/3 receivers.
PAIRS = [
    ("p0e0h0", "p2e0h0"),
    ("p0e0h1", "p2e0h1"),
    ("p0e1h0", "p2e1h0"),
    ("p0e1h1", "p2e1h1"),
    ("p1e0h0", "p3e0h0"),
    ("p1e0h1", "p3e0h1"),
    ("p1e1h0", "p3e1h0"),
    ("p1e1h1", "p3e1h1"),
]


def run_strategy(strategy):
    platform = ZenPlatform(
        Topology.fat_tree(4, bandwidth_bps=FABRIC_BW, delay=0.0001,
                          queue_capacity=30),
        probe_interval=0.5,
    ).start(warmup=2.0)
    seed_arp(platform.net)
    te = platform.add_app(TrafficEngineering(
        default_capacity_bps=FABRIC_BW, strategy=strategy, k=8,
        admit_all=True,
    ))
    # Make all endpoints known.
    for src_name, dst_name in PAIRS:
        platform.host(src_name).send_udp(
            platform.host(dst_name).ip, 7, 7, b"warm")
        platform.host(dst_name).send_udp(
            platform.host(src_name).ip, 7, 7, b"warm")
    platform.run(1.0)
    demands = [
        Demand(platform.host(a).ip, platform.host(b).ip, DEMAND_BPS)
        for a, b in PAIRS
    ]
    placement = te.install(demands)
    platform.run(0.5)

    sinks = []
    for src_name, dst_name in PAIRS:
        dst = platform.host(dst_name)
        sinks.append(FlowSink(dst, 9000))
        CBRStream(platform.host(src_name), dst.ip, rate_bps=DEMAND_BPS,
                  packet_size=1000, duration=MEASURE_SECONDS + 1.0)
    platform.net.reset_utilisation_windows()
    platform.run(MEASURE_SECONDS)
    # Fabric links: both endpoints are switches.
    switch_names = set(platform.net.switches)
    fabric_links = [
        link for link in platform.net.links
        if link.a.node_name in switch_names
        and link.b.node_name in switch_names
    ]
    utils = [link.max_utilisation for link in fabric_links]
    delivered = sum(s.total_bytes for s in sinks) * 8 / MEASURE_SECONDS
    offered = DEMAND_BPS * len(PAIRS)
    caps = {
        frozenset(e): FABRIC_BW
        for e in platform.discovery.graph().edges()
    }
    return {
        "planned_max_util": placement.max_utilisation(caps),
        "measured_max_util": max(utils),
        "measured_mean_util": mean([u for u in utils if u > 0.01]),
        "goodput_ratio": delivered / offered,
    }


def run_experiment():
    table = Table(
        "E5 / Table 3 — TE on fat-tree k=4, 8x3Mb/s hotspot demands "
        "over 10Mb/s links",
        ["strategy", "planned_max_util", "measured_max_util",
         "measured_mean_util", "goodput_ratio"],
    )
    data = {}
    for strategy in ("spf", "ecmp", "greedy"):
        out = run_strategy(strategy)
        data[strategy] = out
        table.add_row(strategy, out["planned_max_util"],
                      out["measured_max_util"],
                      out["measured_mean_util"], out["goodput_ratio"])
    return table, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e5_traffic_engineering(results, benchmark):
    table, data = results
    publish("e5_table3", table)
    benchmark.pedantic(lambda: run_strategy("greedy"), rounds=1,
                       iterations=1)
    spf, ecmp, greedy = data["spf"], data["ecmp"], data["greedy"]
    # SPF must congest: some link is planned well beyond capacity and
    # goodput suffers.
    assert spf["planned_max_util"] > 1.0
    assert spf["measured_max_util"] > 0.95
    assert spf["goodput_ratio"] < 0.9
    # Greedy fits everything under capacity and delivers ~all of it.
    assert greedy["planned_max_util"] <= 1.0
    assert greedy["goodput_ratio"] > 0.95
    # Ordering: greedy >= ecmp >= spf on goodput; the reverse on peak
    # utilisation.
    assert greedy["goodput_ratio"] >= ecmp["goodput_ratio"] - 0.02
    assert ecmp["goodput_ratio"] > spf["goodput_ratio"]
    assert spf["measured_max_util"] >= greedy["measured_max_util"]
