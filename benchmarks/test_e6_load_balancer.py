"""E6 / Figure 3 — VIP load balancing across a growing backend pool.

Question: does the L4 balancer spread connections evenly, and how does
response latency behave as backends are added while offered load is
fixed?

Workload: 2 client hosts fire Poisson requests (120/s for 2 s) at one
VIP; the backend pool grows 1 → 8.  Every backend answers each request
after 5 ms of simulated service time.

Expected shape: near-uniform assignment at every pool size (Jain index
→ 1); response latency collapses as backends share the queueing load,
flattening once the pool absorbs the offered rate; zero timeouts
throughout.
"""

import pytest

from repro.analysis import Series, jain_fairness, percentile
from repro.apps import LoadBalancer, ProactiveRouter
from repro.core import ZenPlatform
from repro.netem import RequestLoad, Topology
from repro.packet import IPv4, UDP

from harness import publish

REQUEST_RATE = 120.0
DURATION = 2.0
SERVICE_TIME = 0.005
VIP = "10.0.99.1"


def run_pool(num_backends):
    total_hosts = 2 + num_backends  # 2 clients + the pool
    platform = ZenPlatform(
        Topology.single(total_hosts, bandwidth_bps=1e9),
        profile="bare",
    )
    platform.router = platform.add_app(ProactiveRouter(table_id=1))
    backend_names = [f"h{i}" for i in range(3, 3 + num_backends)]
    backend_ips = [str(platform.host(n).ip) for n in backend_names]
    lb = platform.add_app(LoadBalancer(
        vip=VIP, backends=backend_ips, table_id=0, next_table=1,
    ))
    platform.start()
    clients = [platform.host("h1"), platform.host("h2")]

    def responder(pkt, host):
        udp = pkt[UDP]
        src = pkt[IPv4].src
        # Serve after a fixed service time (single-threaded backend).
        busy_until = max(host.sim.now, getattr(host, "_busy_until", 0.0))
        finish = busy_until + SERVICE_TIME
        host._busy_until = finish
        host.sim.schedule_at(
            finish, host.send_udp, src, udp.dst_port, udp.src_port,
            b"response",
        )

    for name in backend_names:
        backend = platform.host(name)
        backend.bind_udp(8080, responder)
        backend.ping(clients[0].ip, count=1)  # make itself known
    platform.run(3.0)
    load = RequestLoad(platform.sim, clients, VIP,
                       request_rate=REQUEST_RATE, duration=DURATION,
                       timeout=8.0)
    platform.run(DURATION + 10.0)
    counts = [lb.assignments[platform.host(n).ip]
              for n in backend_names]
    return {
        "sent": load.sent,
        "completed": load.completed,
        "timeouts": load.timeouts,
        "fairness": jain_fairness(counts) if num_backends > 1 else 1.0,
        "p50_ms": percentile(load.response_times, 50) * 1e3,
        "p99_ms": percentile(load.response_times, 99) * 1e3,
    }


def run_experiment():
    series = Series(
        "E6 / Figure 3 — load balancer: 120 req/s vs pool size "
        "(5 ms backend service time)",
        "backends",
        ["completed", "timeouts", "jain_fairness", "p50_ms", "p99_ms"],
    )
    data = {}
    for pool in (1, 2, 4, 8):
        out = run_pool(pool)
        data[pool] = out
        series.add_point(pool, out["completed"], out["timeouts"],
                         out["fairness"], out["p50_ms"], out["p99_ms"])
    return series, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e6_load_balancer(results, benchmark):
    series, data = results
    publish("e6_figure3", series)
    benchmark.pedantic(lambda: run_pool(2), rounds=1, iterations=1)
    for pool, out in data.items():
        assert out["completed"] == out["sent"]
        assert out["timeouts"] == 0
        assert out["fairness"] > 0.9
    # One backend at 120 req/s × 5 ms = 60% utilisation: busy but
    # stable; queueing shows up in p99.  Two backends halve the load
    # per server; beyond that latency flattens at the service floor.
    assert data[1]["p99_ms"] > data[2]["p99_ms"]
    assert data[2]["p99_ms"] >= data[8]["p99_ms"]
    assert data[8]["p50_ms"] < SERVICE_TIME * 1e3 * 3
