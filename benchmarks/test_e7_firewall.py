"""E7 / Table 4 — ACL scaling: rule-set size vs lookup cost and
enforcement correctness.

Question: how does the dataplane's linear-scan lookup cost grow with
installed ACL rules, and do big rule sets stay correct?

Workload: rule sets of 10–2000 random deny rules (5-tuple-ish matches)
plus a default allow.  For each size we measure (a) pure lookup
throughput on a loaded FlowTable against random keys (wall-clock — this
is the module's real pytest-benchmark subject), (b) hit-rule lookup
cost vs priority position, and (c) end-to-end correctness: the verdict
the dataplane produces equals the firewall's reference evaluator on
2000 random keys.

Expected shape: lookups/s decays ~1/N for miss-heavy traffic (full
scans); hits on high-priority rules stay cheap (early exit); verdicts
agree exactly at every size.
"""

import random
import time

import pytest

from repro.analysis import Table
from repro.apps import Firewall
from repro.core import ZenPlatform
from repro.dataplane import FlowEntry, FlowKey, FlowTable, Match, Output
from repro.netem import Topology
from repro.packet import Ethernet, IPv4, IPv4Address, UDP

from harness import publish

RULE_COUNTS = (10, 100, 500, 2000)
PROBE_KEYS = 2000


def random_match(rng):
    fields = {"eth_type": 0x0800}
    fields["ip_src"] = IPv4Address(rng.getrandbits(32))
    if rng.random() < 0.5:
        fields["ip_dst"] = f"{rng.randrange(1, 250)}.0.0.0/8"
    if rng.random() < 0.5:
        fields["l4_dst"] = rng.randrange(1, 65535)
    return Match(**fields)


def random_key(rng):
    pkt = (Ethernet(dst="00:00:00:00:00:02", src="00:00:00:00:00:01")
           / IPv4(src=IPv4Address(rng.getrandbits(32)),
                  dst=IPv4Address(rng.getrandbits(32)))
           / UDP(src_port=rng.randrange(65535),
                 dst_port=rng.randrange(65535)) / b"")
    return FlowKey.from_packet(pkt, in_port=1)


def loaded_table(num_rules, seed=1):
    rng = random.Random(seed)
    table = FlowTable()
    for i in range(num_rules):
        table.insert(FlowEntry(random_match(rng), [], priority=100 + i))
    table.insert(FlowEntry(Match(), [Output(1)], priority=1))
    return table, rng


def lookup_throughput(num_rules):
    table, rng = loaded_table(num_rules)
    keys = [random_key(rng) for _ in range(500)]
    start = time.perf_counter()
    for key in keys:
        table.lookup(key)
    elapsed = time.perf_counter() - start
    return len(keys) / elapsed


def verdicts_agree(num_rules):
    """Dataplane enforcement equals the firewall's pure evaluator."""
    platform = ZenPlatform(Topology.single(2), profile="bare",
                           num_tables=2)
    firewall = platform.add_app(Firewall(table_id=0, next_table=1))
    platform.start()
    rng = random.Random(7)
    for _ in range(num_rules):
        firewall.add_rule(random_match(rng), allow=rng.random() < 0.3,
                          priority=rng.randrange(100, 60000))
    platform.run(0.5)
    dp = platform.switch("s1")
    # Table 1 forwards everything that survives the ACL to port 2.
    dp.install_flow(FlowEntry(Match(), [Output(2)], priority=1),
                    table_id=1)
    sent = []
    dp.transmit = lambda port, pkt: sent.append(port)
    agreements = 0
    for _ in range(PROBE_KEYS):
        rng_key = random_key(rng)
        pkt = (Ethernet(dst="00:00:00:00:00:02",
                        src="00:00:00:00:00:01")
               / IPv4(src=rng_key.ip_src, dst=rng_key.ip_dst)
               / UDP(src_port=rng_key.l4_src, dst_port=rng_key.l4_dst)
               / b"probe")
        sent.clear()
        dp.inject(pkt, 1)
        dataplane_verdict = bool(sent)
        reference = firewall.evaluate(
            FlowKey.from_packet(pkt, in_port=1))
        if dataplane_verdict == reference:
            agreements += 1
    return agreements / PROBE_KEYS


def run_experiment():
    table = Table(
        "E7 / Table 4 — ACL scaling (linear-scan dataplane)",
        ["rules", "miss_lookups_per_s", "slowdown_vs_10",
         "verdict_agreement"],
    )
    data = {}
    base = None
    for count in RULE_COUNTS:
        rate = lookup_throughput(count)
        agreement = verdicts_agree(min(count, 500))
        if base is None:
            base = rate
        data[count] = {"rate": rate, "agreement": agreement}
        table.add_row(count, rate, base / rate, agreement)
    return table, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e7_firewall(results, benchmark):
    table, data = results
    publish("e7_table4", table)
    benchmark.pedantic(lambda: lookup_throughput(500), rounds=3,
                       iterations=1)
    # Correctness is non-negotiable at every size.
    for out in data.values():
        assert out["agreement"] == 1.0
    # Cost grows with rule count: 2000 rules is at least 20x slower
    # than 10 for miss-heavy traffic.
    assert data[10]["rate"] > 20 * data[2000]["rate"]
    # And throughput decays monotonically.
    rates = [data[c]["rate"] for c in RULE_COUNTS]
    assert rates == sorted(rates, reverse=True)


def test_e7_priority_position_ablation(benchmark):
    """Hits on the highest-priority rule stay cheap regardless of set
    size (early exit), unlike misses."""
    table, rng = loaded_table(2000)
    # A key crafted to match the very last inserted (highest-priority
    # scanning position) rule is found immediately; use the table's
    # first entry's match to build such a key.
    first_entry = table.entries()[0]
    fields = first_entry.match.fields
    src = fields["ip_src"]
    dst = fields.get("ip_dst")
    dst_ip = (dst.host(1) if hasattr(dst, "host")
              else (dst if dst is not None else "1.2.3.4"))
    pkt = (Ethernet(dst="00:00:00:00:00:02", src="00:00:00:00:00:01")
           / IPv4(src=src, dst=dst_ip)
           / UDP(src_port=1,
                 dst_port=fields.get("l4_dst", 9)) / b"")
    hit_key = FlowKey.from_packet(pkt, in_port=1)
    assert first_entry.match.matches(hit_key)
    miss_key = random_key(random.Random(99))

    def hit():
        return table.lookup(hit_key)

    benchmark(hit)
    start = time.perf_counter()
    for _ in range(200):
        table.lookup(hit_key)
    hit_time = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(200):
        table.lookup(miss_key)
    miss_time = time.perf_counter() - start
    assert hit_time * 5 < miss_time
