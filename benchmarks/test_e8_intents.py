"""E8 / Figure 4 — Intent re-convergence under topology churn.

Question: when a link dies, how long until every affected intent is
reinstalled (rules barrier-acked on all touched switches), and how does
that scale with the number of affected intents?

Workload: a 6-switch ring with 2 hosts per switch; N host-to-host
intents (8–96) spanning the ring; one link on the hot path is cut.

Expected shape: reconvergence time grows roughly linearly in the number
of affected intents with a fixed floor of one controller round trip
(flow-mod install time is per-rule: flowmod_delay × rules dominates at
scale).  Unaffected intents are untouched.
"""

import pytest

from repro.analysis import Series
from repro.core import ZenPlatform
from repro.netem import Topology

from harness import publish, seed_arp

FLOWMOD_DELAY = 0.0005  # 0.5 ms per rule install at the switch


def run_intents(num_intents):
    platform = ZenPlatform(
        Topology.ring(6, hosts_per_switch=2, bandwidth_bps=1e9),
        profile="bare",
        intents=True,
        control_latency=0.002,
        flowmod_delay=FLOWMOD_DELAY,
    ).start()
    seed_arp(platform.net)
    hosts = list(platform.net.hosts.values())
    # Make everyone known to the tracker.
    for i, host in enumerate(hosts):
        host.send_udp(hosts[(i + 1) % len(hosts)].ip, 7, 7, b"w")
    platform.run(1.0)
    # Intents between hosts 3 switches apart: all shortest paths cross
    # the s1-s2 side of the ring for pairs chosen from s1's hosts.
    service = platform.intents
    submitted = []
    for n in range(num_intents):
        src = hosts[n % len(hosts)]
        dst = hosts[(n + 4) % len(hosts)]
        submitted.append(service.connect_ips(src.ip, dst.ip))
    platform.run(1.0)
    installed = service.installed_count()
    # Cut one ring link and time the reroute batch.
    t_fail = platform.sim.now
    service.reroute_done_times.clear()
    platform.fail_link("s2", "s3")
    platform.run(10.0)
    affected = sum(1 for i in submitted if i.reroutes > 0)
    assert service.reroute_done_times, "no reroute completed"
    reconverge = service.reroute_done_times[-1] - t_fail
    return {
        "installed": installed,
        "affected": affected,
        "reconverge_ms": reconverge * 1e3,
        "still_installed": service.installed_count(),
    }


def run_experiment():
    series = Series(
        "E8 / Figure 4 — intent reconvergence after a link cut "
        "(6-ring, 0.5 ms/flow-mod)",
        "intents",
        ["affected", "reconverge_ms", "reinstalled"],
    )
    data = {}
    for count in (8, 24, 48, 96):
        out = run_intents(count)
        data[count] = out
        series.add_point(count, out["affected"], out["reconverge_ms"],
                         out["still_installed"])
    return series, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e8_intents(results, benchmark):
    series, data = results
    publish("e8_figure4", series)
    benchmark.pedantic(lambda: run_intents(8), rounds=1, iterations=1)
    for count, out in data.items():
        # Every submitted intent survives the failure.
        assert out["installed"] == count
        assert out["still_installed"] == count
        assert out["affected"] >= 1
    # Reconvergence grows with affected intents...
    assert (data[96]["reconverge_ms"] > data[8]["reconverge_ms"])
    # ...superlinearly vs the floor: the 96-intent batch is dominated by
    # per-rule install time, not the fixed RTT.
    assert data[96]["reconverge_ms"] > 3 * data[8]["reconverge_ms"]
    # Floor sanity: even the small batch pays at least one control RTT.
    assert data[8]["reconverge_ms"] >= 4.0
