"""E9 / Table 5 — Control-channel overhead by application design.

Question: for one identical workload, how many control messages and
bytes do the three forwarding designs cost?

Workload: all-pairs ping plus 60 short UDP flows on a 4-switch linear
topology, measured over a fixed window.

Expected shape: the hub punts *every* packet (overhead proportional to
traffic); the learning switch punts once per new flow direction and
then goes quiet; the proactive router's steady-state overhead is just
LLDP probing and is independent of traffic.  PacketIn dominates the hub
and reactive byte counts; PacketOut dominates the hub's switch-bound
direction.
"""

import pytest

from repro.analysis import Table
from repro.apps import HubApp
from repro.controller import Controller
from repro.core import ZenPlatform
from repro.netem import Network, Topology

from harness import publish, seed_arp

FLOWS = 60


def _workload(net):
    seed_arp(net)
    hosts = list(net.hosts.values())
    ratio = net.ping_all(count=1, settle=4.0)
    assert ratio == 1.0, f"workload connectivity broken ({ratio})"
    for n in range(FLOWS):
        src = hosts[n % len(hosts)]
        dst = hosts[(n + 1) % len(hosts)]
        for _ in range(3):
            src.send_udp(dst.ip, 20000 + n, 9000, b"y" * 100)
    net.run(5.0)


def _totals(channels):
    msgs = bytes_ = packet_ins = packet_outs = flow_mods = 0
    for channel in channels.values():
        up = channel.switch_end.sent
        down = channel.controller_end.sent
        msgs += up.messages + down.messages
        bytes_ += up.bytes + down.bytes
        packet_ins += up.by_type.get("PacketIn", 0)
        packet_outs += down.by_type.get("PacketOut", 0)
        flow_mods += down.by_type.get("FlowMod", 0)
    return msgs, bytes_, packet_ins, packet_outs, flow_mods


def run_hub():
    net = Network(Topology.linear(4, hosts_per_switch=1,
                                  bandwidth_bps=1e9))
    controller = Controller(net.sim)
    controller.add_app(HubApp())
    for name in net.switches:
        channel = net.make_channel(name)
        controller.accept_channel(channel)
        channel.connect()
    net.run(0.5)
    _workload(net)
    return _totals(net.channels)


def run_platform(profile):
    platform = ZenPlatform(
        Topology.linear(4, hosts_per_switch=1, bandwidth_bps=1e9),
        profile=profile,
    ).start()
    if profile == "proactive":
        # Warm all hosts so rules exist before the measured window.
        hosts = list(platform.net.hosts.values())
        for i, host in enumerate(hosts):
            host.send_udp(hosts[(i + 1) % len(hosts)].ip, 7, 7, b"w")
        platform.run(1.0)
        # Reset counters: measure steady state only.
        for channel in platform.net.channels.values():
            channel.switch_end.sent.reset()
            channel.controller_end.sent.reset()
    _workload(platform.net)
    return _totals(platform.net.channels)


def run_experiment():
    table = Table(
        "E9 / Table 5 — control overhead for one workload "
        f"(all-pairs ping + {FLOWS} flows, 4 switches)",
        ["scheme", "messages", "bytes", "packet_ins", "packet_outs",
         "flow_mods"],
    )
    data = {}
    for scheme, fn in (
        ("hub", run_hub),
        ("reactive", lambda: run_platform("reactive")),
        ("proactive", lambda: run_platform("proactive")),
    ):
        out = fn()
        data[scheme] = dict(zip(
            ("messages", "bytes", "packet_ins", "packet_outs",
             "flow_mods"), out))
        table.add_row(scheme, *out)
    return table, data


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_e9_control_overhead(results, benchmark):
    table, data = results
    publish("e9_table5", table)
    benchmark.pedantic(run_hub, rounds=1, iterations=1)
    hub, reactive, proactive = (data[k] for k in
                                ("hub", "reactive", "proactive"))
    # The hub never installs flows and punts everything.
    assert hub["flow_mods"] == 0
    assert hub["packet_ins"] > reactive["packet_ins"] * 2
    # Reactive installs flows and quiets down; proactive steady state
    # punts (almost) nothing for data traffic — its packet-ins are LLDP.
    assert reactive["flow_mods"] > 0
    assert proactive["packet_ins"] < reactive["packet_ins"]
    # Ordering on total overhead.
    assert (hub["messages"] > reactive["messages"]
            > proactive["messages"] * 0)  # proactive pays LLDP tax only
    assert hub["bytes"] > reactive["bytes"]
