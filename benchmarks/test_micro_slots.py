"""Microbench — ``__slots__`` on hot-path objects: memory + allocation.

The sharded kernel serialises every cross-shard frame, so packet
decode (one Header stack allocated per frame per hop) and kernel event
objects dominate allocation churn at scale.  This bench pins down what
the slots audit bought and guards against regressions:

* every hot-path class stays ``__dict__``-free (a slotted class that
  quietly regrows a dict loses both the memory and the lookup win);
* tracemalloc-measured retained bytes per decoded packet stay under a
  generous ceiling (a dict per header costs ~100B each on CPython 3.x,
  so the ceiling distinguishes slots from no-slots cleanly);
* encode/decode throughput sustains a smoke-floor rate.
"""

import time
import tracemalloc

from repro.analysis import Table
from repro.dataplane.match import FlowKey
from repro.netem.link import _Direction
from repro.netem.traffic import FlowRecord
from repro.obs.series import Rollup, Series
from repro.packet import ARP, Ethernet, ICMP, IPv4, LLDP, Packet, Raw, TCP, UDP
from repro.packet.ethernet import VLAN
from repro.sim.kernel import Event

from harness import publish, publish_json

DECODE_BATCH = 2_000
PACKET_CEILING_BYTES = 900       # retained bytes per decoded UDP packet
MIN_CODEC_RATE = 5_000           # encode+decode round trips per second

HOT_CLASSES = [Packet, Raw, Ethernet, VLAN, IPv4, UDP, TCP, ICMP, ARP,
               LLDP, Event, FlowKey, FlowRecord, Rollup, Series,
               _Direction]


def _sample_frame() -> bytes:
    return (Ethernet(src="00:00:00:00:00:01", dst="00:00:00:00:00:02")
            / IPv4(src="10.0.0.1", dst="10.0.0.2", dscp=10)
            / UDP(src_port=40000, dst_port=9000)
            / (b"x" * 64)).encode()


def bytes_per_packet(n: int = DECODE_BATCH) -> float:
    frame = _sample_frame()
    keep = []
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    for _ in range(n):
        keep.append(Packet.decode(frame))
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del keep
    return (after - before) / n


def codec_rate(n: int = DECODE_BATCH) -> float:
    frame = _sample_frame()
    start = time.perf_counter()
    for _ in range(n):
        Packet.decode(frame).encode()
    return n / (time.perf_counter() - start)


def test_hot_classes_have_no_dict():
    for cls in HOT_CLASSES:
        instance_dict = getattr(cls, "__dict__", {}).get("__dict__")
        assert instance_dict is None, (
            f"{cls.__name__} grew a per-instance __dict__; add new "
            f"attributes to its __slots__ instead"
        )


def test_micro_slots():
    per_packet = bytes_per_packet()
    rate = codec_rate()
    table = Table(
        "micro — slots audit: decoded-packet footprint and codec rate",
        ["metric", "value"],
    )
    table.add_row("retained_bytes_per_packet", f"{per_packet:.0f}")
    table.add_row("codec_round_trips_per_s", f"{rate:.0f}")
    table.add_row("slotted_hot_classes", len(HOT_CLASSES))
    publish("micro_slots", table)
    publish_json("MICRO_SLOTS", {
        "retained_bytes_per_packet": per_packet,
        "codec_round_trips_per_s": rate,
        "decode_batch": DECODE_BATCH,
        "slotted_hot_classes": [cls.__name__ for cls in HOT_CLASSES],
    })
    assert per_packet < PACKET_CEILING_BYTES, (
        f"decoded packet retains {per_packet:.0f}B "
        f"(ceiling {PACKET_CEILING_BYTES}B) — did a header class "
        f"lose its __slots__?"
    )
    assert rate > MIN_CODEC_RATE
