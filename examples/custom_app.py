#!/usr/bin/env python
"""Writing your own controller app: a flow-top monitor + port knocker.

Demonstrates the app API surface:

* subclass :class:`repro.controller.App` and override the ``on_*`` hooks,
* subscribe to bus events and poll switches for statistics,
* program switches from app logic (the port knocker opens a firewall
  pinhole only after the secret knock sequence).

Run:  python examples/custom_app.py
"""

from repro import Topology, ZenPlatform
from repro.apps import Firewall, ProactiveRouter
from repro.controller import App
from repro.dataplane import Match
from repro.packet import IPv4, UDP
from repro.southbound import StatsKind


class FlowTop(App):
    """Periodically prints the busiest flows in the network (like
    `top`, but for flow entries)."""

    name = "flowtop"

    def __init__(self, interval: float = 2.0, top_n: int = 5) -> None:
        super().__init__()
        self.interval = interval
        self.top_n = top_n
        self.samples = []

    def start(self, controller) -> None:
        super().start(controller)
        controller.sim.call_every(self.interval, self._poll)

    def _poll(self) -> None:
        for switch in self.controller.switches.values():
            switch.request_stats(
                StatsKind.FLOW,
                lambda reply, dpid=switch.dpid: self._report(dpid, reply),
            )

    def _report(self, dpid, reply) -> None:
        ranked = sorted(reply.entries, key=lambda e: -e.byte_count)
        for entry in ranked[: self.top_n]:
            if entry.byte_count:
                self.samples.append((self.sim.now, dpid, entry))


class PortKnocker(App):
    """Opens a firewall pinhole to a protected port after the secret
    three-packet knock sequence."""

    name = "port-knocker"
    KNOCK_SEQUENCE = (7001, 8002, 9003)

    def __init__(self, firewall: Firewall, protected_ip,
                 protected_port: int) -> None:
        super().__init__()
        self.firewall = firewall
        self.protected_ip = str(protected_ip)
        self.protected_port = protected_port
        self._progress = {}
        self.opened_for = []

    def on_switch_enter(self, switch) -> None:
        # Knock packets must reach the controller: punt (and swallow)
        # anything aimed at a knock port of the protected host.
        from repro.dataplane import Output, PORT_CONTROLLER

        for port in self.KNOCK_SEQUENCE:
            switch.add_flow(
                Match(eth_type=0x0800, ip_dst=self.protected_ip,
                      l4_dst=port),
                [Output(PORT_CONTROLLER)],
                priority=6000,
                table_id=self.firewall.table_id,
            )

    def on_packet_in(self, event) -> None:
        ip = event.packet.get(IPv4)
        udp = event.packet.get(UDP)
        if ip is None or udp is None:
            return
        if str(ip.dst) != self.protected_ip:
            return
        client = str(ip.src)
        stage = self._progress.get(client, 0)
        if udp.dst_port == self.KNOCK_SEQUENCE[stage]:
            stage += 1
            self._progress[client] = stage
            if stage == len(self.KNOCK_SEQUENCE):
                self._open(client)
        elif udp.dst_port in self.KNOCK_SEQUENCE:
            self._progress[client] = 0  # wrong order: start over

    def _open(self, client: str) -> None:
        self.firewall.add_rule(
            Match(eth_type=0x0800, ip_src=client,
                  ip_dst=self.protected_ip,
                  l4_dst=self.protected_port),
            allow=True, priority=5000,
        )
        self.opened_for.append(client)
        print(f"  [knocker] pinhole opened for {client} -> "
              f"{self.protected_ip}:{self.protected_port}")


def main() -> None:
    platform = ZenPlatform(
        Topology.single(3, bandwidth_bps=1e9), profile="bare",
        num_tables=3,
    )
    firewall = platform.add_app(Firewall(table_id=0, next_table=1))
    platform.router = platform.add_app(ProactiveRouter(table_id=1))
    flowtop = platform.add_app(FlowTop())
    platform.start()

    h1, h2, server = (platform.host(n) for n in ("h1", "h2", "h3"))
    for a in (h1, h2, server):
        for b in (h1, h2, server):
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    for h in (h1, h2, server):
        h.send_udp(h1.ip if h is not h1 else h2.ip, 7, 7, b"w")
    platform.run(2.0)

    # Protect the server's port 2222 behind the knocker.
    firewall.deny(priority=1000, eth_type=0x0800,
                  ip_dst=str(server.ip), l4_dst=2222)
    platform.add_app(PortKnocker(firewall, server.ip, 2222))
    served = []
    server.bind_udp(2222, lambda pkt, host: served.append(pkt))
    platform.run(0.5)

    print("1. h1 tries the protected port without knocking:")
    h1.send_udp(server.ip, 40000, 2222, b"let me in")
    platform.run(1.0)
    print(f"   server saw {len(served)} packets (expected 0)")

    print("2. h1 performs the secret knock 7001 -> 8002 -> 9003:")
    for i, port in enumerate(PortKnocker.KNOCK_SEQUENCE):
        platform.sim.schedule(0.2 * i, h1.send_udp, server.ip,
                              40001, port, b"knock")
    platform.run(2.0)

    print("3. h1 retries the protected port:")
    h1.send_udp(server.ip, 40000, 2222, b"let me in now")
    platform.run(1.0)
    print(f"   server saw {len(served)} packets (expected 1)")

    print("4. h2 (no knock) still cannot get in:")
    h2.send_udp(server.ip, 41000, 2222, b"me too?")
    platform.run(1.0)
    print(f"   server saw {len(served)} packets (still 1)")

    busiest = flowtop.samples[-3:]
    print(f"\nFlowTop collected {len(flowtop.samples)} samples; last:")
    for when, dpid, entry in busiest:
        print(f"  t={when:.1f}s dpid={dpid} {entry}")


if __name__ == "__main__":
    main()
