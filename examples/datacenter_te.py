#!/usr/bin/env python
"""Data-centre traffic engineering on a fat-tree (the B4/SWAN story).

Builds a fat-tree k=4 with 10 Mb/s fabric links, offers a hotspot
traffic matrix that congests naive shortest-path routing, then lets the
TE app place the same demands with capacity awareness.  Prints the
per-strategy link utilisation and delivered goodput, plus the paths the
greedy placer chose.

Run:  python examples/datacenter_te.py
"""

from repro import Topology, ZenPlatform
from repro.analysis import Table, mean
from repro.apps import Demand, TrafficEngineering
from repro.netem import CBRStream, FlowSink

FABRIC_BW = 10e6
DEMAND = 3e6
PAIRS = [
    ("p0e0h0", "p2e0h0"), ("p0e0h1", "p2e0h1"),
    ("p0e1h0", "p2e1h0"), ("p0e1h1", "p2e1h1"),
    ("p1e0h0", "p3e0h0"), ("p1e0h1", "p3e0h1"),
]


def run(strategy: str, verbose: bool = False):
    platform = ZenPlatform(
        Topology.fat_tree(4, bandwidth_bps=FABRIC_BW, delay=0.0001,
                          queue_capacity=30),
        probe_interval=0.5,
    ).start(warmup=2.0)
    hosts = platform.net.hosts
    for a in hosts.values():
        for b in hosts.values():
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    te = platform.add_app(TrafficEngineering(
        default_capacity_bps=FABRIC_BW, strategy=strategy, k=8,
        admit_all=True,
    ))
    for src, dst in PAIRS:
        platform.host(src).send_udp(platform.host(dst).ip, 7, 7, b"w")
        platform.host(dst).send_udp(platform.host(src).ip, 7, 7, b"w")
    platform.run(1.0)
    demands = [Demand(platform.host(a).ip, platform.host(b).ip, DEMAND)
               for a, b in PAIRS]
    placement = te.install(demands)
    platform.run(0.5)
    if verbose:
        print(f"\nGreedy placement ({strategy}):")
        for demand, path in placement.paths.items():
            names = [platform.net.switch_name(d) for d in path or []]
            print(f"  {demand}: {' -> '.join(names) or 'REJECTED'}")

    sinks = []
    for src, dst in PAIRS:
        sinks.append(FlowSink(platform.host(dst), 9000))
        CBRStream(platform.host(src), platform.host(dst).ip,
                  rate_bps=DEMAND, packet_size=1000, duration=4.0)
    platform.net.reset_utilisation_windows()
    platform.run(3.0)
    switch_names = set(platform.net.switches)
    utils = [
        link.max_utilisation for link in platform.net.links
        if link.a.node_name in switch_names
        and link.b.node_name in switch_names
    ]
    delivered = sum(s.total_bytes for s in sinks) * 8 / 3.0
    return {
        "max_util": max(utils),
        "mean_util": mean([u for u in utils if u > 0.01]),
        "goodput_mbps": delivered / 1e6,
        "offered_mbps": DEMAND * len(PAIRS) / 1e6,
    }


def main() -> None:
    table = Table(
        f"Fat-tree k=4 TE comparison: {len(PAIRS)} x {DEMAND / 1e6:.0f} "
        f"Mb/s hotspot demands over {FABRIC_BW / 1e6:.0f} Mb/s links",
        ["strategy", "max_link_util", "mean_link_util",
         "goodput_mbps", "offered_mbps"],
    )
    for strategy in ("spf", "ecmp", "greedy"):
        out = run(strategy, verbose=(strategy == "greedy"))
        table.add_row(strategy, out["max_util"], out["mean_util"],
                      out["goodput_mbps"], out["offered_mbps"])
    print()
    print(table.render())
    print("\nReading: spf concentrates the hotspot on one core path and "
          "drops traffic;\necmp hashes flows apart; greedy fits "
          "everything under capacity.")


if __name__ == "__main__":
    main()
