#!/usr/bin/env python
"""An enterprise deployment: ACL firewall + tenant slices + VIP service.

A star campus network with three departments:

* engineering (h1, h2) — full access, 20 Mb/s slice,
* guests (h3, h4)      — may only reach the intranet VIP, 5 Mb/s slice,
* servers (h5, h6)     — back the intranet VIP behind a load balancer.

The pipeline composes three apps across flow tables:

    table 0: slicing (classify + meter)   -> goto 1
    table 1: firewall ACLs                -> goto 2
    table 2: LB VIP rewrite               -> goto 3
    table 3: proactive shortest-path routing

Run:  python examples/enterprise_policy.py
"""

from repro import Topology, ZenPlatform
from repro.apps import (
    Firewall,
    LoadBalancer,
    NetworkSlicing,
    ProactiveRouter,
)
from repro.netem import CBRStream, FlowSink
from repro.packet import IPv4, UDP

VIP = "10.0.50.1"


def build_platform():
    topo = Topology.star(3, hosts_per_leaf=2, bandwidth_bps=100e6)
    platform = ZenPlatform(topo, profile="bare", num_tables=4)
    slicing = platform.add_app(
        NetworkSlicing(table_id=0, next_table=1))
    firewall = platform.add_app(Firewall(table_id=1, next_table=2))
    servers = ["10.0.0.5", "10.0.0.6"]
    balancer = platform.add_app(LoadBalancer(
        vip=VIP, backends=servers, table_id=2, next_table=3))
    platform.router = platform.add_app(ProactiveRouter(table_id=3))
    platform.start()
    return platform, slicing, firewall, balancer


def main() -> None:
    platform, slicing, firewall, balancer = build_platform()
    hosts = {n: platform.host(n) for n in
             ("h1", "h2", "h3", "h4", "h5", "h6")}
    for a in hosts.values():
        for b in hosts.values():
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    # Make every host known to the tracker.
    for i, h in enumerate(hosts.values()):
        h.send_udp(hosts["h1"].ip if h is not hosts["h1"]
                   else hosts["h2"].ip, 7, 7, b"w")
    platform.run(2.0)

    # --- slices ---------------------------------------------------
    slicing.define_slice("engineering",
                         [hosts["h1"].ip, hosts["h2"].ip], 20e6)
    slicing.define_slice("guests",
                         [hosts["h3"].ip, hosts["h4"].ip], 5e6)

    # --- ACLs: guests may only talk to the VIP --------------------
    # The LB rewrites VIP -> backend at the client's ingress, so the
    # ACL must whitelist the backends too: downstream switches evaluate
    # the ACL against the rewritten destination.  This is the standard
    # published-service pattern (whitelist the VIP *and* its pool).
    for guest in ("10.0.0.3", "10.0.0.4"):
        for service_ip in (VIP, "10.0.0.5", "10.0.0.6"):
            firewall.allow(priority=2000, ip_src=guest,
                           ip_dst=service_ip, eth_type=0x0800)
        firewall.deny(priority=1000, ip_src=guest, eth_type=0x0800)
    platform.run(0.5)

    # --- the intranet service -------------------------------------
    def service(pkt, host):
        udp = pkt[UDP]
        host.send_udp(pkt[IPv4].src, udp.dst_port, udp.src_port,
                      b"intranet page")

    for server in ("h5", "h6"):
        hosts[server].bind_udp(8080, service)

    # 1. Engineering reaches anything.
    eng_ping = hosts["h1"].ping(hosts["h5"].ip, count=3, interval=0.1)
    # 2. Guests cannot reach engineering...
    guest_ping = hosts["h3"].ping(hosts["h1"].ip, count=3, interval=0.1,
                                  timeout=1.0)
    platform.run(5.0)
    print(f"engineering -> servers ping: {eng_ping.received}/3 "
          f"(expected 3)")
    print(f"guest -> engineering ping:   {guest_ping.received}/3 "
          f"(expected 0: ACL)")

    # 3. ...but guests DO reach the VIP, balanced over both servers.
    answers = []
    hosts["h3"].on_udp = lambda pkt, host: answers.append(pkt.payload)
    hosts["h4"].on_udp = lambda pkt, host: answers.append(pkt.payload)
    for i in range(10):
        hosts["h3"].send_udp(VIP, 41000 + i, 8080, b"GET /")
        hosts["h4"].send_udp(VIP, 42000 + i, 8080, b"GET /")
        platform.run(0.2)
    platform.run(2.0)
    print(f"guest VIP requests answered: {len(answers)}/20 "
          f"(expected 20)")
    print(f"backend distribution: {balancer.distribution()}")

    # 4. The guest slice is rate limited: blast from a guest and watch
    #    the meter clamp it to 5 Mb/s.
    sink = FlowSink(hosts["h5"], 9500)
    firewall.allow(priority=3000, ip_src=str(hosts["h3"].ip),
                   ip_dst=str(hosts["h5"].ip), eth_type=0x0800)
    platform.run(0.5)
    CBRStream(hosts["h3"], hosts["h5"].ip, rate_bps=50e6,
              packet_size=1000, duration=3.0, dst_port=9500)
    platform.run(4.0)
    print(f"guest blast at 50 Mb/s delivered "
          f"{sink.total_bytes * 8 / 3.0 / 1e6:.1f} Mb/s "
          f"(expected ~5: slice meter)")


if __name__ == "__main__":
    main()
