#!/usr/bin/env python
"""A failover drill: central SDN repair vs the distributed baselines.

Runs the same scripted incident — a 100 pkt/s stream crosses a ring,
one link on its path is cut — under four control planes, and reports
how long each blackholed the stream.  This is the interactive version
of benchmark E4.

Run:  python examples/failover_drill.py
"""

from repro import Topology, ZenPlatform
from repro.analysis import Table
from repro.baselines import LinkStateNetwork, SpanningTreeNetwork
from repro.netem import CBRStream, Network


def ring():
    return Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9)


def measure_outage(net, src, dst, fail_fn, duration=12.0):
    """Stream across the incident; return the receive gap in seconds."""
    arrivals = []
    dst.bind_udp(9000, lambda pkt, host: arrivals.append(net.sim.now))
    CBRStream(src, dst.ip, rate_bps=800_000, packet_size=1000,
              duration=duration)
    fail_at = net.sim.now + 2.0
    net.sim.schedule(2.0, fail_fn)
    net.run(duration + 2.0)
    dst.unbind_udp(9000)
    before = [t for t in arrivals if t < fail_at]
    after = [t for t in arrivals if t >= fail_at]
    if not after:
        return float("inf")
    assert before, "stream never started"
    return after[0] - fail_at


def seed(net):
    hosts = list(net.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)


def drill_sdn():
    platform = ZenPlatform(ring(), control_latency=0.002).start()
    seed(platform.net)
    h1, h2 = platform.host("h1"), platform.host("h2")
    h1.send_udp(h2.ip, 7, 7, b"w")
    h2.send_udp(h1.ip, 7, 7, b"w")
    platform.run(1.0)
    return measure_outage(platform.net, h1, h2,
                          lambda: platform.fail_link("s1", "s2"))


def drill_distributed(kind, carrier=False):
    net = Network(ring())
    proto = (LinkStateNetwork(net, carrier_detect=carrier)
             if kind == "ls" else SpanningTreeNetwork(net))
    proto.converge(5.0)
    seed(net)
    h1, h2 = net.host("h1"), net.host("h2")
    h1.ping(h2.ip, count=1)
    net.run(2.0)
    outage = measure_outage(net, h1, h2,
                            lambda: net.fail_link("s1", "s2"),
                            duration=15.0)
    proto.stop()
    return outage


def main() -> None:
    table = Table(
        "Failover drill: outage after cutting s1-s2 on a 4-ring "
        "(100 pkt/s stream)",
        ["control plane", "outage_ms", "mechanism"],
    )
    table.add_row("SDN central recompute", drill_sdn() * 1e3,
                  "port-down -> controller -> new rules")
    table.add_row("link-state (hello timeout)",
                  drill_distributed("ls") * 1e3,
                  "1.5 s dead interval -> LSA flood -> SPF")
    table.add_row("link-state (carrier detect)",
                  drill_distributed("ls", carrier=True) * 1e3,
                  "local detection -> local reroute")
    table.add_row("spanning tree",
                  drill_distributed("stp") * 1e3,
                  "re-election + topology-change flush")
    print()
    print(table.render())
    print("\nReading: who repairs, and how they detect, sets the "
          "outage — not\ncentralised-vs-distributed per se. Local "
          "repair with carrier detection wins;\ntimeout-based "
          "detection loses by three orders of magnitude.")


if __name__ == "__main__":
    main()
