#!/usr/bin/env python
"""ECMP multipath + 1+1 path protection + live packet capture.

Builds a fat-tree k=4 fabric, routes it with SELECT-group ECMP so flows
hash across all equal-cost paths, attaches taps to the core uplinks to
*show* the spreading, and protects one critical host pair with
fast-failover groups — then cuts its primary path mid-stream and prints
the measured outage.

Run:  python examples/multipath_fabric.py
"""

from repro import Topology, ZenPlatform
from repro.apps import MultipathRouter, ProtectedPairs
from repro.netem import CBRStream, Tap
from repro.packet import UDP


def main() -> None:
    platform = ZenPlatform(
        Topology.fat_tree(4, bandwidth_bps=100e6),
        profile="bare",
        probe_interval=0.5,
    )
    router = platform.add_app(MultipathRouter(max_paths=4))
    platform.router = router
    protector = platform.add_app(ProtectedPairs())
    platform.start(warmup=2.0)
    net = platform.net

    hosts = list(net.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    for i, host in enumerate(hosts):
        host.send_udp(hosts[(i + 1) % len(hosts)].ip, 7, 7, b"w")
    platform.run(1.0)
    print(f"ECMP router: {router.rules_installed} dst rules, "
          f"{router.multipath_rules} multipath, "
          f"{router.groups_created} shared SELECT groups")

    # --- watch flows hash across the two uplinks of one edge switch --
    edge = "p0e0"
    aggs = [n for n in net.topology.neighbours(edge)
            if n.startswith("p0a")]
    taps = {agg: Tap(net.link(edge, agg),
                     predicate=lambda pkt: UDP in pkt
                     and pkt[UDP].dst_port == 9000)
            for agg in aggs}
    src = net.hosts["p0e0h0"]
    dst = net.hosts["p3e1h1"]
    for sport in range(32):
        src.send_udp(dst.ip, 21000 + sport, 9000, b"flow")
    platform.run(2.0)
    print(f"\n32 flows {src.name} -> {dst.name} split over "
          f"{edge}'s uplinks:")
    for agg, tap in taps.items():
        print(f"  {edge} -> {agg}: {len(tap)} packets")

    # --- protect a critical pair and drill a failure ------------------
    pair = protector.protect_ips(src.ip, dst.ip)
    platform.run(0.5)
    primary_names = [net.switch_name(d) for d in pair.primary]
    backup_names = [net.switch_name(d) for d in pair.backup or []]
    print(f"\nProtected pair {src.name} <-> {dst.name}:")
    print(f"  primary: {' -> '.join(primary_names)}")
    print(f"  backup:  {' -> '.join(backup_names)}")

    arrivals = []
    dst.bind_udp(9100, lambda pkt, host: arrivals.append(
        platform.sim.now))
    CBRStream(src, dst.ip, rate_bps=800_000, packet_size=1000,
              duration=4.0, dst_port=9100)
    fail_at = platform.sim.now + 1.0
    a, b = primary_names[0], primary_names[1]
    platform.sim.schedule(1.0, platform.fail_link, a, b)
    platform.run(6.0)
    after = [t for t in arrivals if t >= fail_at]
    outage_ms = (after[0] - fail_at) * 1e3 if after else float("inf")
    print(f"\nCut {a}-{b} mid-stream: outage = {outage_ms:.2f} ms "
          f"(fast-failover, no controller involved)")
    print(f"Re-protection events: {pair.reprotections} "
          f"(controller re-established a new backup afterwards)")


if __name__ == "__main__":
    main()
