#!/usr/bin/env python
"""Quickstart: a three-switch network under SDN control in ~30 lines.

Builds a linear topology, starts the proactive platform (discovery,
host tracking, ARP proxying, shortest-path routing), verifies all-pairs
connectivity, and prints what the controller learned and installed.

Run:  python examples/quickstart.py
"""

from repro import Topology, ZenPlatform


def main() -> None:
    # 1. Describe the network: 3 switches in a line, 2 hosts each,
    #    gigabit links.
    topo = Topology.linear(3, hosts_per_switch=2, bandwidth_bps=1e9)
    print(f"Topology: {topo}")

    # 2. Bring it up under a proactive SDN controller and let LLDP
    #    discovery settle.
    platform = ZenPlatform(topo, profile="proactive").start()
    print(f"Controller sees {platform.controller.switch_count} switches "
          f"and {platform.discovery.link_count} directed links")

    # 3. Prove connectivity: every host pings every other host.
    delivery = platform.ping_all(count=2, settle=5.0)
    print(f"All-pairs ping delivery: {delivery:.0%}")

    # 4. Ping with latency measurement between the two far ends.
    h1, h6 = platform.host("h1"), platform.host("h6")
    session = h1.ping(h6.ip, count=5, interval=0.2)
    platform.run(5.0)
    print(f"{h1.name} -> {h6.name}: {session.received}/{session.count} "
          f"replies, avg RTT {session.avg_rtt * 1e3:.3f} ms")

    # 5. Look inside: what does the controller know, and what did it
    #    program into the switches?
    print(f"\nHosts tracked: {platform.hosts.host_count}")
    for entry in platform.hosts.hosts_by_mac.values():
        print(f"  {entry.ip} ({entry.mac}) at switch dpid="
              f"{entry.dpid} port {entry.port}")
    print("\nInstalled forwarding rules:")
    for name, dp in sorted(platform.net.switches.items()):
        rules = [e for t in dp.tables for e in t if e.priority < 60000]
        print(f"  {name}: {len(rules)} rules, "
              f"{dp.packets_forwarded} packets forwarded, "
              f"{dp.packets_to_controller} punted")

    overhead = platform.total_control_messages()
    print(f"\nTotal control-channel messages: {overhead} "
          f"({platform.total_control_bytes()} bytes)")


if __name__ == "__main__":
    main()
