"""ZenSDN: a from-scratch software-defined networking platform.

A reproduction of the system architecture championed by the SIGCOMM 2013
keynote *Zen and the art of network architecture* (Larry Peterson):
cleanly layered data plane, southbound protocol, controller, and
application planes, plus the distributed baselines the SDN position is
argued against.

Layer map (each package depends only on the ones above it):

- :mod:`repro.sim` — deterministic discrete-event kernel
- :mod:`repro.packet` — addresses, headers, byte-exact codecs
- :mod:`repro.dataplane` — match-action switch pipeline
- :mod:`repro.southbound` — the ZOF control protocol
- :mod:`repro.netem` — links, hosts, topologies, workloads
- :mod:`repro.controller` — controller core and services
- :mod:`repro.apps` — forwarding/policy/resource applications
- :mod:`repro.baselines` — distributed STP and link-state competitors
- :mod:`repro.core` — the assembled platform and policy algebra
- :mod:`repro.analysis` — statistics and artifact rendering
- :mod:`repro.telemetry` — metrics, packet traces, flow records
"""

from repro.core.platform import ZenPlatform
from repro.errors import ZenError
from repro.netem.topology import Topology
from repro.sim.kernel import Simulator
from repro.telemetry import Telemetry

__version__ = "1.0.0"

__all__ = ["Simulator", "Telemetry", "Topology", "ZenError", "ZenPlatform",
           "__version__"]
