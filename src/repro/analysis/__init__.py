"""Measurement, statistics, and artifact rendering."""

from repro.analysis.report import Series, Table
from repro.analysis.stats import (
    jain_fairness,
    mean,
    median,
    percentile,
    stddev,
    summarise,
)

__all__ = [
    "Series",
    "Table",
    "jain_fairness",
    "mean",
    "median",
    "percentile",
    "stddev",
    "summarise",
]
