"""Plain-text tables and series for the experiment harness.

Every benchmark regenerates its paper artifact by printing a
:class:`Table` (for tables) or :class:`Series` (for figures — one row per
x value and one column per line on the plot).  Keeping rendering here
means EXPERIMENTS.md and the benchmark output always agree on format.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

__all__ = ["Table", "Series"]

Cell = Union[str, int, float, None]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


class Table:
    """A titled text table with aligned columns."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells; table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append([_format_cell(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return " | ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(cells)
            )

        rule = "-+-".join("-" * w for w in widths)
        out = [self.title, "=" * len(self.title), line(self.columns), rule]
        out.extend(line(row) for row in self.rows)
        return "\n".join(out)

    def as_dicts(self) -> List[Dict[str, str]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_dict(self) -> dict:
        """JSON-ready form: title, columns, and formatted rows."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
        }

    def __str__(self) -> str:
        return self.render()


class Series(Table):
    """A figure rendered as data series: x column plus one column per line.

    Semantically identical to :class:`Table`; the separate type records
    that the artifact reproduces a *figure* and names its x-axis.
    """

    def __init__(self, title: str, x_label: str,
                 line_labels: Sequence[str]) -> None:
        super().__init__(title, [x_label, *line_labels])
        self.x_label = x_label

    def add_point(self, x: Cell, *ys: Cell) -> None:
        self.add_row(x, *ys)
