"""Summary statistics for experiment harnesses.

Plain-Python implementations (no numpy dependency in the library proper)
of the handful of statistics every networking evaluation reports: mean,
percentiles, Jain's fairness index, and a compact distribution summary.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

__all__ = [
    "mean",
    "median",
    "percentile",
    "stddev",
    "jain_fairness",
    "summarise",
]


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return float("nan")
    return sum(values) / len(values)


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, ``p`` in [0, 100]."""
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    data = sorted(values)
    if not data:
        return float("nan")
    if len(data) == 1:
        return data[0]
    rank = (p / 100) * (len(data) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return data[low]
    frac = rank - low
    # data[low] + frac * span, not the two-product convex form: with
    # subnormal inputs the products each round toward zero and p50 of
    # [x, x] could land *below* p25, breaking monotonicity.
    return data[low] + (data[high] - data[low]) * frac


def median(values: Sequence[float]) -> float:
    return percentile(values, 50)


def stddev(values: Sequence[float]) -> float:
    data = list(values)
    if len(data) < 2:
        return 0.0
    mu = mean(data)
    return math.sqrt(sum((x - mu) ** 2 for x in data) / (len(data) - 1))


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index in (0, 1]; 1 means perfectly equal."""
    data = [v for v in values]
    if not data:
        return float("nan")
    total = sum(data)
    squares = sum(v * v for v in data)
    if squares == 0:
        return 1.0
    return (total * total) / (len(data) * squares)


def summarise(values: Iterable[float]) -> Dict[str, float]:
    """The standard summary row: count/mean/p50/p95/p99/min/max."""
    data = sorted(values)
    if not data:
        return {k: float("nan") for k in
                ("count", "mean", "p50", "p95", "p99", "min", "max")}
    return {
        "count": len(data),
        "mean": mean(data),
        "p50": percentile(data, 50),
        "p95": percentile(data, 95),
        "p99": percentile(data, 99),
        "min": data[0],
        "max": data[-1],
    }
