"""Controller applications: forwarding, policy, and resource management."""

from repro.apps.adaptive_te import AdaptiveTE
from repro.apps.arp_proxy import ArpProxy
from repro.apps.fast_failover import ProtectedPair, ProtectedPairs
from repro.apps.firewall import Firewall, FirewallRule
from repro.apps.hub import HubApp
from repro.apps.learning_switch import LearningSwitch
from repro.apps.load_balancer import LoadBalancer
from repro.apps.multipath_router import MultipathRouter
from repro.apps.proactive_router import ProactiveRouter
from repro.apps.slicing import NetworkSlicing, Slice
from repro.apps.traffic_engineering import (
    Demand,
    PlacementResult,
    TrafficEngineering,
    ecmp_place,
    greedy_place,
    spf_place,
)

__all__ = [
    "AdaptiveTE",
    "ArpProxy",
    "Demand",
    "Firewall",
    "FirewallRule",
    "HubApp",
    "LearningSwitch",
    "LoadBalancer",
    "MultipathRouter",
    "NetworkSlicing",
    "PlacementResult",
    "ProactiveRouter",
    "ProtectedPair",
    "ProtectedPairs",
    "Slice",
    "TrafficEngineering",
    "ecmp_place",
    "greedy_place",
    "spf_place",
]
