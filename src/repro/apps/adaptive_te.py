"""Adaptive traffic engineering: measure demands, then place them.

Static TE (:class:`TrafficEngineering`) trusts declared demand rates.
Real systems (B4's bandwidth enforcer, SWAN's demand estimation) close
the loop: they *measure* what each flow actually sends and re-run
placement on the measurements.  :class:`AdaptiveTE` adds that loop:

1. every ``interval`` it polls FLOW statistics from each demand's
   ingress switch (TE rules match on the (ip_src, ip_dst) pair, so the
   byte counters are exactly per-demand),
2. derives rates from consecutive byte counts,
3. rebuilds the demand set with measured rates (smoothed by EWMA) and
   re-places when the measured picture drifts from the planned one.

The headline property (tested): start TE with badly wrong declared
rates, offer different true rates, and the placement converges to the
one that matches reality — without anyone telling the controller.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.apps.traffic_engineering import (
    Demand,
    TE_PRIORITY,
    TrafficEngineering,
)
from repro.controller.core import App
from repro.errors import ControllerError
from repro.packet import IPv4Address
from repro.southbound.messages import StatsKind, StatsReply

__all__ = ["AdaptiveTE"]

PairKey = Tuple[IPv4Address, IPv4Address]


class AdaptiveTE(App):
    """The measurement loop around a :class:`TrafficEngineering` app."""

    name = "adaptive-te"

    def __init__(
        self,
        te: Optional[TrafficEngineering] = None,
        interval: float = 1.0,
        ewma_alpha: float = 0.5,
        replace_threshold: float = 0.3,
        min_rate_bps: float = 64_000.0,
    ) -> None:
        super().__init__()
        self._te = te
        self.interval = interval
        self.ewma_alpha = ewma_alpha
        #: Re-place when some demand's measured rate differs from its
        #: planned rate by more than this fraction.
        self.replace_threshold = replace_threshold
        self.min_rate_bps = min_rate_bps
        #: (src_ip, dst_ip) -> (sample_time, byte_count)
        self._last_sample: Dict[PairKey, Tuple[float, int]] = {}
        #: (src_ip, dst_ip) -> EWMA-smoothed measured rate.
        self.measured: Dict[PairKey, float] = {}
        self.replacements = 0
        self._stop: Optional[Callable[[], None]] = None

    def start(self, controller) -> None:
        super().start(controller)
        if self._te is None:
            self._te = controller.get_app(TrafficEngineering)
        if self._te is None:
            raise ControllerError(
                "AdaptiveTE needs a TrafficEngineering app"
            )
        self._stop = controller.sim.call_every(
            self.interval, self._cycle, jitter=0.01
        )

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    # ------------------------------------------------------------------
    # Measurement cycle
    # ------------------------------------------------------------------
    def _ingress_dpids(self) -> Dict[int, None]:
        """Distinct ingress switches of the current demand set."""
        dpids: Dict[int, None] = {}
        for demand in self._te.demands:
            entry = self._te._tracker.lookup_ip(demand.src_ip)
            if entry is not None:
                dpids[entry.dpid] = None
        return dpids

    def _cycle(self) -> None:
        if not self._te.demands:
            return
        for dpid in self._ingress_dpids():
            switch = self.controller.switches.get(dpid)
            if switch is None:
                continue
            switch.request_stats(
                StatsKind.FLOW,
                lambda reply, d=dpid: self._on_stats(d, reply),
            )

    def _on_stats(self, dpid: int, reply: StatsReply) -> None:
        if reply.kind != StatsKind.FLOW:
            return
        now = self.sim.now
        for entry in reply.entries:
            if entry.priority != TE_PRIORITY:
                continue
            fields = entry.match.fields
            src, dst = fields.get("ip_src"), fields.get("ip_dst")
            if src is None or dst is None:
                continue
            key = (src, dst)
            last = self._last_sample.get(key)
            self._last_sample[key] = (now, entry.byte_count)
            if last is None:
                continue
            dt = now - last[0]
            if dt <= 0 or entry.byte_count < last[1]:
                continue  # counter reset (rule reinstalled)
            rate = (entry.byte_count - last[1]) * 8 / dt
            previous = self.measured.get(key, rate)
            self.measured[key] = (self.ewma_alpha * rate
                                  + (1 - self.ewma_alpha) * previous)
        self._maybe_replace()

    # ------------------------------------------------------------------
    # Replacement decision
    # ------------------------------------------------------------------
    def _maybe_replace(self) -> None:
        drifted = False
        new_demands = []
        for demand in self._te.demands:
            key = (demand.src_ip, demand.dst_ip)
            measured = self.measured.get(key)
            if measured is None:
                new_demands.append(demand)
                continue
            rate = max(measured, self.min_rate_bps)
            new_demands.append(Demand(demand.src_ip, demand.dst_ip,
                                      rate))
            planned = demand.rate_bps
            if planned <= 0:
                continue
            drift = abs(rate - planned) / planned
            if drift > self.replace_threshold:
                drifted = True
        if drifted:
            self.replacements += 1
            # install() replaces the demand set, so subsequent drift is
            # computed against the *measured* rates we just adopted.
            self._te.install(new_demands)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def measured_rate(self, src_ip, dst_ip) -> Optional[float]:
        return self.measured.get(
            (IPv4Address(src_ip), IPv4Address(dst_ip)))
