"""Controller-side ARP proxying.

Broadcast ARP requests are the enemy of clean SDN deployments: every one
floods the network.  The proxy answers requests straight from the host
tracker's knowledge, turning a network-wide broadcast into a single
packet-out.  Requests for unknown IPs are left unhandled so a flooding
app (router/learning switch) can still deliver them.
"""

from __future__ import annotations

from typing import Optional

from repro.controller.core import App
from repro.controller.discovery import TopologyDiscovery
from repro.controller.events import PacketInEvent
from repro.controller.hosttracker import HostTracker
from repro.dataplane.actions import Output
from repro.errors import ControllerError
from repro.packet import ARP, Ethernet, IPv4Address, Packet

__all__ = ["ArpProxy"]


class ArpProxy(App):
    """Answers ARP requests for hosts the tracker already knows."""

    name = "arp-proxy"

    def __init__(self, host_tracker: Optional[HostTracker] = None,
                 discovery: Optional[TopologyDiscovery] = None) -> None:
        super().__init__()
        self._tracker = host_tracker
        self._discovery = discovery
        self.replies_sent = 0
        self.misses = 0

    def start(self, controller) -> None:
        super().start(controller)
        if self._tracker is None:
            self._tracker = controller.get_app(HostTracker)
        if self._tracker is None:
            raise ControllerError("ArpProxy needs a HostTracker app")
        if self._discovery is None:
            self._discovery = controller.get_app(TopologyDiscovery)

    def knows(self, ip: IPv4Address) -> bool:
        return self._tracker.lookup_ip(ip) is not None

    def on_packet_in(self, event: PacketInEvent) -> None:
        arp = event.packet.get(ARP)
        if arp is None or not arp.is_request:
            return
        # Only answer where the requester is directly attached.  A copy
        # of the broadcast punted at a core switch must NOT be answered
        # there: the reply (src = target's MAC) would travel backwards
        # along the flood path and poison MAC learning en route.
        if (self._discovery is not None
                and not self._discovery.is_edge_port(
                    event.switch.dpid, event.in_port)):
            return
        target = self._tracker.lookup_ip(arp.target_ip)
        if target is None:
            self.misses += 1
            return
        reply = (
            Ethernet(dst=arp.sender_mac, src=target.mac)
            / ARP(
                opcode=ARP.REPLY,
                sender_mac=target.mac,
                sender_ip=arp.target_ip,
                target_mac=arp.sender_mac,
                target_ip=arp.sender_ip,
            )
        )
        # Emit the reply directly at the asking host's attachment point.
        event.switch.packet_out(reply, [Output(event.in_port)])
        self.replies_sent += 1
