"""1+1 path protection with dataplane fast-failover groups.

For each protected host pair the app installs two maximally disjoint
paths and a FAST_FAILOVER group at each end's ingress switch: the group
watches the primary port and flips to the backup path the instant the
port dies — zero control-plane round trips, the property benchmark E4
quantifies.

Scope (stated, not hidden): the instant repair covers failures of the
*first* link of either direction — that is what an ingress FF group can
watch.  Failures deeper in the path are repaired by recomputation when
the controller learns of them (the app re-protects on LinkVanished),
which still beats unprotected routing because the backup path rules are
already in place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.controller.core import App
from repro.controller.discovery import TopologyDiscovery
from repro.controller.events import LinkVanished
from repro.controller.hosttracker import HostTracker
from repro.controller.pathing import PathService
from repro.dataplane.actions import Group, Output
from repro.dataplane.group import Bucket, GroupType
from repro.dataplane.match import Match
from repro.errors import ControllerError
from repro.packet import IPv4Address, MACAddress

__all__ = ["ProtectedPairs", "ProtectedPair"]

PROTECT_PRIORITY = 28000


class ProtectedPair:
    """State for one protected (src, dst) host pair."""

    _next_id = 1

    def __init__(self, src_mac: MACAddress, dst_mac: MACAddress) -> None:
        self.pair_id = ProtectedPair._next_id
        ProtectedPair._next_id += 1
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.primary: Optional[List[int]] = None
        self.backup: Optional[List[int]] = None
        self.protected = False
        self.reprotections = 0
        #: Rules installed: (dpid, match).
        self.rules: List[Tuple[int, Match]] = []
        #: Groups installed: (dpid, group_id).
        self.groups: List[Tuple[int, int]] = []

    def __repr__(self) -> str:
        state = "protected" if self.protected else "unprotected"
        return (
            f"<ProtectedPair {self.pair_id} {self.src_mac}<->"
            f"{self.dst_mac} {state}>"
        )


class ProtectedPairs(App):
    """Installs fast-failover-protected connectivity for host pairs."""

    name = "protected-pairs"

    def __init__(self, discovery: Optional[TopologyDiscovery] = None,
                 host_tracker: Optional[HostTracker] = None) -> None:
        super().__init__()
        self._discovery = discovery
        self._tracker = host_tracker
        self._paths: Optional[PathService] = None
        self.pairs: Dict[int, ProtectedPair] = {}
        self._next_group: Dict[int, int] = {}

    def start(self, controller) -> None:
        super().start(controller)
        if self._discovery is None:
            self._discovery = controller.get_app(TopologyDiscovery)
        if self._tracker is None:
            self._tracker = controller.get_app(HostTracker)
        if self._discovery is None or self._tracker is None:
            raise ControllerError(
                "ProtectedPairs needs TopologyDiscovery and HostTracker"
            )
        self._paths = PathService(self._discovery)
        controller.subscribe(LinkVanished, self._on_link_vanished,
                             owner=self.name)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def protect_ips(self, src_ip, dst_ip) -> ProtectedPair:
        """Protect a pair by IP (both hosts must be tracked)."""
        src = self._tracker.require_ip(IPv4Address(src_ip))
        dst = self._tracker.require_ip(IPv4Address(dst_ip))
        pair = ProtectedPair(src.mac, dst.mac)
        self.pairs[pair.pair_id] = pair
        self._establish(pair)
        return pair

    def protected_count(self) -> int:
        return sum(1 for p in self.pairs.values() if p.protected)

    # ------------------------------------------------------------------
    # Path selection and programming
    # ------------------------------------------------------------------
    def _disjoint_paths(self, src_dpid: int,
                        dst_dpid: int) -> Tuple[Optional[List[int]],
                                                Optional[List[int]]]:
        """Primary plus a maximally link-disjoint backup."""
        graph = self._discovery.graph()
        if src_dpid not in graph or dst_dpid not in graph:
            return None, None
        try:
            primary = nx.shortest_path(graph, src_dpid, dst_dpid)
        except nx.NetworkXNoPath:
            return None, None
        pruned = graph.copy()
        pruned.remove_edges_from(list(zip(primary, primary[1:])))
        try:
            backup = nx.shortest_path(pruned, src_dpid, dst_dpid)
        except nx.NetworkXNoPath:
            backup = None
        return primary, backup

    def _establish(self, pair: ProtectedPair) -> None:
        self._teardown(pair)
        src = self._tracker.lookup_mac(pair.src_mac)
        dst = self._tracker.lookup_mac(pair.dst_mac)
        if src is None or dst is None:
            return
        if src.dpid == dst.dpid:
            # Same switch: nothing to protect; plain delivery rules.
            self._rule(pair, src.dpid,
                       Match(eth_src=pair.src_mac,
                             eth_dst=pair.dst_mac),
                       [Output(dst.port)])
            self._rule(pair, src.dpid,
                       Match(eth_src=pair.dst_mac,
                             eth_dst=pair.src_mac),
                       [Output(src.port)])
            pair.primary, pair.backup = [src.dpid], None
            pair.protected = False
            return
        primary, backup = self._disjoint_paths(src.dpid, dst.dpid)
        if primary is None:
            return
        pair.primary, pair.backup = primary, backup
        self._program_direction(pair, primary, backup, pair.src_mac,
                                pair.dst_mac, dst.port)
        rev_primary = list(reversed(primary))
        rev_backup = list(reversed(backup)) if backup else None
        self._program_direction(pair, rev_primary, rev_backup,
                                pair.dst_mac, pair.src_mac, src.port)
        pair.protected = backup is not None

    def _program_direction(self, pair: ProtectedPair,
                           primary: List[int],
                           backup: Optional[List[int]],
                           src_mac: MACAddress, dst_mac: MACAddress,
                           final_port: int) -> None:
        match = Match(eth_src=src_mac, eth_dst=dst_mac)
        # Transit rules along both paths (skip the head, handled below;
        # the tail switch delivers to the host).
        for path in filter(None, (primary, backup)):
            hops = self._paths.path_ports(path)
            for dpid, out_port in hops[1:]:
                self._rule(pair, dpid, match, [Output(out_port)])
            self._rule(pair, path[-1], match, [Output(final_port)])
        head = primary[0]
        primary_port = self._paths.path_ports(primary[:2])[0][1]
        if backup is not None and len(backup) > 1:
            backup_port = self._paths.path_ports(backup[:2])[0][1]
            group_id = self._alloc_group(head)
            switch = self.controller.switches[head]
            switch.add_group(group_id, GroupType.FAST_FAILOVER, [
                Bucket([Output(primary_port)], watch_port=primary_port),
                Bucket([Output(backup_port)], watch_port=backup_port),
            ])
            pair.groups.append((head, group_id))
            self._rule(pair, head, match, [Group(group_id)])
        else:
            self._rule(pair, head, match, [Output(primary_port)])

    def _rule(self, pair: ProtectedPair, dpid: int, match: Match,
              actions) -> None:
        switch = self.controller.switches.get(dpid)
        if switch is None:
            return
        switch.add_flow(match, actions, priority=PROTECT_PRIORITY,
                        cookie=pair.pair_id)
        pair.rules.append((dpid, match))

    def _alloc_group(self, dpid: int) -> int:
        # Group ids above 1000 to stay clear of other apps' allocations.
        group_id = self._next_group.get(dpid, 1001)
        self._next_group[dpid] = group_id + 1
        return group_id

    def _teardown(self, pair: ProtectedPair) -> None:
        for dpid, match in pair.rules:
            switch = self.controller.switches.get(dpid)
            if switch is not None:
                switch.delete_flows(match=match,
                                    priority=PROTECT_PRIORITY,
                                    strict=True)
        for dpid, group_id in pair.groups:
            switch = self.controller.switches.get(dpid)
            if switch is not None:
                switch.delete_group(group_id)
        pair.rules = []
        pair.groups = []

    # ------------------------------------------------------------------
    # Re-protection after failures
    # ------------------------------------------------------------------
    def _on_link_vanished(self, event: LinkVanished) -> None:
        for pair in self.pairs.values():
            paths = [p for p in (pair.primary, pair.backup) if p]
            hit = any(
                {u, v} == {event.src_dpid, event.dst_dpid}
                for path in paths
                for u, v in zip(path, path[1:])
            )
            if hit:
                pair.reprotections += 1
                self._establish(pair)
