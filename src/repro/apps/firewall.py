"""A stateless ACL firewall compiled into table 0 of every switch.

The firewall owns the first pipeline table: deny rules drop, allow rules
(and the default-allow fallback) send the packet onward with
``goto_table``, where forwarding apps (learning switch, proactive router,
TE) operate.  This is the standard multi-table composition pattern —
policy first, forwarding second — and it means enforcement happens at
line rate in the dataplane, not in the controller.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.controller.core import App, SwitchHandle
from repro.controller.discovery import LLDP_RULE_PRIORITY
from repro.dataplane.match import FlowKey, Match
from repro.errors import ControllerError

__all__ = ["Firewall", "FirewallRule"]


class FirewallRule:
    """One ACL entry: a match pattern plus an allow/deny verdict."""

    __slots__ = ("rule_id", "match", "allow", "priority")

    def __init__(self, rule_id: int, match: Match, allow: bool,
                 priority: int) -> None:
        self.rule_id = rule_id
        self.match = match
        self.allow = allow
        self.priority = priority

    def __repr__(self) -> str:
        verdict = "allow" if self.allow else "deny"
        return f"<FirewallRule {self.rule_id} {verdict} {self.match!r}>"


class Firewall(App):
    """ACL enforcement in the first flow table.

    Parameters
    ----------
    table_id / next_table:
        The ACL table and where allowed traffic continues.
    default_allow:
        Verdict when no rule matches.  Deny-by-default networks set this
        False and whitelist flows explicitly.
    """

    name = "firewall"

    #: ACL priorities live below the discovery punt rule.
    MAX_PRIORITY = LLDP_RULE_PRIORITY - 1

    def __init__(self, table_id: int = 0, next_table: int = 1,
                 default_allow: bool = True) -> None:
        if next_table <= table_id:
            raise ControllerError("next_table must come after table_id")
        super().__init__()
        self.table_id = table_id
        self.next_table = next_table
        self.default_allow = default_allow
        self.rules: Dict[int, FirewallRule] = {}
        self._next_rule_id = 1

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------
    def add_rule(self, match: Match, allow: bool = False,
                 priority: int = 1000) -> FirewallRule:
        """Install an ACL rule on every connected switch."""
        if not 0 < priority <= self.MAX_PRIORITY:
            raise ControllerError(
                f"firewall priority must be in (0, {self.MAX_PRIORITY}]"
            )
        rule = FirewallRule(self._next_rule_id, match, allow, priority)
        self._next_rule_id += 1
        self.rules[rule.rule_id] = rule
        for switch in self.controller.switches.values():
            self._install_rule(switch, rule)
        return rule

    def remove_rule(self, rule_id: int) -> None:
        rule = self.rules.pop(rule_id, None)
        if rule is None:
            raise ControllerError(f"no firewall rule with id {rule_id}")
        for switch in self.controller.switches.values():
            switch.delete_flows(
                match=rule.match,
                table_id=self.table_id,
                priority=rule.priority,
                strict=True,
            )

    def deny(self, priority: int = 1000, **match_fields) -> FirewallRule:
        """Shorthand: ``fw.deny(ip_src="10.0.0.1", l4_dst=80)``."""
        return self.add_rule(Match(**match_fields), allow=False,
                             priority=priority)

    def allow(self, priority: int = 1000, **match_fields) -> FirewallRule:
        return self.add_rule(Match(**match_fields), allow=True,
                             priority=priority)

    # ------------------------------------------------------------------
    # Switch programming
    # ------------------------------------------------------------------
    def on_switch_enter(self, switch: SwitchHandle) -> None:
        if switch.num_tables <= self.next_table:
            raise ControllerError(
                f"switch {switch.dpid} has {switch.num_tables} tables; "
                f"firewall needs table {self.next_table}"
            )
        # Default verdict at priority 0.
        if self.default_allow:
            switch.add_flow(Match(), [], priority=0,
                            table_id=self.table_id,
                            goto_table=self.next_table)
        else:
            switch.add_flow(Match(), [], priority=0,
                            table_id=self.table_id)
        for rule in self.rules.values():
            self._install_rule(switch, rule)

    def _install_rule(self, switch: SwitchHandle,
                      rule: FirewallRule) -> None:
        if rule.allow:
            switch.add_flow(rule.match, [], priority=rule.priority,
                            table_id=self.table_id,
                            goto_table=self.next_table)
        else:
            switch.add_flow(rule.match, [], priority=rule.priority,
                            table_id=self.table_id)

    # ------------------------------------------------------------------
    # Pure evaluation (used by tests and benchmark E7)
    # ------------------------------------------------------------------
    def evaluate(self, key: FlowKey) -> bool:
        """The verdict this rule set gives ``key`` (True = allow).

        Mirrors dataplane semantics: highest priority wins, ties broken
        by most recent insertion.
        """
        best: Optional[FirewallRule] = None
        for rule in self.rules.values():
            if not rule.match.matches(key):
                continue
            if best is None or rule.priority > best.priority or (
                rule.priority == best.priority
                and rule.rule_id > best.rule_id
            ):
                best = rule
        if best is None:
            return self.default_allow
        return best.allow

    @property
    def rule_count(self) -> int:
        return len(self.rules)
