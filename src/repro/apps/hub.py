"""The dumbest possible app: flood everything from the controller.

Every packet visits the controller and is flooded — no flow rules are
ever installed.  It exists as the degenerate baseline for control-channel
overhead (benchmark E9): correct connectivity at maximal cost.
"""

from __future__ import annotations

from repro.controller.core import App
from repro.controller.events import PacketInEvent
from repro.dataplane.actions import Output, PORT_FLOOD
from repro.packet import LLDP

__all__ = ["HubApp"]


class HubApp(App):
    """Controller-mediated hub: flood every punted packet."""

    name = "hub"

    def __init__(self) -> None:
        super().__init__()
        self.packets_flooded = 0

    def on_packet_in(self, event: PacketInEvent) -> None:
        if event.packet.get(LLDP) is not None:
            return  # discovery traffic is not ours to repeat
        event.switch.packet_out(
            event.packet, [Output(PORT_FLOOD)], in_port=event.in_port
        )
        self.packets_flooded += 1
