"""The classic reactive L2 learning switch.

For every punted frame the app learns (switch, src MAC) → in_port.  When
the destination is already known it installs a flow so subsequent packets
stay in the dataplane; unknown destinations are flooded.

Two rule granularities are supported because their table-occupancy
behaviour differs by orders of magnitude (benchmark E2):

* ``exact_match=False`` (default): one rule per (dst MAC) — O(hosts).
* ``exact_match=True``: one microflow rule per flow key — O(flows),
  the shape Ethane-style per-flow admission produces.
"""

from __future__ import annotations

from typing import Dict

from repro.controller.core import App, SwitchHandle
from repro.controller.events import PacketInEvent, PortStatusEvent
from repro.dataplane.actions import Output, PORT_FLOOD
from repro.dataplane.match import FlowKey, Match
from repro.packet import Ethernet, LLDP, MACAddress

__all__ = ["LearningSwitch"]


class LearningSwitch(App):
    """Reactive MAC learning with flow installation."""

    name = "learning-switch"

    def __init__(
        self,
        exact_match: bool = False,
        idle_timeout: float = 10.0,
        hard_timeout: float = 0.0,
        priority: int = 100,
        table_id: int = 0,
    ) -> None:
        super().__init__()
        self.exact_match = exact_match
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.priority = priority
        self.table_id = table_id
        #: dpid -> {mac -> port}
        self.mac_tables: Dict[int, Dict[MACAddress, int]] = {}
        self.flows_installed = 0
        self.packets_flooded = 0

    def on_switch_enter(self, switch: SwitchHandle) -> None:
        self.mac_tables.setdefault(switch.dpid, {})

    def on_switch_leave(self, dpid: int) -> None:
        self.mac_tables.pop(dpid, None)

    def on_port_status(self, event: PortStatusEvent) -> None:
        if event.up:
            return
        # Unlearn everything behind a dead port so traffic refloods.
        table = self.mac_tables.get(event.switch.dpid)
        if not table:
            return
        dead = [mac for mac, port in table.items()
                if port == event.port_no]
        for mac in dead:
            del table[mac]

    def on_packet_in(self, event: PacketInEvent) -> None:
        packet = event.packet
        if packet.get(LLDP) is not None:
            return
        eth = packet.get(Ethernet)
        if eth is None:
            return
        dpid = event.switch.dpid
        table = self.mac_tables.setdefault(dpid, {})
        if not eth.src.is_multicast:
            table[eth.src] = event.in_port
        out_port = table.get(eth.dst)
        if out_port is None or eth.dst.is_multicast:
            event.switch.packet_out(
                packet, [Output(PORT_FLOOD)], in_port=event.in_port
            )
            self.packets_flooded += 1
            return
        match = self._build_match(packet, event.in_port, eth)
        event.switch.add_flow(
            match,
            [Output(out_port)],
            priority=self.priority,
            table_id=self.table_id,
            idle_timeout=self.idle_timeout,
            hard_timeout=self.hard_timeout,
        )
        self.flows_installed += 1
        # Forward the triggering packet itself.
        event.switch.packet_out(
            packet, [Output(out_port)], in_port=event.in_port
        )

    def _build_match(self, packet, in_port: int, eth: Ethernet) -> Match:
        if self.exact_match:
            return Match.exact(FlowKey.from_packet(packet, in_port))
        return Match(eth_dst=eth.dst)

    def lookup(self, dpid: int, mac) -> int:
        """Test helper: the learned port for ``mac`` on ``dpid`` (-1 if
        unknown)."""
        return self.mac_tables.get(dpid, {}).get(MACAddress(mac), -1)
