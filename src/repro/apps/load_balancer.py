"""An L4 virtual-IP load balancer (Ananta-style, controller-driven).

Clients talk to a VIP that no real host owns.  The balancer answers ARP
for the VIP with a virtual MAC, picks a backend for each new connection
(round-robin or 5-tuple hash), and installs two rewrite rules:

* at the client's ingress switch: ``dst VIP → dst backend`` then goto the
  forwarding table,
* at the backend's edge switch: ``src backend → src VIP`` for the return
  direction, so clients only ever see the VIP.

Connection rules carry an idle timeout, so the per-connection state is
self-cleaning — the same design trade-off real L4 balancers make.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.controller.core import App, SwitchHandle
from repro.controller.discovery import TopologyDiscovery
from repro.controller.events import PacketInEvent
from repro.controller.hosttracker import HostTracker
from repro.dataplane.actions import (
    Output,
    PORT_TABLE,
    SetEthDst,
    SetEthSrc,
    SetIPDst,
    SetIPSrc,
)
from repro.dataplane.match import Match
from repro.errors import ControllerError
from repro.packet import (
    ARP,
    Ethernet,
    EtherType,
    IPv4,
    IPv4Address,
    MACAddress,
    TCP,
    UDP,
)

__all__ = ["LoadBalancer"]

#: Priority for per-connection rewrite rules.
CONNECTION_PRIORITY = 20000


class LoadBalancer(App):
    """VIP load balancing across a backend pool."""

    name = "load-balancer"

    def __init__(
        self,
        vip: Union[str, IPv4Address],
        backends: List[Union[str, IPv4Address]],
        vmac: Union[str, MACAddress] = "02:ff:00:00:00:01",
        mode: str = "round_robin",
        table_id: int = 0,
        next_table: int = 1,
        idle_timeout: float = 10.0,
        host_tracker: Optional[HostTracker] = None,
        discovery: Optional[TopologyDiscovery] = None,
    ) -> None:
        if mode not in ("round_robin", "hash"):
            raise ControllerError(f"unknown balancing mode {mode!r}")
        if not backends:
            raise ControllerError("backend pool must not be empty")
        super().__init__()
        self.vip = IPv4Address(vip)
        self.vmac = MACAddress(vmac)
        self.backends = [IPv4Address(b) for b in backends]
        self.mode = mode
        self.table_id = table_id
        self.next_table = next_table
        self.idle_timeout = idle_timeout
        self._tracker = host_tracker
        self._discovery = discovery
        self._rr_index = 0
        #: backend ip -> connections assigned (benchmark E6 reads this).
        self.assignments: Dict[IPv4Address, int] = {
            b: 0 for b in self.backends
        }
        self.arp_replies = 0
        self.connections = 0

    def start(self, controller) -> None:
        super().start(controller)
        if self._tracker is None:
            self._tracker = controller.get_app(HostTracker)
        if self._tracker is None:
            raise ControllerError("LoadBalancer needs a HostTracker app")
        # The virtual MAC must never be mistaken for a host, or routing
        # apps will install blackhole rules toward wherever a rewritten
        # packet was last punted.
        self._tracker.exclude_mac(self.vmac)
        if self._discovery is None:
            self._discovery = controller.get_app(TopologyDiscovery)

    def on_switch_enter(self, switch: SwitchHandle) -> None:
        # Traffic not aimed at the VIP just continues to forwarding.
        switch.add_flow(Match(), [], priority=0, table_id=self.table_id,
                        goto_table=self.next_table)

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def on_packet_in(self, event: PacketInEvent) -> None:
        # Act only at the client's ingress edge.  Flooded copies of the
        # same packet punt at interior switches too; opening connections
        # there would double-count assignments and install stray rules.
        if (self._discovery is not None
                and not self._discovery.is_edge_port(
                    event.switch.dpid, event.in_port)):
            return
        arp = event.packet.get(ARP)
        if arp is not None:
            if arp.is_request and arp.target_ip == self.vip:
                self._answer_vip_arp(event, arp)
            return
        ip = event.packet.get(IPv4)
        if ip is None or ip.dst != self.vip:
            return
        self._open_connection(event, ip)

    def _answer_vip_arp(self, event: PacketInEvent, arp: ARP) -> None:
        reply = (
            Ethernet(dst=arp.sender_mac, src=self.vmac)
            / ARP(
                opcode=ARP.REPLY,
                sender_mac=self.vmac,
                sender_ip=self.vip,
                target_mac=arp.sender_mac,
                target_ip=arp.sender_ip,
            )
        )
        event.switch.packet_out(reply, [Output(event.in_port)])
        self.arp_replies += 1

    # ------------------------------------------------------------------
    # Connection setup
    # ------------------------------------------------------------------
    def _client_port(self, packet) -> Optional[int]:
        l4 = packet.get(TCP) or packet.get(UDP)
        return None if l4 is None else l4.src_port

    def _pick_backend(self, ip: IPv4, client_port: int):
        """A healthy backend's host entry, or ``None`` if none is known."""
        healthy = [
            b for b in self.backends
            if self._tracker.lookup_ip(b) is not None
        ]
        if not healthy:
            return None
        if self.mode == "hash":
            choice = healthy[
                hash((ip.src, client_port, ip.proto)) % len(healthy)
            ]
        else:
            choice = healthy[self._rr_index % len(healthy)]
            self._rr_index += 1
        return self._tracker.lookup_ip(choice)

    def _open_connection(self, event: PacketInEvent, ip: IPv4) -> None:
        client_port = self._client_port(event.packet)
        if client_port is None:
            return  # only TCP/UDP is balanced
        backend = self._pick_backend(ip, client_port)
        if backend is None or backend.ip is None:
            return  # no live backends; the packet is dropped
        self.connections += 1
        self.assignments[backend.ip] = (
            self.assignments.get(backend.ip, 0) + 1
        )
        forward_match = Match(
            eth_type=EtherType.IPV4,
            ip_src=ip.src,
            ip_dst=self.vip,
            ip_proto=ip.proto,
            l4_src=client_port,
        )
        forward_actions = [SetEthDst(backend.mac), SetIPDst(backend.ip)]
        event.switch.add_flow(
            forward_match, forward_actions,
            priority=CONNECTION_PRIORITY,
            table_id=self.table_id,
            idle_timeout=self.idle_timeout,
            goto_table=self.next_table,
        )
        # Return-path rewrite at the backend's edge switch.
        backend_switch = self.controller.switches.get(backend.dpid)
        if backend_switch is not None:
            reverse_match = Match(
                eth_type=EtherType.IPV4,
                ip_src=backend.ip,
                ip_dst=ip.src,
                ip_proto=ip.proto,
                l4_dst=client_port,
            )
            backend_switch.add_flow(
                reverse_match,
                [SetIPSrc(self.vip), SetEthSrc(self.vmac)],
                priority=CONNECTION_PRIORITY,
                table_id=self.table_id,
                idle_timeout=self.idle_timeout,
                goto_table=self.next_table,
            )
        # Re-run the triggering packet through the (now programmed)
        # pipeline so it reaches the backend without waiting for a
        # retransmission.
        event.switch.packet_out(
            event.packet,
            forward_actions + [Output(PORT_TABLE)],
            in_port=event.in_port,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def distribution(self) -> Dict[str, int]:
        """Backend → assigned connection count, keyed by dotted quad."""
        return {str(ip): n for ip, n in self.assignments.items()}

    def imbalance(self) -> float:
        """max/mean assignment ratio; 1.0 is perfectly balanced."""
        counts = list(self.assignments.values())
        total = sum(counts)
        if not total:
            return 1.0
        mean = total / len(counts)
        return max(counts) / mean if mean else 1.0
