"""Proactive ECMP routing with SELECT groups.

Where :class:`ProactiveRouter` pins each destination to a single
shortest-path next hop, this app programs *all* equal-cost next hops as
a SELECT group: the switch hashes each flow onto one member, so
different flows spread across the fabric with zero controller
involvement — the standard data-centre multipath design (and what makes
fat-trees worth their links).

Groups are shared: every destination with the same next-hop port set on
a switch points at the same group entry, which keeps group-table state
O(distinct port sets), not O(hosts).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

import networkx as nx

from repro.apps.proactive_router import ProactiveRouter
from repro.controller.core import SwitchHandle
from repro.dataplane.actions import Group, Output
from repro.dataplane.group import Bucket, GroupType
from repro.dataplane.match import Match
from repro.packet import MACAddress

__all__ = ["MultipathRouter"]


class MultipathRouter(ProactiveRouter):
    """All-pairs proactive routing over every equal-cost path."""

    name = "multipath-router"

    def __init__(self, max_paths: int = 4, **kwargs) -> None:
        super().__init__(**kwargs)
        self.max_paths = max_paths
        #: (dpid, mac) -> frozenset of next-hop ports we programmed.
        self._installed_sets: Dict[Tuple[int, MACAddress],
                                   FrozenSet[int]] = {}
        #: (dpid, port set) -> group id, for group sharing.
        self._group_ids: Dict[Tuple[int, FrozenSet[int]], int] = {}
        self._next_group: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Rebuild with ECMP sets
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        self._rebuild_pending = False
        self.rebuild_count += 1
        graph = self._discovery.graph()
        wanted: Dict[Tuple[int, MACAddress], FrozenSet[int]] = {}
        for entry in self._tracker.hosts_by_mac.values():
            if entry.dpid not in graph:
                continue
            dist = nx.single_source_shortest_path_length(
                graph, entry.dpid)
            for dpid in graph.nodes:
                if dpid == entry.dpid:
                    wanted[(dpid, entry.mac)] = frozenset(
                        {entry.port})
                    continue
                if dpid not in dist:
                    continue
                next_hops = sorted(
                    n for n in graph.neighbors(dpid)
                    if dist.get(n, -1) + 1 == dist[dpid]
                )[: self.max_paths]
                ports = set()
                for hop in next_hops:
                    port = self._discovery.port_toward(dpid, hop)
                    if port is not None:
                        ports.add(port)
                if ports:
                    wanted[(dpid, entry.mac)] = frozenset(ports)
        self._apply_set_diff(wanted)

    def _apply_set_diff(
        self,
        wanted: Dict[Tuple[int, MACAddress], FrozenSet[int]],
    ) -> None:
        switches = self.controller.switches
        for key in list(self._installed_sets):
            if key not in wanted:
                dpid, mac = key
                switch = switches.get(dpid)
                if switch is not None:
                    switch.delete_flows(
                        match=Match(eth_dst=mac),
                        table_id=self.table_id,
                        priority=self.priority,
                        strict=True,
                    )
                del self._installed_sets[key]
        for key, ports in wanted.items():
            if self._installed_sets.get(key) == ports:
                continue
            dpid, mac = key
            switch = switches.get(dpid)
            if switch is None:
                continue
            if len(ports) == 1:
                actions = [Output(next(iter(ports)))]
            else:
                group_id = self._group_for(switch, ports)
                actions = [Group(group_id)]
            switch.add_flow(
                Match(eth_dst=mac),
                actions,
                priority=self.priority,
                table_id=self.table_id,
            )
            self._installed_sets[key] = ports

    def _group_for(self, switch: SwitchHandle,
                   ports: FrozenSet[int]) -> int:
        """The shared SELECT group for a next-hop port set."""
        key = (switch.dpid, ports)
        group_id = self._group_ids.get(key)
        if group_id is not None:
            return group_id
        group_id = self._next_group.get(switch.dpid, 1)
        self._next_group[switch.dpid] = group_id + 1
        switch.add_group(
            group_id,
            GroupType.SELECT,
            [Bucket([Output(p)]) for p in sorted(ports)],
        )
        self._group_ids[key] = group_id
        return group_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rules_installed(self) -> int:
        return len(self._installed_sets)

    @property
    def multipath_rules(self) -> int:
        """Destinations currently spread over more than one port."""
        return sum(1 for ports in self._installed_sets.values()
                   if len(ports) > 1)

    @property
    def groups_created(self) -> int:
        return len(self._group_ids)
