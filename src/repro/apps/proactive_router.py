"""Proactive shortest-path L2 routing.

Where the learning switch reacts to traffic, this app *pre-installs* a
destination-MAC rule on every switch for every known host, rebuilt on
each topology or host change.  First packets to a known host never visit
the controller — the proactive half of benchmark E1's comparison — and
total table occupancy is O(hosts × switches) regardless of flow count
(benchmark E2).

Unknown destinations and broadcasts are flooded along a loop-free
spanning tree of the discovered graph, so the app stays correct on
redundant topologies where naive flooding would storm.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import networkx as nx

from repro.controller.core import App
from repro.controller.discovery import TopologyDiscovery
from repro.controller.events import (
    HostDiscovered,
    HostMoved,
    LinkDiscovered,
    LinkVanished,
    PacketInEvent,
)
from repro.controller.hosttracker import HostTracker
from repro.dataplane.actions import Output
from repro.dataplane.match import Match
from repro.errors import ControllerError
from repro.graphutil import canonical_tree_edges
from repro.packet import ARP, Ethernet, LLDP, MACAddress

__all__ = ["ProactiveRouter"]


class ProactiveRouter(App):
    """All-pairs proactive destination routing with spanning-tree floods."""

    name = "proactive-router"

    def __init__(
        self,
        discovery: Optional[TopologyDiscovery] = None,
        host_tracker: Optional[HostTracker] = None,
        priority: int = 200,
        table_id: int = 0,
        rebuild_delay: float = 0.01,
    ) -> None:
        super().__init__()
        self._discovery = discovery
        self._tracker = host_tracker
        self.priority = priority
        self.table_id = table_id
        self.rebuild_delay = rebuild_delay
        #: (dpid, mac) -> out_port for rules we currently have installed.
        self._installed: Dict[Tuple[int, MACAddress], int] = {}
        self._rebuild_pending = False
        self.rebuild_count = 0
        self.packets_flooded = 0

    def start(self, controller) -> None:
        super().start(controller)
        if self._discovery is None:
            self._discovery = controller.get_app(TopologyDiscovery)
        if self._tracker is None:
            self._tracker = controller.get_app(HostTracker)
        if self._discovery is None or self._tracker is None:
            raise ControllerError(
                "ProactiveRouter needs TopologyDiscovery and HostTracker"
            )
        for event_type in (HostDiscovered, HostMoved, LinkDiscovered,
                           LinkVanished):
            controller.subscribe(event_type,
                                 lambda _ev: self.schedule_rebuild(),
                                 owner=self.name)

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------
    def schedule_rebuild(self) -> None:
        """Debounced: coalesce event bursts into one rebuild."""
        if self._rebuild_pending:
            return
        self._rebuild_pending = True
        self.sim.schedule(self.rebuild_delay, self._rebuild)

    def _rebuild(self) -> None:
        self._rebuild_pending = False
        self.rebuild_count += 1
        graph = self._discovery.graph()
        wanted: Dict[Tuple[int, MACAddress], int] = {}
        for entry in self._tracker.hosts_by_mac.values():
            if entry.dpid not in graph:
                continue
            # Shortest-path tree toward the host's attachment switch.
            try:
                paths = nx.single_source_shortest_path(graph, entry.dpid)
            except nx.NodeNotFound:  # pragma: no cover - defensive
                continue
            for dpid, path in paths.items():
                if dpid == entry.dpid:
                    wanted[(dpid, entry.mac)] = entry.port
                    continue
                # path is [entry.dpid, ..., dpid]; next hop back toward
                # the host is the second-to-last element.
                next_hop = path[-2]
                port = self._discovery.port_toward(dpid, next_hop)
                if port is not None:
                    wanted[(dpid, entry.mac)] = port
        self._apply_diff(wanted)

    def _apply_diff(self, wanted: Dict[Tuple[int, MACAddress], int]) -> None:
        switches = self.controller.switches
        for key in list(self._installed):
            if key not in wanted:
                dpid, mac = key
                switch = switches.get(dpid)
                if switch is not None:
                    switch.delete_flows(
                        match=Match(eth_dst=mac),
                        table_id=self.table_id,
                        priority=self.priority,
                        strict=True,
                    )
                del self._installed[key]
        for key, port in wanted.items():
            if self._installed.get(key) == port:
                continue
            dpid, mac = key
            switch = switches.get(dpid)
            if switch is None:
                continue
            switch.add_flow(
                Match(eth_dst=mac),
                [Output(port)],
                priority=self.priority,
                table_id=self.table_id,
            )
            self._installed[key] = port

    @property
    def rules_installed(self) -> int:
        return len(self._installed)

    # ------------------------------------------------------------------
    # Flooding fallback for unknowns and broadcast
    # ------------------------------------------------------------------
    def on_packet_in(self, event: PacketInEvent) -> None:
        packet = event.packet
        if packet.get(LLDP) is not None:
            return
        eth = packet.get(Ethernet)
        if eth is None:
            return
        arp = packet.get(ARP)
        if arp is not None and arp.is_request:
            # Leave answered requests to the ArpProxy (if present and
            # knowledgeable); only flood the unknown ones.
            if self._tracker.lookup_ip(arp.target_ip) is not None:
                return
        self._flood_on_tree(event)

    def _flood_on_tree(self, event: PacketInEvent) -> None:
        """Flood at the punting switch along spanning-tree + edge ports.

        Each switch that receives the flood and misses will punt and
        flood its own tree ports in turn, so the packet propagates hop
        by hop without ever looping.
        """
        dpid = event.switch.dpid
        ports = self.flood_ports(dpid) - {event.in_port}
        if not ports:
            return
        event.switch.packet_out(
            event.packet,
            [Output(p) for p in sorted(ports)],
            in_port=event.in_port,
        )
        self.packets_flooded += 1

    def flood_ports(self, dpid: int) -> Set[int]:
        """Edge ports plus this switch's spanning-tree ports."""
        graph = self._discovery.graph()
        switch = self.controller.switches.get(dpid)
        if switch is None:
            return set()
        all_ports = {p.number for p in switch.ports.values() if p.up}
        inter_switch = self._discovery.switch_ports_in_use(dpid)
        edge_ports = all_ports - inter_switch
        tree_ports: Set[int] = set()
        if dpid in graph and graph.number_of_edges() > 0:
            for edge in canonical_tree_edges(graph):
                if dpid in edge:
                    (other,) = edge - {dpid}
                    port = self._discovery.port_toward(dpid, other)
                    if port is not None:
                        tree_ports.add(port)
        return edge_ports | tree_ports
