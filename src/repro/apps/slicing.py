"""Network slicing with dataplane rate enforcement.

A slice is a set of member hosts plus a bandwidth cap.  Membership is
classified in the slicing table (by source IP) and every member's traffic
passes a per-slice meter before continuing to forwarding.  Because the
meter lives in the switch, a misbehaving slice is throttled at line rate
— the controller is not in the loop.  Benchmark E10 cuts exactly this
behaviour both ways (meters on vs off).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.controller.core import App, SwitchHandle
from repro.dataplane.actions import Meter
from repro.dataplane.match import Match
from repro.errors import ControllerError
from repro.packet import EtherType, IPv4Address

__all__ = ["NetworkSlicing", "Slice"]

SLICE_PRIORITY = 5000


class Slice:
    """One tenant slice: members and a rate cap."""

    __slots__ = ("slice_id", "name", "members", "rate_bps")

    def __init__(self, slice_id: int, name: str,
                 members: List[IPv4Address], rate_bps: float) -> None:
        self.slice_id = slice_id
        self.name = name
        self.members = members
        self.rate_bps = rate_bps

    def __repr__(self) -> str:
        return (
            f"<Slice {self.name!r} id={self.slice_id} "
            f"{len(self.members)} members @ {self.rate_bps / 1e6:.0f}Mbps>"
        )


class NetworkSlicing(App):
    """Classifies traffic into slices and meters each slice."""

    name = "slicing"

    def __init__(self, table_id: int = 0, next_table: int = 1,
                 enforce: bool = True) -> None:
        super().__init__()
        self.table_id = table_id
        self.next_table = next_table
        #: With enforcement off, slices are classified but not metered —
        #: the ablation arm of benchmark E10.
        self.enforce = enforce
        self.slices: Dict[int, Slice] = {}
        self._next_slice_id = 1

    def on_switch_enter(self, switch: SwitchHandle) -> None:
        switch.add_flow(Match(), [], priority=0, table_id=self.table_id,
                        goto_table=self.next_table)
        for slc in self.slices.values():
            self._install_slice(switch, slc)

    # ------------------------------------------------------------------
    # Slice management
    # ------------------------------------------------------------------
    def define_slice(self, name: str,
                     members: Iterable[Union[str, IPv4Address]],
                     rate_bps: float) -> Slice:
        """Create a slice and program every connected switch."""
        if rate_bps <= 0:
            raise ControllerError(f"slice rate must be positive: {rate_bps}")
        member_ips = [IPv4Address(m) for m in members]
        if not member_ips:
            raise ControllerError("a slice needs at least one member")
        for other in self.slices.values():
            overlap = set(map(str, other.members)) & set(map(str, member_ips))
            if overlap:
                raise ControllerError(
                    f"member(s) {sorted(overlap)} already in slice "
                    f"{other.name!r}"
                )
        slc = Slice(self._next_slice_id, name, member_ips, rate_bps)
        self._next_slice_id += 1
        self.slices[slc.slice_id] = slc
        for switch in self.controller.switches.values():
            self._install_slice(switch, slc)
        return slc

    def remove_slice(self, slice_id: int) -> None:
        slc = self.slices.pop(slice_id, None)
        if slc is None:
            raise ControllerError(f"no slice with id {slice_id}")
        for switch in self.controller.switches.values():
            for member in slc.members:
                switch.delete_flows(
                    match=Match(eth_type=EtherType.IPV4, ip_src=member),
                    table_id=self.table_id,
                    priority=SLICE_PRIORITY,
                    strict=True,
                )
            switch.delete_meter(slc.slice_id)

    def _install_slice(self, switch: SwitchHandle, slc: Slice) -> None:
        if self.enforce:
            switch.add_meter(slc.slice_id, slc.rate_bps)
        actions = [Meter(slc.slice_id)] if self.enforce else []
        for member in slc.members:
            switch.add_flow(
                Match(eth_type=EtherType.IPV4, ip_src=member),
                actions,
                priority=SLICE_PRIORITY,
                table_id=self.table_id,
                goto_table=self.next_table,
            )

    def slice_of(self, ip: Union[str, IPv4Address]) -> Optional[Slice]:
        addr = IPv4Address(ip)
        for slc in self.slices.values():
            if addr in slc.members:
                return slc
        return None
