"""Centralised traffic engineering (a B4/SWAN-shaped app).

The TE problem here is path placement: given a set of (src, dst, rate)
demands and link capacities, choose a path per demand that keeps the most
loaded link as idle as possible.  Three placement strategies are provided
because benchmark E5 compares them:

* :func:`spf_place` — everyone on the first shortest path (the
  non-engineered baseline),
* :func:`ecmp_place` — hash-spread over equal-cost shortest paths,
* :func:`greedy_place` — capacity-aware greedy over k-shortest paths,
  largest demands first (the TE contribution).

The pure functions operate on any :mod:`networkx` graph, so they unit-test
without a network; :class:`TrafficEngineering` wraps them into an app that
installs the placement and re-places on topology churn.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple, Union

import networkx as nx

from repro.controller.core import App
from repro.controller.discovery import TopologyDiscovery
from repro.controller.events import LinkVanished
from repro.controller.hosttracker import HostTracker
from repro.controller.pathing import PathService
from repro.dataplane.actions import Output
from repro.dataplane.match import Match
from repro.errors import ControllerError
from repro.packet import EtherType, IPv4Address

__all__ = [
    "Demand",
    "PlacementResult",
    "greedy_place",
    "ecmp_place",
    "spf_place",
    "TrafficEngineering",
]

TE_PRIORITY = 25000

LinkKey = FrozenSet[int]


class Demand:
    """One traffic demand: ``rate_bps`` from ``src_ip`` to ``dst_ip``."""

    __slots__ = ("src_ip", "dst_ip", "rate_bps")

    def __init__(self, src_ip: Union[str, IPv4Address],
                 dst_ip: Union[str, IPv4Address], rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ControllerError(f"demand rate must be positive: {rate_bps}")
        self.src_ip = IPv4Address(src_ip)
        self.dst_ip = IPv4Address(dst_ip)
        self.rate_bps = rate_bps

    def __repr__(self) -> str:
        return (
            f"Demand({self.src_ip} -> {self.dst_ip}, "
            f"{self.rate_bps / 1e6:.1f}Mbps)"
        )


class PlacementResult:
    """The outcome of a placement run."""

    def __init__(self) -> None:
        #: demand -> dpid path (None when rejected).
        self.paths: Dict[Demand, Optional[List[int]]] = {}
        #: frozenset{u, v} -> booked bps.
        self.link_loads: Dict[LinkKey, float] = {}
        self.rejected: List[Demand] = []

    def max_utilisation(self, capacities: Dict[LinkKey, float]) -> float:
        """Peak booked/capacity over all loaded links."""
        peak = 0.0
        for key, load in self.link_loads.items():
            cap = capacities.get(key, 0.0)
            if cap > 0:
                peak = max(peak, load / cap)
        return peak

    @property
    def admitted_rate(self) -> float:
        return sum(d.rate_bps for d, p in self.paths.items()
                   if p is not None)

    def __repr__(self) -> str:
        placed = sum(1 for p in self.paths.values() if p is not None)
        return (
            f"<PlacementResult {placed}/{len(self.paths)} placed, "
            f"{len(self.rejected)} rejected>"
        )


def _edges_of(path: List[int]) -> List[LinkKey]:
    return [frozenset((u, v)) for u, v in zip(path, path[1:])]


def _book(result: PlacementResult, demand: Demand,
          path: Optional[List[int]]) -> None:
    result.paths[demand] = path
    if path is None:
        result.rejected.append(demand)
        return
    for edge in _edges_of(path):
        result.link_loads[edge] = (
            result.link_loads.get(edge, 0.0) + demand.rate_bps
        )


def spf_place(graph: nx.Graph, demands: List[Demand],
              locate) -> PlacementResult:
    """Everyone on the single shortest path (hop count)."""
    result = PlacementResult()
    for demand in demands:
        src, dst = locate(demand.src_ip), locate(demand.dst_ip)
        try:
            path = nx.shortest_path(graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            path = None
        _book(result, demand, path)
    return result


def ecmp_place(graph: nx.Graph, demands: List[Demand],
               locate) -> PlacementResult:
    """Hash each demand onto one of its equal-cost shortest paths."""
    result = PlacementResult()
    for demand in demands:
        src, dst = locate(demand.src_ip), locate(demand.dst_ip)
        try:
            paths = sorted(nx.all_shortest_paths(graph, src, dst))
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            _book(result, demand, None)
            continue
        index = hash((demand.src_ip, demand.dst_ip)) % len(paths)
        _book(result, demand, paths[index])
    return result


def greedy_place(
    graph: nx.Graph,
    demands: List[Demand],
    locate,
    capacities: Dict[LinkKey, float],
    k: int = 4,
    admit_all: bool = False,
) -> PlacementResult:
    """Capacity-aware greedy placement over k-shortest candidate paths.

    Demands are placed largest-first; each takes the candidate path that
    minimises the resulting bottleneck utilisation.  A demand whose best
    candidate would exceed capacity is rejected unless ``admit_all``.
    """
    result = PlacementResult()
    for demand in sorted(demands, key=lambda d: -d.rate_bps):
        src, dst = locate(demand.src_ip), locate(demand.dst_ip)
        candidates: List[List[int]] = []
        try:
            for path in nx.shortest_simple_paths(graph, src, dst):
                candidates.append(path)
                if len(candidates) >= k:
                    break
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            pass
        best_path = None
        best_cost = float("inf")
        for path in candidates:
            # Utilisation of the path's worst link if we placed here.
            cost = 0.0
            for edge in _edges_of(path):
                cap = capacities.get(edge, 0.0)
                if cap <= 0:
                    cost = float("inf")
                    break
                load = result.link_loads.get(edge, 0.0) + demand.rate_bps
                cost = max(cost, load / cap)
            if cost < best_cost:
                best_cost = cost
                best_path = path
        if best_path is None or (best_cost > 1.0 and not admit_all):
            _book(result, demand, None)
        else:
            _book(result, demand, best_path)
    return result


class TrafficEngineering(App):
    """Installs a placement as flow rules and re-places on failures."""

    name = "traffic-engineering"

    def __init__(
        self,
        capacities: Optional[Dict[LinkKey, float]] = None,
        default_capacity_bps: float = 100e6,
        k: int = 4,
        table_id: int = 0,
        strategy: str = "greedy",
        admit_all: bool = True,
        discovery: Optional[TopologyDiscovery] = None,
        host_tracker: Optional[HostTracker] = None,
    ) -> None:
        if strategy not in ("greedy", "ecmp", "spf"):
            raise ControllerError(f"unknown TE strategy {strategy!r}")
        super().__init__()
        self.capacities = dict(capacities or {})
        self.default_capacity_bps = default_capacity_bps
        self.k = k
        self.table_id = table_id
        self.strategy = strategy
        self.admit_all = admit_all
        self._discovery = discovery
        self._tracker = host_tracker
        self._paths: Optional[PathService] = None
        self.demands: List[Demand] = []
        self.last_result: Optional[PlacementResult] = None
        self._installed: List[Tuple[int, Match]] = []
        self.replacements = 0

    def start(self, controller) -> None:
        super().start(controller)
        if self._discovery is None:
            self._discovery = controller.get_app(TopologyDiscovery)
        if self._tracker is None:
            self._tracker = controller.get_app(HostTracker)
        if self._discovery is None or self._tracker is None:
            raise ControllerError(
                "TrafficEngineering needs TopologyDiscovery and HostTracker"
            )
        self._paths = PathService(self._discovery)
        controller.subscribe(LinkVanished, lambda _ev: self.replace(),
                             owner=self.name)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _capacity_map(self, graph: nx.Graph) -> Dict[LinkKey, float]:
        caps = {}
        for u, v in graph.edges():
            key = frozenset((u, v))
            caps[key] = self.capacities.get(key, self.default_capacity_bps)
        return caps

    def _locate(self, ip: IPv4Address) -> int:
        return self._tracker.require_ip(ip).dpid

    def place(self, demands: List[Demand]) -> PlacementResult:
        """Compute a placement for ``demands`` (no installation)."""
        graph = self._discovery.graph()
        caps = self._capacity_map(graph)
        if self.strategy == "greedy":
            return greedy_place(graph, demands, self._locate, caps,
                                k=self.k, admit_all=self.admit_all)
        if self.strategy == "ecmp":
            return ecmp_place(graph, demands, self._locate)
        return spf_place(graph, demands, self._locate)

    def install(self, demands: List[Demand]) -> PlacementResult:
        """Place ``demands`` and program the network accordingly."""
        self.demands = list(demands)
        result = self.place(self.demands)
        self._uninstall_all()
        for demand, path in result.paths.items():
            if path is not None:
                self._install_demand(demand, path)
        self.last_result = result
        return result

    def replace(self) -> Optional[PlacementResult]:
        """Re-run placement after topology churn."""
        if not self.demands:
            return None
        self.replacements += 1
        return self.install(self.demands)

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    def _install_demand(self, demand: Demand, path: List[int]) -> None:
        dst_entry = self._tracker.require_ip(demand.dst_ip)
        match = Match(
            eth_type=EtherType.IPV4,
            ip_src=demand.src_ip,
            ip_dst=demand.dst_ip,
        )
        hops = (self._paths.path_ports(path) if len(path) > 1 else [])
        hops.append((path[-1], dst_entry.port))
        for dpid, out_port in hops:
            switch = self.controller.switches.get(dpid)
            if switch is None:
                continue
            switch.add_flow(match, [Output(out_port)],
                            priority=TE_PRIORITY, table_id=self.table_id)
            self._installed.append((dpid, match))

    def _uninstall_all(self) -> None:
        for dpid, match in self._installed:
            switch = self.controller.switches.get(dpid)
            if switch is not None:
                switch.delete_flows(match=match, table_id=self.table_id,
                                    priority=TE_PRIORITY, strict=True)
        self._installed = []
