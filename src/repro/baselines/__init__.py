"""Distributed control-plane baselines (the pre-SDN comparison points)."""

from repro.baselines.linkstate import (
    LS_ETHERTYPE,
    LinkStateNetwork,
    LinkStateSwitch,
    LSMessage,
)
from repro.baselines.stp import (
    BPDU,
    BPDU_ETHERTYPE,
    SpanningTreeNetwork,
    StpSwitch,
)

__all__ = [
    "BPDU",
    "BPDU_ETHERTYPE",
    "LinkStateNetwork",
    "LinkStateSwitch",
    "LSMessage",
    "LS_ETHERTYPE",
    "SpanningTreeNetwork",
    "StpSwitch",
]
