"""Distributed baseline #2: link-state routing (an OSPF-lite).

Each switch runs a local routing process: hellos discover neighbours,
link-state advertisements flood the adjacency and attached-host database,
and every switch independently runs Dijkstra to program its own
forwarding table.  This is the strongest distributed competitor to
centralised control — same shortest paths as the proactive SDN router,
but convergence is bounded by hello dead-intervals and flooding instead
of a controller's global view (benchmark E4 measures the difference).

Failure detection is hello-timeout by default; ``carrier_detect=True``
enables immediate port-down reaction, the ablation arm that shows how
much of OSPF's lag is detection rather than flooding.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Set

import networkx as nx

from repro.dataplane.actions import Output, PORT_CONTROLLER
from repro.dataplane.flowtable import FlowEntry
from repro.dataplane.match import Match
from repro.dataplane.switch import Datapath
from repro.errors import DecodeError
from repro.graphutil import canonical_tree_edges
from repro.netem.network import Network
from repro.packet import Ethernet, Header, MACAddress, Packet
from repro.packet.ethernet import register_ethertype

__all__ = ["LSMessage", "LinkStateSwitch", "LinkStateNetwork",
           "LS_ETHERTYPE"]

LS_ETHERTYPE = 0x88B6
_LS_MULTICAST = MACAddress("01:80:c2:00:00:0f")

_KIND_HELLO = 1
_KIND_LSA = 2


class LSMessage(Header):
    """Hello or LSA, depending on ``kind``.

    An LSA carries the originator's neighbour set and attached host MACs
    with a sequence number for freshness.
    """

    name = "ls"

    def __init__(self, kind: int = _KIND_HELLO, origin: int = 0,
                 seq: int = 0, neighbours: Optional[List[int]] = None,
                 hosts: Optional[List[MACAddress]] = None) -> None:
        self.kind = kind
        self.origin = origin
        self.seq = seq
        self.neighbours = list(neighbours or [])
        self.hosts = list(hosts or [])

    @classmethod
    def hello(cls, origin: int) -> "LSMessage":
        return cls(_KIND_HELLO, origin)

    @classmethod
    def lsa(cls, origin: int, seq: int, neighbours: List[int],
            hosts: List[MACAddress]) -> "LSMessage":
        return cls(_KIND_LSA, origin, seq, neighbours, hosts)

    @property
    def is_hello(self) -> bool:
        return self.kind == _KIND_HELLO

    @property
    def is_lsa(self) -> bool:
        return self.kind == _KIND_LSA

    def encode(self, following: bytes) -> bytes:
        head = struct.pack("!BQI", self.kind, self.origin, self.seq)
        body = struct.pack("!H", len(self.neighbours))
        for dpid in self.neighbours:
            body += struct.pack("!Q", dpid)
        body += struct.pack("!H", len(self.hosts))
        for mac in self.hosts:
            body += mac.packed()
        return head + body + following

    @classmethod
    def decode(cls, data: bytes):
        fixed = struct.Struct("!BQI")
        if len(data) < fixed.size + 2:
            raise DecodeError("LS message truncated")
        kind, origin, seq = fixed.unpack_from(data)
        offset = fixed.size
        (n_neigh,) = struct.unpack_from("!H", data, offset)
        offset += 2
        neighbours = []
        for _ in range(n_neigh):
            (dpid,) = struct.unpack_from("!Q", data, offset)
            neighbours.append(dpid)
            offset += 8
        (n_hosts,) = struct.unpack_from("!H", data, offset)
        offset += 2
        hosts = []
        for _ in range(n_hosts):
            hosts.append(MACAddress(data[offset:offset + 6]))
            offset += 6
        return cls(kind, origin, seq, neighbours, hosts), offset


register_ethertype(LS_ETHERTYPE, LSMessage)


class _Neighbour:
    __slots__ = ("dpid", "last_heard")

    def __init__(self, dpid: int, last_heard: float) -> None:
        self.dpid = dpid
        self.last_heard = last_heard


class _LsaRecord:
    __slots__ = ("seq", "neighbours", "hosts")

    def __init__(self, seq: int, neighbours: Set[int],
                 hosts: Set[MACAddress]) -> None:
        self.seq = seq
        self.neighbours = neighbours
        self.hosts = hosts


class LinkStateSwitch:
    """The local routing process of one switch."""

    def __init__(self, datapath: Datapath, hello_interval: float = 0.5,
                 dead_interval: Optional[float] = None,
                 refresh_interval: float = 5.0,
                 carrier_detect: bool = False,
                 route_priority: int = 100) -> None:
        self.dp = datapath
        self.dpid = datapath.dpid
        self.hello_interval = hello_interval
        self.dead_interval = (dead_interval if dead_interval is not None
                              else 3 * hello_interval)
        self.refresh_interval = refresh_interval
        self.carrier_detect = carrier_detect
        self.route_priority = route_priority
        #: port -> neighbour adjacency
        self.neighbours: Dict[int, _Neighbour] = {}
        #: local host mac -> port
        self.local_hosts: Dict[MACAddress, int] = {}
        #: origin dpid -> freshest LSA
        self.lsdb: Dict[int, _LsaRecord] = {}
        self._seq = 0
        self._last_refresh = 0.0
        self.routes: Dict[MACAddress, int] = {}
        self.route_recomputes = 0
        self.lsas_originated = 0
        self.lsas_flooded = 0
        self.last_route_change = 0.0
        datapath.on_packet_in = self._packet_in
        datapath.on_port_status = self._port_status
        datapath.install_flow(FlowEntry(
            Match(eth_type=LS_ETHERTYPE),
            [Output(PORT_CONTROLLER)],
            priority=65001,
        ))
        self._stop_hello = datapath.sim.call_every(
            hello_interval, self._tick, jitter=0.01
        )
        self._originate()

    def stop(self) -> None:
        self._stop_hello()

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.dp.sim.now
        # Hellos on every live port.
        for port in self.dp.ports.values():
            if port.up:
                self._send(LSMessage.hello(self.dpid), port.number)
        # Dead-interval neighbour expiry.
        dead = [p for p, n in self.neighbours.items()
                if now - n.last_heard > self.dead_interval]
        if dead:
            for port in dead:
                del self.neighbours[port]
            self._originate()
        # Periodic LSA refresh.
        if now - self._last_refresh >= self.refresh_interval:
            self._originate()

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------
    def _send(self, msg: LSMessage, port_no: int) -> None:
        port = self.dp.ports.get(port_no)
        if port is None or not port.up:
            return
        frame = (
            Ethernet(dst=_LS_MULTICAST, src=port.mac,
                     ethertype=LS_ETHERTYPE)
            / msg
        )
        self.dp.send_packet_out(frame, [Output(port_no)])

    def _flood(self, msg: LSMessage, except_port: Optional[int]) -> None:
        for port_no in self.neighbours:
            if port_no != except_port:
                self._send(msg, port_no)
                self.lsas_flooded += 1

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def _packet_in(self, packet: Packet, in_port: int,
                   reason: str) -> None:
        msg = packet.get(LSMessage)
        if msg is not None:
            if msg.is_hello:
                self._handle_hello(msg, in_port)
            else:
                self._handle_lsa(msg, in_port)
            return
        self._handle_data(packet, in_port)

    def _handle_hello(self, msg: LSMessage, in_port: int) -> None:
        now = self.dp.sim.now
        existing = self.neighbours.get(in_port)
        if existing is None or existing.dpid != msg.origin:
            self.neighbours[in_port] = _Neighbour(msg.origin, now)
            # Anything "learned" on this port was a switch, not a host.
            mislearned = [m for m, p in self.local_hosts.items()
                          if p == in_port]
            for mac in mislearned:
                del self.local_hosts[mac]
            # New adjacency: tell the network and sync our database to
            # the new neighbour.
            self._originate()
            for origin, record in self.lsdb.items():
                self._send(LSMessage.lsa(
                    origin, record.seq, sorted(record.neighbours),
                    sorted(record.hosts),
                ), in_port)
        else:
            existing.last_heard = now

    def _handle_lsa(self, msg: LSMessage, in_port: int) -> None:
        record = self.lsdb.get(msg.origin)
        if record is not None and msg.seq <= record.seq:
            return  # stale or duplicate
        self.lsdb[msg.origin] = _LsaRecord(
            msg.seq, set(msg.neighbours), set(msg.hosts)
        )
        self._flood(msg, except_port=in_port)
        self._recompute()

    def _handle_data(self, packet: Packet, in_port: int) -> None:
        eth = packet.get(Ethernet)
        if eth is None:
            return
        # Host learning on non-adjacency ports.
        if in_port not in self.neighbours and not eth.src.is_multicast:
            if self.local_hosts.get(eth.src) != in_port:
                self.local_hosts[eth.src] = in_port
                self._originate()
        out_port = self.routes.get(eth.dst)
        if out_port is not None and not eth.dst.is_multicast:
            self.dp.send_packet_out(packet, [Output(out_port)],
                                    in_port=in_port)
            return
        self._tree_flood(packet, in_port)

    def _port_status(self, port, reason: str) -> None:
        if not self.carrier_detect:
            return
        if not port.up and port.number in self.neighbours:
            del self.neighbours[port.number]
            self._originate()

    # ------------------------------------------------------------------
    # LSA origination and route computation
    # ------------------------------------------------------------------
    def _originate(self) -> None:
        self._seq += 1
        self._last_refresh = self.dp.sim.now
        self.lsas_originated += 1
        neighbours = sorted({n.dpid for n in self.neighbours.values()})
        hosts = sorted(self.local_hosts)
        self.lsdb[self.dpid] = _LsaRecord(
            self._seq, set(neighbours), set(hosts)
        )
        self._flood(LSMessage.lsa(self.dpid, self._seq, neighbours,
                                  hosts), except_port=None)
        self._recompute()

    def graph(self) -> nx.Graph:
        """Two-way-confirmed adjacency graph from the LSDB."""
        g = nx.Graph()
        for origin in self.lsdb:
            g.add_node(origin)
        for origin, record in self.lsdb.items():
            for neighbour in record.neighbours:
                other = self.lsdb.get(neighbour)
                if other is not None and origin in other.neighbours:
                    g.add_edge(origin, neighbour)
        return g

    def _port_toward(self, neighbour_dpid: int) -> Optional[int]:
        for port_no, neighbour in self.neighbours.items():
            if neighbour.dpid == neighbour_dpid:
                return port_no
        return None

    def _recompute(self) -> None:
        self.route_recomputes += 1
        graph = self.graph()
        new_routes: Dict[MACAddress, int] = dict(self.local_hosts)
        if self.dpid in graph:
            try:
                paths = nx.single_source_shortest_path(graph, self.dpid)
            except nx.NodeNotFound:  # pragma: no cover - defensive
                paths = {self.dpid: [self.dpid]}
            for origin, record in self.lsdb.items():
                if origin == self.dpid or origin not in paths:
                    continue
                path = paths[origin]
                if len(path) < 2:
                    continue
                port = self._port_toward(path[1])
                if port is None:
                    continue
                for mac in record.hosts:
                    new_routes.setdefault(mac, port)
        if new_routes != self.routes:
            self.routes = new_routes
            self.last_route_change = self.dp.sim.now
            self._program_routes()

    def _program_routes(self) -> None:
        table = self.dp.tables[0]
        table.delete(match=Match(), strict=False)
        self.dp.install_flow(FlowEntry(
            Match(eth_type=LS_ETHERTYPE),
            [Output(PORT_CONTROLLER)],
            priority=65001,
        ))
        for mac, port in self.routes.items():
            self.dp.install_flow(FlowEntry(
                Match(eth_dst=mac), [Output(port)],
                priority=self.route_priority,
            ))

    # ------------------------------------------------------------------
    # Loop-free flooding for unknowns and broadcast
    # ------------------------------------------------------------------
    def _tree_flood(self, packet: Packet, in_port: int) -> None:
        graph = self.graph()
        ports: Set[int] = set()
        # Host-facing ports: anything live without an adjacency.
        for port in self.dp.ports.values():
            if port.up and port.number not in self.neighbours:
                ports.add(port.number)
        if self.dpid in graph and graph.number_of_edges() > 0:
            # The tree MUST be canonical: every switch floods along the
            # same tree or the "tree" has cycles and broadcasts storm.
            for edge in canonical_tree_edges(graph):
                if self.dpid in edge:
                    (other,) = edge - {self.dpid}
                    port = self._port_toward(other)
                    if port is not None:
                        ports.add(port)
        ports.discard(in_port)
        if ports:
            self.dp.send_packet_out(
                packet, [Output(p) for p in sorted(ports)],
                in_port=in_port,
            )

    def __repr__(self) -> str:
        return (
            f"<LinkStateSwitch {self.dpid} neighbours="
            f"{sorted(n.dpid for n in self.neighbours.values())} "
            f"routes={len(self.routes)}>"
        )


class LinkStateNetwork:
    """Attach a link-state routing agent to every switch."""

    def __init__(self, network: Network, hello_interval: float = 0.5,
                 carrier_detect: bool = False) -> None:
        self.network = network
        self.agents: Dict[str, LinkStateSwitch] = {
            name: LinkStateSwitch(dp, hello_interval=hello_interval,
                                  carrier_detect=carrier_detect)
            for name, dp in network.switches.items()
        }

    def converge(self, duration: float = 5.0) -> None:
        self.network.run(duration)

    @property
    def is_converged(self) -> bool:
        """Every agent's two-way graph spans all switches."""
        expected = set(a.dpid for a in self.agents.values())
        for agent in self.agents.values():
            graph = agent.graph()
            if set(graph.nodes) != expected:
                return False
            if not nx.is_connected(graph) and len(expected) > 1:
                return False
        return True

    def last_route_change(self) -> float:
        return max(a.last_route_change for a in self.agents.values())

    def stop(self) -> None:
        for agent in self.agents.values():
            agent.stop()
