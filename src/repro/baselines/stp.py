"""Distributed baseline #1: spanning tree + flood-and-learn L2 switching.

This is the pre-SDN world the keynote argued against: every switch runs
its own local control logic, coordination happens through in-band BPDUs,
and nobody holds a global view.  Per-switch agents attach directly to the
datapath hooks — there is no controller and no control channel, so
steady-state forwarding is exactly as fast as the proactive SDN case,
but policy is impossible and convergence is protocol-bound.

The protocol is a faithful simplification of IEEE 802.1D:

* bridges exchange (root, cost, bridge, port) BPDUs every hello interval,
* lowest bridge id wins root; each non-root bridge picks a root port and
  marks designated/blocked ports by the standard comparisons,
* blocked ports are excluded from flooding and their ingress is dropped,
* BPDU information ages out after ``max_age``, reopening elections.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple

from repro.dataplane.actions import Output, PORT_CONTROLLER, PORT_FLOOD
from repro.dataplane.flowtable import FlowEntry
from repro.dataplane.match import Match
from repro.dataplane.switch import Datapath
from repro.errors import DecodeError
from repro.netem.network import Network
from repro.packet import Ethernet, Header, MACAddress, Packet
from repro.packet.ethernet import register_ethertype

__all__ = ["BPDU", "StpSwitch", "SpanningTreeNetwork", "BPDU_ETHERTYPE"]

BPDU_ETHERTYPE = 0x88B5
_BPDU_MULTICAST = MACAddress("01:80:c2:00:00:00")


class BPDU(Header):
    """A configuration BPDU: (root, root-path-cost, bridge, port).

    ``tc_deadline`` plays the role of 802.1D's topology-change flag: a
    bridge that changed port roles advertises a flush window, and every
    bridge that adopts a later deadline flushes its learned state.  The
    absolute-timestamp encoding is the simulation-friendly equivalent of
    the standard's root-driven TC-while timer.
    """

    name = "bpdu"
    _FMT = struct.Struct("!QIQId")

    def __init__(self, root: int = 0, cost: int = 0, bridge: int = 0,
                 port: int = 0, tc_deadline: float = 0.0) -> None:
        self.root = root
        self.cost = cost
        self.bridge = bridge
        self.port = port
        self.tc_deadline = tc_deadline

    def priority_vector(self) -> Tuple[int, int, int, int]:
        """Lower is better, per 802.1D comparisons."""
        return (self.root, self.cost, self.bridge, self.port)

    def encode(self, following: bytes) -> bytes:
        return self._FMT.pack(self.root, self.cost, self.bridge,
                              self.port, self.tc_deadline) + following

    @classmethod
    def decode(cls, data: bytes):
        if len(data) < cls._FMT.size:
            raise DecodeError("BPDU truncated")
        root, cost, bridge, port, tc = cls._FMT.unpack_from(data)
        return cls(root, cost, bridge, port, tc), cls._FMT.size


register_ethertype(BPDU_ETHERTYPE, BPDU)


class _PortInfo:
    """Best BPDU heard on a port, with freshness."""

    __slots__ = ("vector", "heard_at")

    def __init__(self, vector: Tuple[int, int, int, int],
                 heard_at: float) -> None:
        self.vector = vector
        self.heard_at = heard_at


class StpSwitch:
    """The local control agent of one bridge."""

    ROLE_ROOT = "root"
    ROLE_DESIGNATED = "designated"
    ROLE_BLOCKED = "blocked"

    def __init__(self, datapath: Datapath, hello_interval: float = 0.5,
                 max_age: float = 1.6,
                 learn_timeout: float = 30.0) -> None:
        self.dp = datapath
        self.bridge_id = datapath.dpid
        self.hello_interval = hello_interval
        self.max_age = max_age
        self.learn_timeout = learn_timeout
        #: Best received info per port.
        self._port_info: Dict[int, _PortInfo] = {}
        self.roles: Dict[int, str] = {}
        self.root_id = self.bridge_id
        self.root_cost = 0
        self.root_port: Optional[int] = None
        self.mac_table: Dict[MACAddress, int] = {}
        self.role_changes = 0
        self.last_role_change = 0.0
        #: Until this sim time our BPDUs advertise a topology change.
        self.tc_deadline = 0.0
        datapath.on_packet_in = self._packet_in
        datapath.on_port_status = self._port_status
        # BPDUs must reach the agent even on blocked ports, above the
        # per-port ingress drop rules installed by _apply_roles.
        datapath.install_flow(FlowEntry(
            Match(eth_type=BPDU_ETHERTYPE),
            [Output(PORT_CONTROLLER)],
            priority=65001,
        ))
        self._stop_hello = datapath.sim.call_every(
            hello_interval, self._hello_tick, jitter=0.01
        )
        self._recompute()

    def stop(self) -> None:
        self._stop_hello()

    # ------------------------------------------------------------------
    # Protocol timers
    # ------------------------------------------------------------------
    def _hello_tick(self) -> None:
        self._age_out()
        self._send_bpdus()

    def _send_bpdus(self) -> None:
        for port in self.dp.ports.values():
            if not port.up:
                continue
            # Only designated ports transmit configuration BPDUs.
            if self.roles.get(port.number) == self.ROLE_BLOCKED:
                continue
            tc = (self.tc_deadline
                  if self.dp.sim.now < self.tc_deadline else 0.0)
            frame = (
                Ethernet(dst=_BPDU_MULTICAST, src=port.mac,
                         ethertype=BPDU_ETHERTYPE)
                / BPDU(self.root_id, self.root_cost, self.bridge_id,
                       port.number, tc_deadline=tc)
            )
            self.dp.send_packet_out(frame, [Output(port.number)])

    def _age_out(self) -> None:
        now = self.dp.sim.now
        stale = [p for p, info in self._port_info.items()
                 if now - info.heard_at > self.max_age]
        if stale:
            for port in stale:
                del self._port_info[port]
            self._recompute()

    # ------------------------------------------------------------------
    # Packet handling (local, zero-latency)
    # ------------------------------------------------------------------
    def _packet_in(self, packet: Packet, in_port: int,
                   reason: str) -> None:
        bpdu = packet.get(BPDU)
        if bpdu is not None:
            self._handle_bpdu(bpdu, in_port)
            return
        if self.roles.get(in_port) == self.ROLE_BLOCKED:
            return  # discard data frames arriving on blocked ports
        self._learn_and_forward(packet, in_port)

    def _handle_bpdu(self, bpdu: BPDU, in_port: int) -> None:
        # Stored as sent; the +1 link cost applies only when deriving the
        # root path cost (802.1D keeps these separate, and conflating
        # them breaks the designated-port comparison).
        received = bpdu.priority_vector()
        if bpdu.tc_deadline > self.tc_deadline:
            # Adopt the flush window and propagate it in our own BPDUs.
            self.tc_deadline = bpdu.tc_deadline
            self._flush_learned()
        info = self._port_info.get(in_port)
        if (info is None or received <= info.vector
                or info.vector[2] == bpdu.bridge):
            self._port_info[in_port] = _PortInfo(received,
                                                 self.dp.sim.now)
            self._recompute()

    def _learn_and_forward(self, packet: Packet, in_port: int) -> None:
        eth = packet.get(Ethernet)
        if eth is None:
            return
        if not eth.src.is_multicast:
            self.mac_table[eth.src] = in_port
        out_port = self.mac_table.get(eth.dst)
        if (out_port is None or eth.dst.is_multicast
                or self.roles.get(out_port) == self.ROLE_BLOCKED):
            self.dp.send_packet_out(packet, [Output(PORT_FLOOD)],
                                    in_port=in_port)
            return
        # Install a dst rule so the fast path handles the rest.
        self.dp.install_flow(FlowEntry(
            Match(eth_dst=eth.dst),
            [Output(out_port)],
            priority=100,
            idle_timeout=self.learn_timeout,
        ))
        self.dp.send_packet_out(packet, [Output(out_port)],
                                in_port=in_port)

    def _port_status(self, port, reason: str) -> None:
        self._port_info.pop(port.number, None)
        self._recompute()

    # ------------------------------------------------------------------
    # Role computation (802.1D comparisons)
    # ------------------------------------------------------------------
    def _recompute(self) -> None:
        # Root path selection: every received vector costs one more hop.
        own = (self.bridge_id, 0, self.bridge_id, 0)
        best = own
        best_port: Optional[int] = None
        for port_no, info in self._port_info.items():
            port = self.dp.ports.get(port_no)
            if port is None or not port.up:
                continue
            root, cost, bridge, sport = info.vector
            candidate = (root, cost + 1, bridge, sport)
            if candidate < best:
                best = candidate
                best_port = port_no
        self.root_id = best[0]
        self.root_cost = best[1] if best_port is not None else 0
        self.root_port = best_port

        new_roles: Dict[int, str] = {}
        for port in self.dp.ports.values():
            if not port.up:
                continue
            if port.number == best_port:
                new_roles[port.number] = self.ROLE_ROOT
                continue
            heard = self._port_info.get(port.number)
            # Our BPDU on this port vs. the one heard there, both as sent.
            ours = (self.root_id, self.root_cost, self.bridge_id,
                    port.number)
            if heard is None or ours < heard.vector:
                new_roles[port.number] = self.ROLE_DESIGNATED
            else:
                new_roles[port.number] = self.ROLE_BLOCKED
        if new_roles != self.roles:
            self.roles = new_roles
            self.role_changes += 1
            self.last_role_change = self.dp.sim.now
            # Open a flush window: our BPDUs will carry it network-wide.
            self.tc_deadline = max(
                self.tc_deadline, self.dp.sim.now + 2 * self.max_age
            )
            self._apply_roles()

    def _flush_learned(self) -> None:
        """Drop learned MACs and flows; keep the protocol rules alive."""
        self.mac_table.clear()
        for table in self.dp.tables:
            table.delete(match=Match(), priority=None, cookie=None,
                         strict=False)
        self.dp.install_flow(FlowEntry(
            Match(eth_type=BPDU_ETHERTYPE),
            [Output(PORT_CONTROLLER)],
            priority=65001,
        ))
        for port in self.dp.ports.values():
            if self.roles.get(port.number) == self.ROLE_BLOCKED:
                self.dp.install_flow(FlowEntry(
                    Match(in_port=port.number), [], priority=64000,
                ))

    def _apply_roles(self) -> None:
        for port in self.dp.ports.values():
            port.no_flood = (
                self.roles.get(port.number) == self.ROLE_BLOCKED
            )
        # Topology changed: flush learned state like a TCN would; this
        # also (re)installs the ingress-drop rules for blocked ports.
        self._flush_learned()

    @property
    def is_root_bridge(self) -> bool:
        return self.root_id == self.bridge_id

    def __repr__(self) -> str:
        return (
            f"<StpSwitch {self.bridge_id} root={self.root_id} "
            f"roles={self.roles}>"
        )


class SpanningTreeNetwork:
    """Attach an STP agent to every switch of a network."""

    def __init__(self, network: Network, hello_interval: float = 0.5,
                 max_age: float = 1.6) -> None:
        self.network = network
        self.agents: Dict[str, StpSwitch] = {
            name: StpSwitch(dp, hello_interval=hello_interval,
                            max_age=max_age)
            for name, dp in network.switches.items()
        }

    def converge(self, duration: float = 5.0) -> None:
        """Run the network long enough for the election to settle."""
        self.network.run(duration)

    @property
    def root_bridge(self) -> Optional[str]:
        roots = {a.root_id for a in self.agents.values()}
        if len(roots) != 1:
            return None
        root_id = roots.pop()
        for name, agent in self.agents.items():
            if agent.bridge_id == root_id:
                return name
        return None

    @property
    def is_converged(self) -> bool:
        """All agents agree on the root and no port is in limbo."""
        return self.root_bridge is not None

    def blocked_ports(self) -> int:
        return sum(
            1 for agent in self.agents.values()
            for role in agent.roles.values()
            if role == StpSwitch.ROLE_BLOCKED
        )

    def stop(self) -> None:
        for agent in self.agents.values():
            agent.stop()
