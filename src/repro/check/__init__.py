"""repro.check — network-wide invariant checking and scenario fuzzing.

The verification plane, in three layers:

* :mod:`repro.check.snapshot` — an immutable, side-effect-free copy of
  every datapath's forwarding state (flow tables, groups, ports) plus
  host attachment and link liveness.
* :mod:`repro.check.reach` — symbolic reachability over snapshots using
  the dataplane's own :class:`~repro.dataplane.match.Match` algebra.
  The symbolic explorer only *proposes* packet classes; every verdict is
  confirmed by a concrete interpreter that mirrors pipeline semantics
  exactly, so findings come with replayable counterexample packets and
  no false positives.
* :mod:`repro.check.invariants` / :mod:`repro.check.monitor` — the
  invariant catalogue (loop freedom, blackhole freedom, slice isolation,
  firewall compliance) and the online monitor that re-checks after
  convergence events.
* :mod:`repro.check.fuzzer` — seeded scenario generation, execution,
  and minimal repro files.

``python -m repro check`` exposes the verify/fuzz workflow on the CLI.
"""

from repro.check.cluster import ClusterViolation, check_cluster
from repro.check.fuzzer import (
    Scenario,
    ScenarioResult,
    example_scenarios,
    fuzz,
    generate_cluster_scenario,
    generate_scenario,
    load_scenario,
    minimize,
    platform_observables,
    replay,
    result_digest,
    run_corpus,
    run_scenario,
    write_repro,
)
from repro.check.invariants import (
    DEFAULT_INVARIANTS,
    CheckContext,
    CheckResult,
    FirewallCompliance,
    NetworkChecker,
    NoBlackholes,
    NoForwardingLoops,
    SliceIsolation,
    Violation,
)
from repro.check.monitor import CheckRecord, InvariantMonitor
from repro.check.reach import (
    BLACKHOLE_KINDS,
    ConcreteTrace,
    PacketClass,
    Terminal,
    explore,
    trace_packet,
)
from repro.check.snapshot import (
    DatapathSnap,
    FlowEntrySnap,
    GroupSnap,
    HostSnap,
    NetworkSnapshot,
    PortSnap,
    TableSnap,
)

__all__ = [
    "BLACKHOLE_KINDS",
    "CheckContext",
    "CheckRecord",
    "CheckResult",
    "ClusterViolation",
    "ConcreteTrace",
    "DatapathSnap",
    "DEFAULT_INVARIANTS",
    "FirewallCompliance",
    "FlowEntrySnap",
    "GroupSnap",
    "HostSnap",
    "InvariantMonitor",
    "NetworkChecker",
    "NetworkSnapshot",
    "NoBlackholes",
    "NoForwardingLoops",
    "PacketClass",
    "PortSnap",
    "Scenario",
    "ScenarioResult",
    "SliceIsolation",
    "TableSnap",
    "Terminal",
    "Violation",
    "check_cluster",
    "example_scenarios",
    "explore",
    "fuzz",
    "generate_cluster_scenario",
    "generate_scenario",
    "load_scenario",
    "minimize",
    "platform_observables",
    "replay",
    "result_digest",
    "run_corpus",
    "run_scenario",
    "trace_packet",
    "write_repro",
]
