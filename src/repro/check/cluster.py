"""Cluster-level invariants: mastership safety and state convergence.

The dataplane invariant catalogue (:mod:`repro.check.invariants`) asks
"does the network forward correctly"; this module asks "is the control
plane *coherent*" — questions that only exist once several controller
instances share the fabric:

* **single-master** — no two mutually-reachable instances may both
  claim mastership of one switch, and no datapath may hold more than
  one PRIMARY control connection.  (Two claimants on *opposite* sides
  of an east-west partition are not a violation: the switch-side
  generation fence guarantees at most one of them can mutate state,
  and the partition checker only flags claimants who could actually
  have seen each other.)
* **no-orphans** — once handover has completed, every switch reachable
  from a quorum-holding component must have a master inside it.
* **convergence** — mutually-reachable quorum members must agree on
  the replicated intent ledger and per-switch mastership terms.

All checks are read-only over live cluster state; like the dataplane
checkers they never repair anything.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["ClusterViolation", "check_cluster"]


class ClusterViolation:
    """One confirmed cluster-invariant breach."""

    __slots__ = ("invariant", "kind", "message", "dpid", "nodes", "time")

    def __init__(self, invariant: str, kind: str, message: str,
                 dpid: Optional[int] = None, nodes=(),
                 time: float = 0.0) -> None:
        self.invariant = invariant
        self.kind = kind
        self.message = message
        self.dpid = dpid
        self.nodes = tuple(nodes)
        self.time = time

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "kind": self.kind,
            "message": self.message,
            "dpid": self.dpid,
            "nodes": list(self.nodes),
            "time": self.time,
        }

    def __repr__(self) -> str:
        return (
            f"<ClusterViolation {self.invariant}/{self.kind}: "
            f"{self.message}>"
        )


def _ledger_digest(node, dpid) -> tuple:
    """Canonical, comparable form of one node's ledger for one switch."""
    entries = node._ledger.get(dpid, {})
    return tuple(sorted(
        (repr(key), tuple(sorted((k, repr(v)) for k, v in spec.items())))
        for key, spec in entries.items()
    ))


def check_cluster(cluster, net=None) -> List["ClusterViolation"]:
    """Evaluate the cluster invariants; empty list means clean.

    ``net`` (the emulated :class:`~repro.netem.network.Network`)
    additionally enables the switch-side check that no datapath holds
    two PRIMARY control connections — the ground truth the
    controller-side claims are fenced against.
    """
    bus = cluster.bus
    now = cluster.sim.now
    violations: List[ClusterViolation] = []

    # ------------------------------------------------------------ claims
    # Controller-side: mutually-reachable double claims.
    claims = cluster.masters()
    for dpid in sorted(claims):
        claimants = sorted(claims[dpid])
        for i, a in enumerate(claimants):
            for b in claimants[i + 1:]:
                if bus.reachable(a, b):
                    violations.append(ClusterViolation(
                        "single-master", "dual_master",
                        f"nodes {a} and {b} both claim switch {dpid} "
                        f"while mutually reachable",
                        dpid=dpid, nodes=(a, b), time=now,
                    ))

    # Switch-side: at most one PRIMARY connection per datapath.
    if net is not None:
        from repro.southbound.messages import ControllerRole
        for name in sorted(net.switches):
            agents = net.agents_of(name)
            primaries = [
                i for i, agent in enumerate(agents)
                if agent.controller_role == ControllerRole.PRIMARY
            ]
            if len(primaries) > 1:
                violations.append(ClusterViolation(
                    "single-master", "dual_primary_connection",
                    f"switch {name} holds {len(primaries)} PRIMARY "
                    f"connections (instances {primaries})",
                    dpid=net.switches[name].dpid,
                    nodes=tuple(primaries), time=now,
                ))

    # ----------------------------------------------------------- orphans
    # Only meaningful once the post-fault reassignment has landed.
    if cluster.handover_complete():
        quorum_nodes = sorted(
            n for n in bus.alive if bus.has_quorum(n)
        )
        if quorum_nodes:
            for dpid in sorted(cluster.dpids):
                owners = [n for n in claims.get(dpid, ())
                          if n in quorum_nodes]
                if not owners:
                    violations.append(ClusterViolation(
                        "no-orphans", "orphaned_switch",
                        f"switch {dpid} has no master in the "
                        f"quorum-holding component {quorum_nodes}",
                        dpid=dpid, nodes=tuple(quorum_nodes), time=now,
                    ))

    # ------------------------------------------------------- convergence
    # Every mutually-reachable pair of quorum members must agree on
    # terms and ledger contents, switch by switch.
    members = sorted(n for n in bus.alive if bus.has_quorum(n))
    for i, a in enumerate(members):
        for b in members[i + 1:]:
            if not bus.reachable(a, b):
                continue
            na, nb = cluster.node(a), cluster.node(b)
            for dpid in sorted(cluster.dpids):
                ta = na.terms.get(dpid, 0)
                tb = nb.terms.get(dpid, 0)
                if ta != tb:
                    violations.append(ClusterViolation(
                        "convergence", "term_divergence",
                        f"nodes {a} and {b} disagree on the term of "
                        f"switch {dpid} ({ta} vs {tb})",
                        dpid=dpid, nodes=(a, b), time=now,
                    ))
                    continue
                if _ledger_digest(na, dpid) != _ledger_digest(nb, dpid):
                    violations.append(ClusterViolation(
                        "convergence", "ledger_divergence",
                        f"nodes {a} and {b} hold different intent "
                        f"ledgers for switch {dpid}",
                        dpid=dpid, nodes=(a, b), time=now,
                    ))
    return violations
