"""Seeded scenario fuzzing: generate, run, check, reproduce.

A :class:`Scenario` is a JSON-serialisable tuple of (topology, app
stack, workload, fault schedule, settle time).  Generation is a pure
function of the seed (``random.Random(seed)``), the run itself happens
on the deterministic kernel, and the checker verdict is computed from a
read-only snapshot — so *everything* about a scenario replays
bit-identically, and a failing seed can be shipped as a small repro
file and replayed anywhere.

Every generated fault recovers (flaps restore links and channels,
crashes get restarts), so the pass criterion is simple and strict: the
*final* invariant check must be clean.  Transient violations while
faults are live are expected — the online monitor exists to watch those
— but a violation that survives recovery and resync is a bug, and the
fuzzer writes a minimal repro file for it.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Callable, List, Optional

from repro.core import ZenPlatform
from repro.faults import FaultSchedule

from repro.check.invariants import NetworkChecker
from repro.check.monitor import InvariantMonitor

__all__ = [
    "Scenario",
    "ScenarioResult",
    "generate_scenario",
    "generate_cluster_scenario",
    "run_scenario",
    "platform_observables",
    "result_digest",
    "fuzz",
    "write_repro",
    "load_scenario",
    "replay",
    "minimize",
    "example_scenarios",
    "run_corpus",
]

SCENARIO_VERSION = 1

_TOPOLOGY_KINDS = ("linear", "ring", "star", "tree", "mesh")
_PROFILES = ("reactive", "proactive")


class Scenario:
    """One fuzz case: everything needed to reproduce a run."""

    __slots__ = ("seed", "name", "topology", "size", "profile", "stack",
                 "workload", "faults", "settle", "controllers")

    def __init__(self, seed: int, name: str, topology: str, size: int,
                 profile: str, stack: str = "plain",
                 workload: Optional[List[dict]] = None,
                 faults: Optional[List[dict]] = None,
                 settle: float = 8.0, controllers: int = 1) -> None:
        self.seed = seed
        self.name = name
        self.topology = topology
        self.size = size
        self.profile = profile
        #: "plain" (profile apps only), "policy" (slicing + firewall +
        #: proactive routing across tables), or "multipath" (SELECT-group
        #: ECMP fabric) — mirroring the shipped examples/ stacks.
        self.stack = stack
        self.workload = workload if workload is not None else []
        self.faults = faults if faults is not None else []
        self.settle = settle
        #: Controller instances; > 1 runs the scenario on a ZenCluster
        #: ("plain" stack only) and unlocks the controller fault kinds.
        self.controllers = controllers

    def to_dict(self) -> dict:
        doc = {
            "version": SCENARIO_VERSION,
            "seed": self.seed,
            "name": self.name,
            "topology": self.topology,
            "size": self.size,
            "profile": self.profile,
            "stack": self.stack,
            "workload": list(self.workload),
            "faults": list(self.faults),
            "settle": self.settle,
        }
        # Only cluster scenarios carry the key, so every committed
        # single-controller digest stays byte-identical.
        if self.controllers != 1:
            doc["controllers"] = self.controllers
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            seed=data["seed"], name=data["name"],
            topology=data["topology"], size=data["size"],
            profile=data["profile"], stack=data.get("stack", "plain"),
            workload=list(data.get("workload", [])),
            faults=list(data.get("faults", [])),
            settle=data.get("settle", 8.0),
            controllers=data.get("controllers", 1),
        )

    def horizon(self) -> float:
        """Simulated seconds the run needs after start-up."""
        last = 1.0
        for entry in self.workload:
            # Rich entries (repro.workload kinds) run for a duration;
            # classic single-packet entries have none and keep their
            # original horizon exactly.
            last = max(last, entry["at"]
                       + float(entry.get("duration", 0.0)) + 1.0)
        for fault in self.faults:
            kind = fault["kind"]
            if kind in ("link_flap", "channel_flap"):
                last = max(last, fault["at"]
                           + fault["count"] * fault["period"])
            elif kind == "controller_partition":
                last = max(last, fault["at"] + fault["heal_after"])
            else:  # switch_crash / controller_crash
                last = max(last, fault["at"] + fault["restart_after"])
        return last + self.settle

    def __repr__(self) -> str:
        return (f"<Scenario {self.name!r} seed={self.seed} "
                f"{self.topology}({self.size})/{self.profile} "
                f"{len(self.faults)} faults>")


class ScenarioResult:
    """Outcome of one scenario run."""

    __slots__ = ("scenario", "ok", "verdicts", "observables",
                 "monitor_failures", "faults_fired", "obs")

    def __init__(self, scenario: Scenario, ok: bool, verdicts: dict,
                 observables: dict, monitor_failures: List[str],
                 faults_fired: int, obs=None) -> None:
        self.scenario = scenario
        self.ok = ok
        self.verdicts = verdicts
        self.observables = observables
        #: Trigger strings of monitor runs that saw violations
        #: (transient failures; informational, not the pass criterion).
        self.monitor_failures = monitor_failures
        self.faults_fired = faults_fired
        #: The attached :class:`~repro.obs.ObsPlane`, when the scenario
        #: ran with ``obs=True``.  Excluded from :meth:`to_dict` so
        #: digests compare the *simulation*, never the observer.
        self.obs = obs

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.to_dict(),
            "ok": self.ok,
            "verdicts": self.verdicts,
            "observables": self.observables,
            "monitor_failures": list(self.monitor_failures),
            "faults_fired": self.faults_fired,
        }


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------

def generate_scenario(seed: int) -> Scenario:
    """A deterministic function of ``seed`` — same seed, same scenario."""
    rng = random.Random(seed)
    kind = rng.choice(_TOPOLOGY_KINDS)
    size = rng.randint(3, 5)
    profile = rng.choice(_PROFILES)
    scenario = Scenario(seed, f"fuzz-{seed}", kind, size, profile)

    topo = _build_topology(kind, size)
    switch_names = sorted(
        n.name for n in topo.nodes.values() if n.is_switch
    )
    host_names = sorted(
        n.name for n in topo.nodes.values() if not n.is_switch
    )
    switch_links = sorted(
        (link.a, link.b) for link in topo.links
        if topo.nodes[link.a].is_switch and topo.nodes[link.b].is_switch
    )

    for _ in range(rng.randint(2, 4)):
        src, dst = rng.sample(host_names, 2)
        scenario.workload.append({
            "src": src, "dst": dst,
            "at": round(rng.uniform(0.2, 2.0), 3),
        })

    for _ in range(rng.randint(0, 3)):
        roll = rng.random()
        at = round(rng.uniform(0.5, 3.0), 3)
        if roll < 0.45 and switch_links:
            a, b = rng.choice(switch_links)
            down_for = round(rng.uniform(0.3, 0.8), 3)
            scenario.faults.append({
                "kind": "link_flap", "a": a, "b": b, "at": at,
                "down_for": down_for,
                "period": round(down_for + rng.uniform(0.7, 1.5), 3),
                "count": rng.randint(1, 2),
            })
        elif roll < 0.8:
            down_for = round(rng.uniform(0.3, 0.8), 3)
            scenario.faults.append({
                "kind": "channel_flap",
                "switch": rng.choice(switch_names), "at": at,
                "down_for": down_for,
                "period": round(down_for + rng.uniform(0.7, 1.5), 3),
                "count": rng.randint(1, 2),
            })
        else:
            scenario.faults.append({
                "kind": "switch_crash",
                "switch": rng.choice(switch_names), "at": at,
                "restart_after": round(rng.uniform(0.5, 1.0), 3),
            })
    return scenario


def generate_cluster_scenario(seed: int) -> Scenario:
    """A deterministic cluster fuzz case — same seed, same scenario.

    Seeded on a *distinct* stream from :func:`generate_scenario` so the
    committed single-controller corpus digests are untouched.  Fault
    kinds are restricted to the cluster-safe set: link/channel flaps
    plus controller crashes and east-west partitions (all recovering),
    never ``switch_crash`` — agent reboot semantics across N instances
    is exercised by the dedicated cluster tests instead.
    """
    rng = random.Random(f"cluster-{seed}")
    kind = rng.choice(_TOPOLOGY_KINDS)
    size = rng.randint(3, 5)
    profile = rng.choice(_PROFILES)
    controllers = rng.randint(2, 3)
    scenario = Scenario(seed, f"cluster-fuzz-{seed}", kind, size, profile,
                        controllers=controllers)

    topo = _build_topology(kind, size)
    switch_names = sorted(
        n.name for n in topo.nodes.values() if n.is_switch
    )
    host_names = sorted(
        n.name for n in topo.nodes.values() if not n.is_switch
    )
    switch_links = sorted(
        (link.a, link.b) for link in topo.links
        if topo.nodes[link.a].is_switch and topo.nodes[link.b].is_switch
    )

    for _ in range(rng.randint(2, 4)):
        src, dst = rng.sample(host_names, 2)
        scenario.workload.append({
            "src": src, "dst": dst,
            "at": round(rng.uniform(0.2, 2.0), 3),
        })

    for _ in range(rng.randint(1, 3)):
        roll = rng.random()
        at = round(rng.uniform(0.5, 3.0), 3)
        if roll < 0.25 and switch_links:
            a, b = rng.choice(switch_links)
            down_for = round(rng.uniform(0.3, 0.8), 3)
            scenario.faults.append({
                "kind": "link_flap", "a": a, "b": b, "at": at,
                "down_for": down_for,
                "period": round(down_for + rng.uniform(0.7, 1.5), 3),
                "count": rng.randint(1, 2),
            })
        elif roll < 0.45:
            down_for = round(rng.uniform(0.3, 0.8), 3)
            scenario.faults.append({
                "kind": "channel_flap",
                "switch": rng.choice(switch_names), "at": at,
                "down_for": down_for,
                "period": round(down_for + rng.uniform(0.7, 1.5), 3),
                "count": rng.randint(1, 2),
            })
        elif roll < 0.8:
            scenario.faults.append({
                "kind": "controller_crash",
                "node": rng.randrange(controllers), "at": at,
                "restart_after": round(rng.uniform(0.5, 1.2), 3),
            })
        else:
            scenario.faults.append({
                "kind": "controller_partition",
                "minority": [rng.randrange(controllers)], "at": at,
                "heal_after": round(rng.uniform(0.5, 1.2), 3),
            })
    return scenario


def _build_topology(kind: str, size: int):
    from repro.cli import build_topology

    return build_topology(kind, size, 1e9)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def _build_stack(scenario: Scenario, fast_path: bool,
                 telemetry=None) -> ZenPlatform:
    topo = _build_topology(scenario.topology, scenario.size)
    if scenario.controllers > 1:
        if scenario.stack != "plain":
            raise ValueError(
                f"cluster scenarios need the plain stack, "
                f"not {scenario.stack!r}"
            )
        from repro.cluster import ZenCluster

        return ZenCluster(topo, controllers=scenario.controllers,
                          profile=scenario.profile, seed=scenario.seed,
                          fast_path=fast_path, telemetry=telemetry)
    if scenario.stack == "plain":
        return ZenPlatform(topo, profile=scenario.profile,
                           seed=scenario.seed, fast_path=fast_path,
                           telemetry=telemetry)
    if scenario.stack == "policy":
        from repro.apps.firewall import Firewall
        from repro.apps.proactive_router import ProactiveRouter
        from repro.apps.slicing import NetworkSlicing

        platform = ZenPlatform(topo, profile="bare",
                               seed=scenario.seed, fast_path=fast_path,
                               telemetry=telemetry)
        slicing = platform.add_app(
            NetworkSlicing(table_id=0, next_table=1)
        )
        firewall = platform.add_app(
            Firewall(table_id=1, next_table=2)
        )
        platform.router = platform.add_app(ProactiveRouter(table_id=2))
        hosts = sorted(platform.net.hosts)
        half = max(1, len(hosts) // 2)
        slicing.define_slice(
            "blue", [platform.net.hosts[h].ip for h in hosts[:half]],
            rate_bps=50e6,
        )
        firewall.deny(l4_dst=23)  # no telnet across the fabric
        return platform
    if scenario.stack == "multipath":
        from repro.apps import MultipathRouter

        platform = ZenPlatform(topo, profile="bare",
                               seed=scenario.seed, fast_path=fast_path,
                               telemetry=telemetry)
        platform.router = platform.add_app(MultipathRouter(max_paths=2))
        return platform
    raise ValueError(f"unknown stack {scenario.stack!r}")


def _arm_faults(scenario: Scenario, schedule: FaultSchedule,
                base: float) -> None:
    for fault in scenario.faults:
        kind = fault["kind"]
        at = base + fault["at"]
        if kind == "link_flap":
            schedule.link_flap(at, fault["a"], fault["b"],
                               down_for=fault["down_for"],
                               period=fault["period"],
                               count=fault["count"])
        elif kind == "channel_flap":
            schedule.channel_flap(at, fault["switch"],
                                  down_for=fault["down_for"],
                                  period=fault["period"],
                                  count=fault["count"])
        elif kind == "switch_crash":
            schedule.switch_crash(at, fault["switch"],
                                  restart_after=fault["restart_after"])
        elif kind == "controller_crash":
            schedule.controller_crash(
                at, fault["node"], restart_after=fault["restart_after"]
            )
        elif kind == "controller_partition":
            minority = list(fault["minority"])
            rest = [n for n in range(scenario.controllers)
                    if n not in minority]
            schedule.controller_partition(
                at, [minority, rest], heal_after=fault["heal_after"]
            )
        else:
            raise ValueError(f"unknown fault kind {kind!r}")


def platform_observables(platform: ZenPlatform) -> dict:
    """Everything externally visible about a finished run, as plain
    data — the object two runs are compared on for bit-identity."""
    net = platform.net
    flows = {}
    for name in sorted(net.switches):
        dp = net.switches[name]
        flows[name] = [
            [table.table_id,
             [repr(e.match) for e in table.entries()],
             [e.priority for e in table.entries()]]
            for table in dp.tables
        ]
    return {
        "time": net.sim.now,
        "events": net.sim.events_processed,
        "dp_stats": {name: net.switches[name].stats()
                     for name in sorted(net.switches)},
        "flows": flows,
        "hosts": {
            name: {
                "tx": net.hosts[name].tx_packets,
                "rx": net.hosts[name].rx_packets,
            }
            for name in sorted(net.hosts)
        },
        "controller": {
            "events": platform.controller.events_published,
            "resyncs": platform.controller.resyncs,
        },
    }


def run_scenario(scenario: Scenario, fast_path: bool = True,
                 monitor: bool = False,
                 checker: Optional[NetworkChecker] = None,
                 telemetry: bool = False, obs: bool = False,
                 obs_interval: float = 0.05) -> ScenarioResult:
    """Build, run, and check one scenario.  Deterministic end to end.

    ``telemetry=True`` runs with the metrics plane enabled;
    ``obs=True`` additionally attaches a full
    :class:`~repro.obs.ObsPlane` (implies telemetry) whose scraper,
    SLOs, and annotations must leave the observables bit-identical —
    the invariant ``tests/test_obs.py`` checks over the fuzz corpus.
    """
    tel = None
    if telemetry or obs:
        from repro.telemetry import Telemetry

        tel = Telemetry(profile=False)
    platform = _build_stack(scenario, fast_path, telemetry=tel)
    platform.start()
    net = platform.net

    hosts = [net.hosts[n] for n in sorted(net.hosts)]
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)

    if checker is None:
        checker = NetworkChecker()
    schedule = FaultSchedule(net)
    if scenario.controllers > 1:
        schedule.attach_cluster(platform.cluster)
    mon: Optional[InvariantMonitor] = None
    if monitor:
        mon = InvariantMonitor(net, checker)
        mon.attach(platform.controller)
        mon.watch(schedule)

    plane = None
    if obs:
        from repro.obs import ObsPlane

        plane = ObsPlane(platform, interval=obs_interval)
        plane.watch_faults(schedule)
        if mon is not None:
            plane.watch_monitor(mon)

    base = net.sim.now
    _arm_faults(scenario, schedule, base)
    traffic_sinks: dict = {}
    for entry in scenario.workload:
        if "kind" in entry:
            # A repro.workload traffic entry (flows/incast/diurnal/cbr)
            # — arm the real generator so invariants are checked under
            # realistic load, not just single probe packets.
            from repro.workload.generators import arm_traffic

            doc = dict(entry)
            doc["start"] = float(doc.pop("at", 0.0))
            arm_traffic(net.sim, hosts, doc, traffic_sinks)
            continue
        src, dst = entry["src"], entry["dst"]
        net.sim.schedule_at(
            base + entry["at"],
            lambda s=src, d=dst: net.hosts[s].send_udp(
                net.hosts[d].ip, 5001, 5001, b"fuzz"
            ),
        )
    platform.run(scenario.horizon())
    if plane is not None:
        plane.finish()

    final = checker.check(net)
    ok = final.ok
    verdicts = final.to_dict()
    if scenario.controllers > 1:
        # Cluster invariants join the pass criterion; the key is only
        # present for cluster scenarios, so committed single-controller
        # digests are untouched.
        from repro.check.cluster import check_cluster

        cluster_violations = check_cluster(platform.cluster, net)
        ok = ok and not cluster_violations
        verdicts["cluster_violations"] = [
            v.to_dict() for v in cluster_violations
        ]
    return ScenarioResult(
        scenario,
        ok=ok,
        verdicts=verdicts,
        observables=platform_observables(platform),
        monitor_failures=[r.trigger for r in mon.failing_records()]
        if mon is not None else [],
        faults_fired=len(schedule.log),
        obs=plane,
    )


def result_digest(result: ScenarioResult) -> str:
    """Stable digest of a run's full outcome (bit-identity checks)."""
    blob = json.dumps(result.to_dict(), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Fuzzing loop + repro files
# ----------------------------------------------------------------------

def fuzz(count: int, start_seed: int = 0, monitor: bool = False,
         out_dir: Optional[str] = None,
         on_result: Optional[Callable[[ScenarioResult], None]] = None
         ) -> List[ScenarioResult]:
    """Run ``count`` seeded scenarios; write a repro per failure."""
    results: List[ScenarioResult] = []
    for seed in range(start_seed, start_seed + count):
        scenario = generate_scenario(seed)
        result = run_scenario(scenario, monitor=monitor)
        results.append(result)
        if not result.ok and out_dir is not None:
            minimized = minimize(scenario)
            write_repro(f"{out_dir}/repro_seed{seed}.json",
                        minimized, run_scenario(minimized))
        if on_result is not None:
            on_result(result)
    return results


def write_repro(path: str, scenario: Scenario,
                result: ScenarioResult) -> None:
    """A self-contained, replayable failure record."""
    payload = {
        "scenario": scenario.to_dict(),
        "verdicts": result.verdicts,
        "digest": result_digest(result),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_scenario(path: str) -> Scenario:
    with open(path) as fh:
        payload = json.load(fh)
    data = payload.get("scenario", payload)
    return Scenario.from_dict(data)


def replay(path: str, monitor: bool = False) -> ScenarioResult:
    """Re-run a repro file's scenario from scratch."""
    return run_scenario(load_scenario(path), monitor=monitor)


def minimize(scenario: Scenario,
             still_fails: Optional[Callable[[Scenario], bool]] = None
             ) -> Scenario:
    """Greedily shrink a failing scenario while it keeps failing.

    Drops faults first (usually the interesting part is one injection),
    then workload entries.  Deterministic; bounded by the scenario size.
    """
    if still_fails is None:
        def still_fails(s: Scenario) -> bool:
            return not run_scenario(s).ok

    if not still_fails(scenario):
        return scenario  # not failing: nothing to minimise
    current = scenario
    for attr in ("faults", "workload"):
        index = 0
        while index < len(getattr(current, attr)):
            trimmed = Scenario.from_dict(current.to_dict())
            del getattr(trimmed, attr)[index]
            trimmed.name = f"{scenario.name}-min"
            if still_fails(trimmed):
                current = trimmed
            else:
                index += 1
    return current


def run_corpus(path: str) -> List[ScenarioResult]:
    """Replay a committed corpus file and return the per-seed results
    (all expected clean in CI).  ``"seeds"`` replay through
    :func:`generate_scenario`; the additive ``"cluster_seeds"`` key
    replays through :func:`generate_cluster_scenario`."""
    with open(path) as fh:
        corpus = json.load(fh)
    results = []
    for seed in corpus["seeds"]:
        results.append(run_scenario(generate_scenario(seed)))
    for seed in corpus.get("cluster_seeds", []):
        results.append(run_scenario(generate_cluster_scenario(seed)))
    return results


# ----------------------------------------------------------------------
# The examples/ suite, as checkable scenarios
# ----------------------------------------------------------------------

def example_scenarios() -> List[Scenario]:
    """Canned scenarios mirroring the shipped examples/ stacks.

    Each must check clean — this is the CLI's ``check verify`` suite and
    the CI smoke gate.
    """
    return [
        Scenario(0, "quickstart", "single", 4, "reactive",
                 workload=[{"src": "h1", "dst": "h2", "at": 0.5}]),
        Scenario(0, "linear-reactive", "linear", 3, "reactive",
                 workload=[{"src": "h1", "dst": "h3", "at": 0.5}]),
        Scenario(0, "failover-ring", "ring", 4, "proactive",
                 workload=[{"src": "h1", "dst": "h3", "at": 0.5}]),
        Scenario(0, "datacenter-tree", "tree", 2, "proactive",
                 workload=[{"src": "h1", "dst": "h2", "at": 0.5}]),
        Scenario(0, "enterprise-policy", "star", 3, "bare",
                 stack="policy",
                 workload=[{"src": "h1", "dst": "h2", "at": 0.5}]),
        Scenario(0, "multipath-fabric", "mesh", 4, "bare",
                 stack="multipath",
                 workload=[{"src": "h1", "dst": "h3", "at": 0.5}]),
    ]
