"""The invariant catalogue and the checker that evaluates it.

Every invariant follows the same discipline: symbolic exploration (or a
concrete probe set) proposes *candidate* packet classes, a witness is
materialised for each, and the witness is run through the concrete
interpreter (:func:`repro.check.reach.trace_packet`).  Only behaviour
the interpreter reproduces becomes a :class:`Violation` — so every
violation ships a confirmed counterexample packet class, and a clean
network can never be flagged (zero false positives by construction).

Catalogue
---------
* :class:`NoForwardingLoops` — no packet class may revisit a pipeline
  state (switch, ingress port, headers, TTL) it already traversed.
* :class:`NoBlackholes` — a probe between every attached host pair must
  not silently die in the dataplane (dead port/link, drop-miss, dead
  fast-failover group, punt to a dead controller, TTL expiry).  This
  doubles as the unreachable-host-pair detector.
* :class:`SliceIsolation` — traffic between declared-isolated slices
  must never be delivered across the boundary (opt-in: the caller
  declares which slices are supposed to be isolated).
* :class:`FirewallCompliance` — a packet the firewall's rule set denies
  must not reach its destination through the dataplane (bypass
  detection; opt-in with the Firewall app instance).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.dataplane.match import Match, FlowKey, VLAN_ABSENT
from repro.netem.network import Network

from repro.check.reach import (
    ConcreteTrace,
    PacketClass,
    Terminal,
    explore,
    trace_packet,
)
from repro.check.snapshot import HostSnap, NetworkSnapshot

__all__ = [
    "Violation",
    "CheckContext",
    "CheckResult",
    "Invariant",
    "NoForwardingLoops",
    "NoBlackholes",
    "SliceIsolation",
    "FirewallCompliance",
    "NetworkChecker",
    "DEFAULT_INVARIANTS",
    "probe_key",
]

#: Synthetic probe transport: UDP on recognisable high ports.
PROBE_PROTO = 17
PROBE_L4_SRC = 4242
PROBE_L4_DST = 4243


def probe_key(src: HostSnap, dst: HostSnap) -> FlowKey:
    """The canonical src→dst unicast probe packet."""
    return FlowKey(
        in_port=src.port,
        eth_src=src.mac,
        eth_dst=dst.mac,
        eth_type=0x0800,
        vlan_vid=VLAN_ABSENT,
        ip_src=src.ip,
        ip_dst=dst.ip,
        ip_proto=PROBE_PROTO,
        ip_dscp=0,
        l4_src=PROBE_L4_SRC,
        l4_dst=PROBE_L4_DST,
    )


class Violation:
    """One confirmed invariant breach, with its counterexample."""

    __slots__ = ("invariant", "kind", "message", "counterexample",
                 "witness", "terminal", "time")

    def __init__(self, invariant: str, kind: str, message: str,
                 counterexample: PacketClass, witness: FlowKey,
                 terminal: Optional[Terminal], time: float) -> None:
        self.invariant = invariant
        self.kind = kind
        self.message = message
        #: The symbolic packet class this violation holds for (at least
        #: the witness member is machine-confirmed).
        self.counterexample = counterexample
        #: A concrete flow key reproducing the violation.
        self.witness = witness
        self.terminal = terminal
        self.time = time

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "kind": self.kind,
            "message": self.message,
            "counterexample": self.counterexample.to_dict(),
            "witness": {
                k: str(v) for k, v in self.witness.as_dict().items()
                if v is not None
            },
            "terminal": self.terminal.to_dict() if self.terminal else None,
            "time": self.time,
        }

    def __repr__(self) -> str:
        return f"<Violation {self.invariant}/{self.kind}: {self.message}>"


class CheckContext:
    """Shared state for one checker run: the snapshot plus a trace
    cache so invariants never re-interpret the same witness twice."""

    def __init__(self, snapshot: NetworkSnapshot) -> None:
        self.snapshot = snapshot
        self._traces: Dict[tuple, ConcreteTrace] = {}
        self.probes_run = 0

    def trace(self, switch: str, port: int, key: FlowKey) -> ConcreteTrace:
        sig = (switch, port, hash(key))
        cached = self._traces.get(sig)
        if cached is not None and cached.key == key:
            return cached
        trace = trace_packet(self.snapshot, switch, port, key)
        self._traces[sig] = trace
        self.probes_run += 1
        return trace

    def attached_hosts(self) -> List[HostSnap]:
        """Hosts whose access link is up, in deterministic order."""
        snap = self.snapshot
        return [snap.hosts[name] for name in sorted(snap.hosts)
                if snap.hosts[name].link_up]


class Invariant:
    """Base class: a named predicate over a :class:`CheckContext`."""

    name = "invariant"

    def check(self, ctx: CheckContext) -> List[Violation]:
        raise NotImplementedError


class NoForwardingLoops(Invariant):
    """No packet class entering at any edge port may loop."""

    name = "no-forwarding-loops"

    def __init__(self, max_classes_per_port: int = 256) -> None:
        self.max_classes_per_port = max_classes_per_port

    def check(self, ctx: CheckContext) -> List[Violation]:
        snap = ctx.snapshot
        violations: List[Violation] = []
        reported: set = set()
        for host in ctx.attached_hosts():
            seed = PacketClass(Match(
                in_port=host.port, eth_src=host.mac, ip_src=host.ip,
            ))
            candidates = explore(snap, host.switch, host.port, seed)
            candidates = candidates[: self.max_classes_per_port]
            seen_keys: set = set()
            for cls in candidates:
                witness = cls.witness()
                if witness is None:
                    continue
                key_sig = hash(witness)
                if key_sig in seen_keys:
                    continue
                seen_keys.add(key_sig)
                trace = ctx.trace(host.switch, host.port, witness)
                for term in trace.loops:
                    dedupe = (term.switch, term.port,
                              getattr(witness.eth_dst, "value",
                                      witness.eth_dst))
                    if dedupe in reported:
                        continue
                    reported.add(dedupe)
                    cycle = " -> ".join(
                        f"{s}:{p}" for s, p in term.path[-6:]
                    )
                    violations.append(Violation(
                        self.name, "loop",
                        f"forwarding loop via {term.switch} "
                        f"(tail: {cycle})",
                        cls, witness, term, snap.time,
                    ))
        return violations


class NoBlackholes(Invariant):
    """Probes between every attached host pair must not silently die.

    A pair passes when its probe is delivered to the destination, punted
    to a live controller (reactive setups), or explicitly dropped by
    policy.  It fails when no delivery happened *and* some copy died in
    a blackhole — which also makes this the unreachable-pair detector.
    """

    name = "no-blackholes"

    def check(self, ctx: CheckContext) -> List[Violation]:
        snap = ctx.snapshot
        violations: List[Violation] = []
        hosts = ctx.attached_hosts()
        for src in hosts:
            for dst in hosts:
                if src.name == dst.name:
                    continue
                key = probe_key(src, dst)
                trace = ctx.trace(src.switch, src.port, key)
                if trace.delivered_to(dst.name):
                    continue
                holes = trace.blackholes
                if not holes:
                    continue  # punted / policy-dropped: intended
                term = holes[0]
                cls = PacketClass(Match(
                    in_port=src.port, eth_src=src.mac, eth_dst=dst.mac,
                    eth_type=0x0800, ip_src=src.ip, ip_dst=dst.ip,
                ))
                violations.append(Violation(
                    self.name, term.kind,
                    f"traffic {src.name} -> {dst.name} dies at "
                    f"{term.switch} ({term.kind}: {term.detail})",
                    cls, key, term, snap.time,
                ))
        return violations


class SliceIsolation(Invariant):
    """Declared-isolated slices must not exchange dataplane traffic.

    ``slices`` maps slice name → member host names.  Only cross-slice
    pairs are probed; a delivery across the boundary is a leak.
    """

    name = "slice-isolation"

    def __init__(self, slices: Dict[str, Iterable[str]]) -> None:
        self.slices = {name: sorted(members)
                       for name, members in sorted(slices.items())}

    def check(self, ctx: CheckContext) -> List[Violation]:
        snap = ctx.snapshot
        violations: List[Violation] = []
        owner: Dict[str, str] = {}
        for slice_name, members in self.slices.items():
            for host in members:
                owner[host] = slice_name
        hosts = [h for h in ctx.attached_hosts() if h.name in owner]
        for src in hosts:
            for dst in hosts:
                if src.name == dst.name:
                    continue
                if owner[src.name] == owner[dst.name]:
                    continue
                key = probe_key(src, dst)
                trace = ctx.trace(src.switch, src.port, key)
                if not trace.delivered_to(dst.name):
                    continue
                cls = PacketClass(Match(
                    in_port=src.port, eth_src=src.mac, eth_dst=dst.mac,
                    eth_type=0x0800, ip_src=src.ip, ip_dst=dst.ip,
                ))
                term = next(
                    (t for t in trace.terminals
                     if t.kind == "delivered" and t.host == dst.name),
                    None,
                )
                violations.append(Violation(
                    self.name, "slice_leak",
                    f"slice {owner[src.name]!r} host {src.name} reaches "
                    f"slice {owner[dst.name]!r} host {dst.name}",
                    cls, key, term, snap.time,
                ))
        return violations


class FirewallCompliance(Invariant):
    """The dataplane must enforce the firewall's intent: any key the
    rule set denies must never be delivered end-to-end."""

    name = "firewall-compliance"

    #: Per-rule fields lifted onto the base probe to exercise the rule.
    _LIFT_FIELDS = ("eth_type", "vlan_vid", "ip_proto", "ip_dscp",
                    "l4_src", "l4_dst")

    def __init__(self, firewall) -> None:
        self.firewall = firewall

    def _probe_keys(self, src: HostSnap, dst: HostSnap) -> List[FlowKey]:
        base = probe_key(src, dst)
        keys = [base]
        seen = {hash(base)}
        for rule_id in sorted(self.firewall.rules):
            rule = self.firewall.rules[rule_id]
            fields = base.as_dict()
            for name in self._LIFT_FIELDS:
                value = rule.match.get(name)
                if value is not None and not isinstance(value, Match):
                    fields[name] = value
            candidate = FlowKey(**fields)
            if hash(candidate) not in seen:
                seen.add(hash(candidate))
                keys.append(candidate)
        return keys

    def check(self, ctx: CheckContext) -> List[Violation]:
        snap = ctx.snapshot
        violations: List[Violation] = []
        hosts = ctx.attached_hosts()
        for src in hosts:
            for dst in hosts:
                if src.name == dst.name:
                    continue
                for key in self._probe_keys(src, dst):
                    if self.firewall.evaluate(key):
                        continue  # allowed: nothing to enforce
                    trace = ctx.trace(src.switch, src.port, key)
                    if not trace.delivered_to(dst.name):
                        continue
                    cls = PacketClass(Match(**{
                        k: v for k, v in key.as_dict().items()
                        if v is not None
                    }))
                    violations.append(Violation(
                        self.name, "firewall_bypass",
                        f"denied traffic {src.name} -> {dst.name} "
                        f"delivered despite ACL",
                        cls, key, None, snap.time,
                    ))
        return violations


class CheckResult:
    """The outcome of one checker run over one snapshot."""

    __slots__ = ("snapshot", "violations", "invariants", "probes_run")

    def __init__(self, snapshot: NetworkSnapshot,
                 violations: List[Violation],
                 invariants: Tuple[str, ...], probes_run: int) -> None:
        self.snapshot = snapshot
        self.violations = violations
        self.invariants = invariants
        self.probes_run = probes_run

    @property
    def ok(self) -> bool:
        return not self.violations

    def of_kind(self, kind: str) -> List[Violation]:
        """All violations of one kind."""
        return [v for v in self.violations if v.kind == kind]

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for v in self.violations:
            counts[v.kind] = counts.get(v.kind, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        return {
            "time": self.snapshot.time,
            "ok": self.ok,
            "invariants": list(self.invariants),
            "probes_run": self.probes_run,
            "violations": [v.to_dict() for v in self.violations],
        }

    def summary(self) -> str:
        if self.ok:
            return (f"OK: {len(self.invariants)} invariants, "
                    f"{self.probes_run} probes, 0 violations")
        kinds = ", ".join(f"{k}×{n}" for k, n in self.by_kind().items())
        return (f"FAIL: {len(self.violations)} violation(s) [{kinds}] "
                f"over {self.probes_run} probes")

    def __repr__(self) -> str:
        return f"<CheckResult {self.summary()}>"


def DEFAULT_INVARIANTS() -> List[Invariant]:
    """The always-applicable invariant set (loop + blackhole freedom)."""
    return [NoForwardingLoops(), NoBlackholes()]


class NetworkChecker:
    """Evaluates an invariant set against a network or a snapshot."""

    def __init__(self,
                 invariants: Optional[List[Invariant]] = None) -> None:
        self.invariants = (list(invariants) if invariants is not None
                           else DEFAULT_INVARIANTS())

    def add(self, invariant: Invariant) -> "NetworkChecker":
        self.invariants.append(invariant)
        return self

    def check(self, net: Network) -> CheckResult:
        """Snapshot ``net`` and evaluate every invariant.  Pure read."""
        return self.check_snapshot(NetworkSnapshot.capture(net))

    def check_snapshot(self, snapshot: NetworkSnapshot) -> CheckResult:
        ctx = CheckContext(snapshot)
        violations: List[Violation] = []
        for invariant in self.invariants:
            violations.extend(invariant.check(ctx))
        return CheckResult(
            snapshot, violations,
            tuple(i.name for i in self.invariants), ctx.probes_run,
        )
