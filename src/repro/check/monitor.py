"""Online invariant monitoring hooked into convergence events.

An :class:`InvariantMonitor` re-runs a :class:`NetworkChecker` whenever
the control plane reaches a point worth auditing:

* a switch completes its handshake (``SwitchEnter``),
* a reconnect reconciliation finishes (``ResyncDone``),
* a scripted fault fires (``FaultSchedule.on_fire``).

Checks run *synchronously inside* the triggering callback — no kernel
events are scheduled, no randomness is drawn, and the checker itself is
a pure read — so enabling the monitor leaves a seeded run bit-identical
to one without it (the telemetry doctrine, now applied to
verification).  Failures surface through ``repro.telemetry`` counters
and each :class:`CheckRecord` keeps the triggering snapshot for
post-mortem.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.controller.events import ResyncDone, SwitchEnter
from repro.netem.network import Network

from repro.check.invariants import CheckResult, NetworkChecker

__all__ = ["CheckRecord", "InvariantMonitor"]


class CheckRecord:
    """One monitor run: when, why, and what it found."""

    __slots__ = ("time", "trigger", "result")

    def __init__(self, time: float, trigger: str,
                 result: CheckResult) -> None:
        self.time = time
        self.trigger = trigger
        self.result = result

    def __repr__(self) -> str:
        return (f"<CheckRecord t={self.time:.3f} {self.trigger}: "
                f"{self.result.summary()}>")


class InvariantMonitor:
    """Re-checks invariants after convergence events.

    Parameters
    ----------
    net:
        The network to snapshot on every trigger.
    checker:
        The invariant set to evaluate (defaults to loop + blackhole
        freedom).
    max_records:
        History depth; older records are discarded FIFO.
    """

    def __init__(self, net: Network,
                 checker: Optional[NetworkChecker] = None,
                 max_records: int = 256) -> None:
        self.net = net
        self.checker = checker if checker is not None else NetworkChecker()
        self.max_records = max_records
        self.records: List[CheckRecord] = []
        self.checks_run = 0
        self.violations_seen = 0
        #: Called with each new :class:`CheckRecord` (after it is
        #: appended).  ``repro.obs`` uses this to annotate violations
        #: on the run timeline; hooks must be pure reads.
        self.on_record: Optional[Callable[[CheckRecord], None]] = None
        tel = net.telemetry
        if tel is not None and tel.enabled:
            self._m_checks = tel.metrics.counter(
                "check_runs_total", "Invariant monitor runs",
                ("trigger",),
            )
            self._m_violations = tel.metrics.counter(
                "check_violations_total",
                "Invariant violations observed by the monitor",
                ("invariant",),
            )
        else:
            self._m_checks = self._m_violations = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, controller) -> "InvariantMonitor":
        """Subscribe to the controller's convergence events."""
        controller.subscribe(
            SwitchEnter,
            lambda ev: self.recheck(f"switch-enter:{ev.switch.dpid}"),
            owner="check.monitor",
        )
        controller.subscribe(
            ResyncDone,
            lambda ev: self.recheck(f"resync-done:{ev.switch.dpid}"),
            owner="check.monitor",
        )
        return self

    def watch(self, schedule) -> "InvariantMonitor":
        """Re-check after every fault injection of ``schedule``.

        Chains any previously installed ``on_fire`` hook; the check runs
        *after* the fault's action, at the exact injection instant —
        before the control plane has had a chance to react, which is
        precisely when transient blackholes are visible.
        """
        previous = schedule.on_fire

        def hook(event) -> None:
            if previous is not None:
                previous(event)
            self.recheck(f"fault:{event.kind}:{event.target}")

        schedule.on_fire = hook
        return self

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def recheck(self, trigger: str) -> CheckResult:
        """Run the checker now (pure read) and record the outcome."""
        result = self.checker.check(self.net)
        self.checks_run += 1
        self.violations_seen += len(result.violations)
        if self._m_checks is not None:
            self._m_checks.labels(trigger.split(":", 1)[0]).inc()
            for violation in result.violations:
                self._m_violations.labels(violation.invariant).inc()
        record = CheckRecord(self.net.sim.now, trigger, result)
        self.records.append(record)
        if len(self.records) > self.max_records:
            del self.records[: len(self.records) - self.max_records]
        if self.on_record is not None:
            self.on_record(record)
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def latest(self) -> Optional[CheckRecord]:
        return self.records[-1] if self.records else None

    def failing_records(self) -> List[CheckRecord]:
        return [r for r in self.records if not r.result.ok]

    def saw_violation(self, kind: Optional[str] = None,
                      trigger_prefix: Optional[str] = None) -> bool:
        """Did any recorded run contain a violation (of ``kind``, after
        a trigger starting with ``trigger_prefix``)?"""
        for record in self.records:
            if (trigger_prefix is not None
                    and not record.trigger.startswith(trigger_prefix)):
                continue
            for violation in record.result.violations:
                if kind is None or violation.kind == kind:
                    return True
        return False

    def __repr__(self) -> str:
        return (f"<InvariantMonitor {self.checks_run} checks, "
                f"{self.violations_seen} violations>")
