"""Symbolic reachability over a :class:`NetworkSnapshot`.

Two engines cooperate here, split so the checker can be aggressive about
exploration without ever risking a false positive:

* a **symbolic explorer** walks packet *classes* (a positive
  :class:`~repro.dataplane.match.Match` plus a list of excluded
  matches) through the frozen pipelines, splitting a class at every
  rule boundary it crosses.  Rewrites are tracked in a substitution map
  (field → concrete value), so un-rewritten fields stay expressed in
  ingress terms and the Match algebra (`intersect` / `is_subset_of` /
  `overlaps`) applies directly.  The explorer's only job is to
  *enumerate interesting ingress classes* and materialise a witness
  packet for each;
* a **concrete interpreter** replays one witness flow key through the
  snapshot with the exact semantics of
  :meth:`~repro.dataplane.switch.Datapath._walk` — canonical first-match
  lookup, rewrite-then-emit action lists, stage-keyed group selection,
  the hairpin guard, flood fanout, TTL expiry — and its terminals are
  the *only* evidence invariants may cite.

Anything the explorer finds that the interpreter cannot reproduce is
silently dropped: the checker under-reports rather than ever crying
wolf.  Neither engine touches a live object — no ``lookup()``, no
``select_buckets()``, no counters, no kernel events.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.dataplane.actions import (
    DecTTL,
    Group,
    Meter,
    Output,
    PORT_ALL,
    PORT_CONTROLLER,
    PORT_FLOOD,
    PORT_IN_PORT,
    PORT_TABLE,
    PopVLAN,
    PushVLAN,
    SetDSCP,
    SetEthDst,
    SetEthSrc,
    SetIPDst,
    SetIPSrc,
    SetL4Dst,
    SetL4Src,
    SetVLAN,
)
from repro.dataplane.match import MATCH_FIELDS, Match, FlowKey, VLAN_ABSENT
from repro.packet import IPv4Address, IPv4Network, MACAddress

from repro.check.snapshot import DatapathSnap, NetworkSnapshot

__all__ = [
    "PacketClass",
    "Terminal",
    "ConcreteTrace",
    "trace_packet",
    "explore",
    "BLACKHOLE_KINDS",
    "INITIAL_TTL",
]

#: Terminal kinds that mean "traffic silently dies in the dataplane".
#: Everything else (delivery, punts to a *live* controller, explicit
#: policy drops, the hairpin guard) is intended behaviour.
BLACKHOLE_KINDS = frozenset({
    "dead_port",       # output to a down/absent port
    "dead_link",       # port up but the link (or far end) is down
    "miss_drop",       # table miss with drop/fall-off-pipeline handling
    "ff_no_live",      # fast-failover group with every bucket dead
    "punt_dead",       # punt at a switch whose control channel is down
    "bad_group",       # action references a group that does not exist
    "ttl_expired",     # the packet aged out mid-network
    "ingress_down",    # the packet's own ingress port is down
})

#: TTL assumed for witness packets (matches the emulator's default).
INITIAL_TTL = 64

_MAX_GROUP_DEPTH = 4

# Deterministic defaults for witness materialisation.  The 02:ee prefix
# is locally administered and never collides with emulator-minted MACs
# (02:00:...), so a default witness is recognisably synthetic.
_WITNESS_DEFAULTS: Dict[str, Any] = {
    "in_port": 1,
    "eth_src": MACAddress("02:ee:00:00:00:01"),
    "eth_dst": MACAddress("02:ee:00:00:00:02"),
    "eth_type": 0x0800,
    "vlan_vid": VLAN_ABSENT,
    "ip_src": IPv4Address("10.254.0.1"),
    "ip_dst": IPv4Address("10.254.0.2"),
    "ip_proto": 17,
    "ip_dscp": 0,
    "l4_src": 4242,
    "l4_dst": 4243,
}

_FIELD_LIMIT = {
    "eth_type": 1 << 16,
    "vlan_vid": 1 << 12,
    "ip_proto": 1 << 8,
    "ip_dscp": 1 << 6,
    "l4_src": 1 << 16,
    "l4_dst": 1 << 16,
}


def _bump(field: str, value: Any) -> Any:
    """The next candidate value for ``field`` (wrapping, deterministic)."""
    if isinstance(value, MACAddress):
        return MACAddress((value.value + 1) & ((1 << 48) - 1))
    if isinstance(value, IPv4Address):
        return IPv4Address((value.value + 1) & ((1 << 32) - 1))
    limit = _FIELD_LIMIT.get(field)
    if field == "vlan_vid":
        # VLAN_ABSENT (-1) bumps to tag 1, then walks the vid space.
        nxt = value + 1 if value >= 1 else 1
        return nxt if nxt < limit else VLAN_ABSENT
    if limit is not None:
        return (value + 1) % limit
    return value + 1


def _outside_network(net: IPv4Network) -> Optional[IPv4Address]:
    """A deterministic address just outside ``net`` (None for 0.0.0.0/0)."""
    if net.prefix_len == 0:
        return None
    size = 1 << (32 - net.prefix_len)
    base = net.address.value & ~(size - 1) & ((1 << 32) - 1)
    return IPv4Address((base + size) & ((1 << 32) - 1))


def _inside_network(net: IPv4Network, offset: int) -> IPv4Address:
    size = 1 << (32 - net.prefix_len)
    base = net.address.value & ~(size - 1) & ((1 << 32) - 1)
    return IPv4Address(base + (offset % size))


class PacketClass:
    """A set of ingress packets: a positive pattern minus excluded ones.

    ``positive`` is a :class:`Match` every member satisfies; each entry
    of ``excludes`` is a :class:`Match` no member satisfies.  The class
    is *ingress-relative*: all constraints talk about header fields as
    they were when the packet entered the network.
    """

    __slots__ = ("positive", "excludes")

    def __init__(self, positive: Match,
                 excludes: Tuple[Match, ...] = ()) -> None:
        self.positive = positive
        self.excludes = excludes

    # -- algebra -------------------------------------------------------
    def restrict(self, match: Match) -> Optional["PacketClass"]:
        """Members that additionally satisfy ``match`` (None if none)."""
        merged = self.positive.intersect(match)
        if merged is None:
            return None
        kept = tuple(e for e in self.excludes if merged.overlaps(e))
        for e in kept:
            if merged.is_subset_of(e):
                return None  # an exclude covers the whole class
        return PacketClass(merged, kept)

    def subtract(self, match: Match) -> Optional["PacketClass"]:
        """Members that do *not* satisfy ``match`` (None if none left)."""
        if not self.positive.overlaps(match):
            return self
        if self.positive.is_subset_of(match):
            return None
        return PacketClass(self.positive, self.excludes + (match,))

    def contains(self, key: FlowKey) -> bool:
        """Is the concrete ``key`` a member of this class?"""
        if not self.positive.matches(key):
            return False
        return not any(e.matches(key) for e in self.excludes)

    # -- materialisation ----------------------------------------------
    def witness(self) -> Optional[FlowKey]:
        """A concrete member of this class, or None if we cannot build
        one.  Deterministic: same class, same witness."""
        values = dict(_WITNESS_DEFAULTS)
        positive = self.positive.fields
        for field, constraint in positive.items():
            if isinstance(constraint, IPv4Network):
                values[field] = _inside_network(constraint, 0)
            else:
                values[field] = constraint
        for _ in range(64):
            key = FlowKey(**values)
            offender = None
            for exclude in self.excludes:
                if exclude.matches(key):
                    offender = exclude
                    break
            if offender is None:
                return key
            if not self._dodge(values, positive, offender):
                return None
        return None

    def _dodge(self, values: Dict[str, Any], positive: Dict[str, Any],
               exclude: Match) -> bool:
        """Perturb one field of ``values`` to escape ``exclude``,
        respecting the positive constraints.  False when impossible."""
        for field in MATCH_FIELDS:
            if field not in exclude or field == "in_port":
                continue
            bound = positive.get(field)
            constraint = exclude.get(field)
            if bound is None:
                if isinstance(constraint, IPv4Network):
                    outside = _outside_network(constraint)
                    if outside is None:
                        continue
                    values[field] = outside
                else:
                    values[field] = _bump(field, values[field])
                return True
            if isinstance(bound, IPv4Network):
                # Walk the prefix's host space looking for a value the
                # exclude rejects.
                current = values[field]
                offset = (current.value - bound.address.value) & 0xFFFFFFFF
                candidate = _inside_network(bound, offset + 1)
                if candidate.value != current.value:
                    values[field] = candidate
                    return True
            # Exact positive pin: this field cannot move.
        return False

    def to_dict(self) -> dict:
        return {
            "positive": {k: str(v) for k, v in
                         sorted(self.positive.fields.items())},
            "excludes": [
                {k: str(v) for k, v in sorted(e.fields.items())}
                for e in self.excludes
            ],
        }

    def __repr__(self) -> str:
        extra = f" minus {len(self.excludes)}" if self.excludes else ""
        return f"<PacketClass {self.positive!r}{extra}>"


# ----------------------------------------------------------------------
# Concrete interpretation
# ----------------------------------------------------------------------

def _key_fields(key: FlowKey) -> Dict[str, Any]:
    return {f: getattr(key, f) for f in MATCH_FIELDS}


def _sig(fields: Dict[str, Any], ttl: int) -> tuple:
    return tuple(
        getattr(fields[f], "value", fields[f]) for f in MATCH_FIELDS
    ) + (ttl,)


def _make_key(fields: Dict[str, Any]) -> FlowKey:
    return FlowKey(**fields)


class Terminal:
    """Where (one copy of) a packet ended up."""

    __slots__ = ("kind", "switch", "port", "host", "detail", "path")

    def __init__(self, kind: str, switch: Optional[str] = None,
                 port: Optional[int] = None, host: Optional[str] = None,
                 detail: str = "",
                 path: Tuple[Tuple[str, int], ...] = ()) -> None:
        self.kind = kind
        self.switch = switch
        self.port = port
        self.host = host
        self.detail = detail
        #: The (switch, in_port) hops this copy traversed, in order.
        self.path = path

    @property
    def is_blackhole(self) -> bool:
        return self.kind in BLACKHOLE_KINDS

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "switch": self.switch,
            "port": self.port,
            "host": self.host,
            "detail": self.detail,
            "path": [list(h) for h in self.path],
        }

    def __repr__(self) -> str:
        where = self.host or self.switch or "?"
        return f"<Terminal {self.kind} @ {where}>"


class ConcreteTrace:
    """Every terminal of one injected witness packet."""

    __slots__ = ("key", "start_switch", "start_port", "terminals")

    def __init__(self, key: FlowKey, start_switch: str,
                 start_port: int, terminals: List[Terminal]) -> None:
        self.key = key
        self.start_switch = start_switch
        self.start_port = start_port
        self.terminals = terminals

    @property
    def loops(self) -> List[Terminal]:
        return [t for t in self.terminals if t.kind == "loop"]

    @property
    def blackholes(self) -> List[Terminal]:
        return [t for t in self.terminals if t.is_blackhole]

    def delivered_hosts(self) -> List[str]:
        return sorted({t.host for t in self.terminals
                       if t.kind == "delivered" and t.host})

    def delivered_to(self, host: str) -> bool:
        return any(t.kind == "delivered" and t.host == host
                   for t in self.terminals)

    def __repr__(self) -> str:
        kinds = ",".join(sorted({t.kind for t in self.terminals}))
        return f"<ConcreteTrace {self.start_switch}:{self.start_port} [{kinds}]>"


class _Budget:
    __slots__ = ("left",)

    def __init__(self, limit: int) -> None:
        self.left = limit

    def take(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        return True


def trace_packet(snap: NetworkSnapshot, switch: str, in_port: int,
                 key: FlowKey, max_nodes: int = 4096) -> ConcreteTrace:
    """Run one concrete flow key through the frozen network.

    Replicates the datapath pipeline exactly (see module docstring) and
    follows every copy across links until it terminates.  Loops are
    detected as an exact (switch, in_port, header fields, ttl) state
    revisit along one causal chain.
    """
    terminals: List[Terminal] = []
    budget = _Budget(max_nodes)
    fields = _key_fields(key)
    fields["in_port"] = in_port
    # Worklist items: (switch, in_port, fields, ttl, path-of-sigs, hops)
    work: List[tuple] = [(switch, in_port, fields, INITIAL_TTL, (), ())]
    while work:
        sw_name, port, flds, ttl, path, hops = work.pop()
        if not budget.take():
            terminals.append(Terminal("budget", sw_name, port, path=hops))
            continue
        sw = snap.switches.get(sw_name)
        if sw is None:
            terminals.append(Terminal("dead_link", sw_name, port,
                                      path=hops))
            continue
        if not sw.port_is_live(port):
            terminals.append(Terminal(
                "ingress_down", sw_name, port, path=hops,
                detail="packet arrived on a down port"))
            continue
        state = (sw_name, port) + _sig(flds, ttl)
        if state in path:
            terminals.append(Terminal(
                "loop", sw_name, port, path=hops + ((sw_name, port),),
                detail="pipeline state revisited"))
            continue
        _pipeline(snap, sw, port, flds, ttl, path + (state,),
                  hops + ((sw_name, port),), terminals, work, budget)
    return ConcreteTrace(key, switch, in_port, terminals)


def _pipeline(snap: NetworkSnapshot, sw: DatapathSnap, in_port: int,
              fields: Dict[str, Any], ttl: int, path: tuple, hops: tuple,
              terminals: List[Terminal], work: List[tuple],
              budget: _Budget) -> None:
    """One switch's table walk for a concrete packet."""
    table_id = 0
    while True:
        key = _make_key(fields)
        entry = None
        for cand in sw.tables[table_id].entries:
            if cand.match.matches(key):
                entry = cand
                break
        if entry is None:
            if sw.miss_behaviour == "continue":
                if table_id + 1 < len(sw.tables):
                    table_id += 1
                    continue
                terminals.append(Terminal(
                    "miss_drop", sw.name, in_port, path=hops,
                    detail=f"fell off table {table_id}"))
                return
            if sw.miss_behaviour == "controller":
                kind = "punt" if sw.channel_up else "punt_dead"
                terminals.append(Terminal(
                    kind, sw.name, in_port, path=hops,
                    detail=f"miss in table {table_id}"))
                return
            terminals.append(Terminal(
                "miss_drop", sw.name, in_port, path=hops,
                detail=f"miss in table {table_id} (drop)"))
            return
        result = _exec_actions(
            snap, sw, entry.actions, fields, ttl, key, in_port, 0,
            path, hops, terminals, work, budget,
            has_goto=entry.goto_table is not None,
        )
        if result is None:
            return  # TTL expired mid-action-list
        fields, ttl = result
        if entry.goto_table is None:
            return
        if entry.goto_table >= len(sw.tables):
            # The live datapath would raise; treat as a drop-dead end.
            terminals.append(Terminal(
                "miss_drop", sw.name, in_port, path=hops,
                detail=f"goto past pipeline ({entry.goto_table})"))
            return
        table_id = entry.goto_table


def _exec_actions(snap: NetworkSnapshot, sw: DatapathSnap,
                  actions: Iterable, fields: Dict[str, Any], ttl: int,
                  stage_key: FlowKey, in_port: int, depth: int,
                  path: tuple, hops: tuple, terminals: List[Terminal],
                  work: List[tuple], budget: _Budget,
                  has_goto: bool = False
                  ) -> Optional[Tuple[Dict[str, Any], int]]:
    """Mirror of ``apply_actions`` + ``_execute``: rewrites in list
    order, then every emission uses the final header values.  Returns
    the rewritten (fields, ttl) or None when the packet died here."""
    working = dict(fields)
    out_ports: List[int] = []
    group_ids: List[int] = []
    meter_ids: List[int] = []
    for action in actions:
        if isinstance(action, Output):
            out_ports.append(action.port)
        elif isinstance(action, Group):
            group_ids.append(action.group_id)
        elif isinstance(action, Meter):
            meter_ids.append(action.meter_id)
        elif isinstance(action, SetEthSrc):
            working["eth_src"] = action.mac
        elif isinstance(action, SetEthDst):
            working["eth_dst"] = action.mac
        elif isinstance(action, SetIPSrc):
            working["ip_src"] = action.ip
        elif isinstance(action, SetIPDst):
            working["ip_dst"] = action.ip
        elif isinstance(action, SetL4Src):
            working["l4_src"] = action.port
        elif isinstance(action, SetL4Dst):
            working["l4_dst"] = action.port
        elif isinstance(action, SetDSCP):
            working["ip_dscp"] = action.dscp
        elif isinstance(action, (PushVLAN, SetVLAN)):
            working["vlan_vid"] = action.vid
        elif isinstance(action, PopVLAN):
            working["vlan_vid"] = VLAN_ABSENT
        elif isinstance(action, DecTTL):
            if ttl <= 1:
                kind = "ttl_expired" if sw.channel_up else "punt_dead"
                terminals.append(Terminal(
                    "ttl_expired", sw.name, in_port, path=hops,
                    detail=kind))
                return None
            ttl -= 1
        # Unknown action types rewrite nothing the key can see.
    # Meters are modelled as pass-through: the checker reasons about
    # reachability, not rate conformance, and guessing token-bucket
    # state would risk false positives.
    for port_no in out_ports:
        _emit(snap, sw, working, ttl, in_port, port_no, path, hops,
              terminals, work, budget)
    for group_id in group_ids:
        _run_group(snap, sw, working, ttl, stage_key, in_port, group_id,
                   depth, path, hops, terminals, work, budget)
    if not out_ports and not group_ids and not meter_ids and not has_goto:
        terminals.append(Terminal(
            "policy_drop", sw.name, in_port, path=hops,
            detail="empty action list"))
    return working, ttl


def _run_group(snap: NetworkSnapshot, sw: DatapathSnap,
               fields: Dict[str, Any], ttl: int, stage_key: FlowKey,
               in_port: int, group_id: int, depth: int, path: tuple,
               hops: tuple, terminals: List[Terminal], work: List[tuple],
               budget: _Budget) -> None:
    if depth >= _MAX_GROUP_DEPTH:
        terminals.append(Terminal(
            "bad_group", sw.name, in_port, path=hops,
            detail=f"group recursion past {_MAX_GROUP_DEPTH}"))
        return
    group = sw.groups.get(group_id)
    if group is None:
        terminals.append(Terminal(
            "bad_group", sw.name, in_port, path=hops,
            detail=f"no such group {group_id}"))
        return
    buckets = _select_buckets(group, stage_key, sw)
    if not buckets:
        terminals.append(Terminal(
            "ff_no_live", sw.name, in_port, path=hops,
            detail=f"group {group_id}: no live bucket"))
        return
    for bucket_actions in buckets:
        _exec_actions(snap, sw, bucket_actions, fields, ttl, stage_key,
                      in_port, depth + 1, path, hops, terminals, work,
                      budget)


def _select_buckets(group, key: FlowKey, sw: DatapathSnap) -> List[tuple]:
    """Counter-free replica of :meth:`GroupEntry.select_buckets`."""
    buckets = group.buckets  # (actions, watch_port, weight) triples
    if group.group_type == "all":
        return [b[0] for b in buckets]
    if group.group_type == "indirect":
        return [buckets[0][0]]
    if group.group_type == "select":
        total = sum(b[2] for b in buckets)
        slot = hash(key) % total
        upto = 0
        for actions, _watch, weight in buckets:
            upto += weight
            if slot < upto:
                return [actions]
        return [buckets[-1][0]]
    # fast failover
    for actions, watch, _weight in buckets:
        if watch is None or sw.port_is_live(watch):
            return [actions]
    return []


def _emit(snap: NetworkSnapshot, sw: DatapathSnap,
          fields: Dict[str, Any], ttl: int, in_port: int, port_no: int,
          path: tuple, hops: tuple, terminals: List[Terminal],
          work: List[tuple], budget: _Budget) -> None:
    if port_no == PORT_CONTROLLER:
        kind = "punt" if sw.channel_up else "punt_dead"
        terminals.append(Terminal(kind, sw.name, in_port, path=hops,
                                  detail="output:CONTROLLER"))
        return
    if port_no == PORT_TABLE:
        nf = dict(fields)
        work.append((sw.name, in_port, nf, ttl, path, hops[:-1]))
        return
    if port_no == PORT_IN_PORT:
        _transmit(snap, sw, fields, ttl, in_port, in_port, path, hops,
                  terminals, work)
        return
    if port_no in (PORT_FLOOD, PORT_ALL):
        for number in sorted(sw.ports):
            port = sw.ports[number]
            if number == in_port and port_no == PORT_FLOOD:
                continue
            if not port.up or (port.no_flood and port_no == PORT_FLOOD):
                continue
            _transmit(snap, sw, fields, ttl, in_port, number, path, hops,
                      terminals, work)
        return
    if port_no == in_port:
        # The datapath's hairpin guard: never emit on the ingress port
        # unless IN_PORT was named explicitly.
        terminals.append(Terminal("hairpin", sw.name, in_port,
                                  path=hops))
        return
    _transmit(snap, sw, fields, ttl, in_port, port_no, path, hops,
              terminals, work)


def _transmit(snap: NetworkSnapshot, sw: DatapathSnap,
              fields: Dict[str, Any], ttl: int, in_port: int,
              port_no: int, path: tuple, hops: tuple,
              terminals: List[Terminal], work: List[tuple]) -> None:
    if not sw.port_is_live(port_no):
        terminals.append(Terminal(
            "dead_port", sw.name, port_no, path=hops,
            detail=f"output to down port {port_no}"))
        return
    peer = snap.adjacency.get((sw.name, port_no))
    if peer is None:
        terminals.append(Terminal(
            "dead_port", sw.name, port_no, path=hops,
            detail=f"port {port_no} has no link"))
        return
    kind, peer_name, peer_port, link_up = peer
    if not link_up:
        terminals.append(Terminal(
            "dead_link", sw.name, port_no, path=hops,
            detail=f"link to {peer_name} is down"))
        return
    if kind == "host":
        terminals.append(Terminal(
            "delivered", sw.name, port_no, host=peer_name, path=hops))
        return
    nf = dict(fields)
    nf["in_port"] = peer_port
    work.append((peer_name, peer_port, nf, ttl, path, hops))


# ----------------------------------------------------------------------
# Symbolic exploration
# ----------------------------------------------------------------------

_REWRITE_FIELD = {
    SetEthSrc: ("eth_src", "mac"),
    SetEthDst: ("eth_dst", "mac"),
    SetIPSrc: ("ip_src", "ip"),
    SetIPDst: ("ip_dst", "ip"),
    SetL4Src: ("l4_src", "port"),
    SetL4Dst: ("l4_dst", "port"),
    SetDSCP: ("ip_dscp", "dscp"),
    SetVLAN: ("vlan_vid", "vid"),
    PushVLAN: ("vlan_vid", "vid"),
}


def _satisfies(value: Any, constraint: Any) -> bool:
    """Does a concrete ``value`` satisfy one match constraint?"""
    if isinstance(constraint, IPv4Network):
        return isinstance(value, IPv4Address) and constraint.contains(value)
    return value == constraint


class _SymState:
    __slots__ = ("switch", "in_port", "cls", "sigma", "chain")

    def __init__(self, switch: str, in_port: int, cls: PacketClass,
                 sigma: Dict[str, Any], chain: tuple) -> None:
        self.switch = switch
        self.in_port = in_port
        self.cls = cls
        self.sigma = sigma
        self.chain = chain


def explore(snap: NetworkSnapshot, switch: str, in_port: int,
            seed: PacketClass, max_states: int = 2048
            ) -> List[PacketClass]:
    """Enumerate ingress packet classes that take distinct paths.

    Returns candidate classes (ingress-relative); callers materialise a
    witness per class and confirm behaviour with :func:`trace_packet`.
    The list is deterministic and deduplicated by class signature.
    """
    candidates: List[PacketClass] = []
    seen_cls: set = set()

    def emit_candidate(cls: PacketClass) -> None:
        sig = (cls.positive, cls.excludes)
        if sig not in seen_cls:
            seen_cls.add(sig)
            candidates.append(cls)

    budget = _Budget(max_states)
    start_sigma = {"in_port": in_port}
    work: List[_SymState] = [
        _SymState(switch, in_port, seed, start_sigma, ())
    ]
    while work:
        st = work.pop()
        if not budget.take():
            emit_candidate(st.cls)
            continue
        sw = snap.switches.get(st.switch)
        if sw is None or not sw.port_is_live(st.in_port):
            emit_candidate(st.cls)
            continue
        sig = (st.switch, st.in_port,
               tuple(sorted((k, getattr(v, "value", v))
                            for k, v in st.sigma.items())))
        if sig in st.chain:
            emit_candidate(st.cls)  # symbolic cycle: let concrete decide
            continue
        _sym_pipeline(snap, sw, st, sig, emit_candidate, work)
    return candidates


def _sym_pipeline(snap: NetworkSnapshot, sw: DatapathSnap, st: _SymState,
                  sig: tuple, emit_candidate, work: List[_SymState]
                  ) -> None:
    """Symbolically walk one switch's pipeline, splitting ``st.cls``
    along rule boundaries.  Each split branch either continues into the
    topology (new worklist state) or bottoms out as a candidate."""
    # Stack of (table_id, cls, sigma) branches inside this switch.
    branches = [(0, st.cls, dict(st.sigma))]
    while branches:
        table_id, cls, sigma = branches.pop()
        if table_id >= len(sw.tables):
            emit_candidate(cls)
            continue
        remaining: Optional[PacketClass] = cls
        for entry in sw.tables[table_id].entries:
            if remaining is None:
                break
            pinned_ok = True
            free: Dict[str, Any] = {}
            for name, constraint in entry.match.fields.items():
                if name in sigma:
                    if not _satisfies(sigma[name], constraint):
                        pinned_ok = False
                        break
                else:
                    free[name] = constraint
            if not pinned_ok:
                continue  # no current packet can match this rule
            if free:
                free_match = Match(**free)
                hit = remaining.restrict(free_match)
                if hit is None:
                    continue
                next_remaining = remaining.subtract(free_match)
            else:
                hit, next_remaining = remaining, None
            _sym_actions(snap, sw, entry, hit, dict(sigma), st,
                         table_id, branches, emit_candidate, work)
            remaining = next_remaining
        if remaining is not None:
            # Table miss for what's left of the class.
            emit_candidate(remaining)


def _sym_actions(snap: NetworkSnapshot, sw: DatapathSnap, entry,
                 cls: PacketClass, sigma: Dict[str, Any], st: _SymState,
                 table_id: int, branches: list, emit_candidate,
                 work: List[_SymState]) -> None:
    out_ports: List[int] = []
    group_ids: List[int] = []
    for action in entry.actions:
        if isinstance(action, Output):
            out_ports.append(action.port)
        elif isinstance(action, Group):
            group_ids.append(action.group_id)
        elif isinstance(action, Meter):
            pass
        elif isinstance(action, PopVLAN):
            sigma["vlan_vid"] = VLAN_ABSENT
        elif isinstance(action, DecTTL):
            pass  # concrete confirmation models TTL
        else:
            spec = _REWRITE_FIELD.get(type(action))
            if spec is not None:
                field, attr = spec
                sigma[field] = getattr(action, attr)
    action_lists: List[List[int]] = [out_ports]
    for group_id in group_ids:
        group = sw.groups.get(group_id)
        if group is None:
            emit_candidate(cls)
            continue
        for bucket_ports in _sym_group_ports(group, sw):
            action_lists.append(bucket_ports)
    emitted = False
    for ports in action_lists:
        for port_no in ports:
            emitted = True
            _sym_emit(snap, sw, cls, sigma, st, port_no, emit_candidate,
                      work)
    if entry.goto_table is not None and entry.goto_table < len(sw.tables):
        branches.append((entry.goto_table, cls, sigma))
    elif not emitted:
        # Dead end inside this switch (drop/punt): candidate as-is.
        emit_candidate(cls)


def _sym_group_ports(group, sw: DatapathSnap) -> List[List[int]]:
    """Output ports per bucket the group might use.  SELECT explores
    every bucket — the concrete pass resolves which one actually
    fires."""
    buckets = group.buckets
    chosen: List[tuple] = []
    if group.group_type == "indirect":
        chosen = [buckets[0]]
    elif group.group_type == "ff":
        for b in buckets:
            if b[1] is None or sw.port_is_live(b[1]):
                chosen = [b]
                break
    else:  # all / select: explore everything
        chosen = list(buckets)
    result = []
    for actions, _watch, _weight in chosen:
        ports = [a.port for a in actions if isinstance(a, Output)]
        if ports:
            result.append(ports)
    return result


def _sym_emit(snap: NetworkSnapshot, sw: DatapathSnap, cls: PacketClass,
              sigma: Dict[str, Any], st: _SymState, port_no: int,
              emit_candidate, work: List[_SymState]) -> None:
    if port_no in (PORT_CONTROLLER, PORT_IN_PORT):
        emit_candidate(cls)
        return
    if port_no == PORT_TABLE:
        emit_candidate(cls)
        return
    targets: List[int] = []
    if port_no in (PORT_FLOOD, PORT_ALL):
        for number in sorted(sw.ports):
            port = sw.ports[number]
            if number == st.in_port and port_no == PORT_FLOOD:
                continue
            if not port.up or (port.no_flood and port_no == PORT_FLOOD):
                continue
            targets.append(number)
    else:
        targets.append(port_no)
    for number in targets:
        peer = snap.adjacency.get((sw.name, number))
        if peer is None or not peer[3] or peer[0] == "host":
            emit_candidate(cls)
            continue
        _kind, peer_name, peer_port, _up = peer
        nsigma = dict(sigma)
        nsigma["in_port"] = peer_port
        sig = (sw.name, st.in_port,
               tuple(sorted((k, getattr(v, "value", v))
                            for k, v in sigma.items())))
        work.append(_SymState(peer_name, peer_port, cls, nsigma,
                              st.chain + (sig,)))
