"""Read-only forwarding-state snapshots for the verification plane.

A :class:`NetworkSnapshot` freezes everything the checker needs to reason
about a network — flow tables, groups, port liveness, link adjacency,
host attachment points, and control-channel health — into plain value
objects with **zero** feedback into the simulation.

The capture path is deliberately paranoid about perturbation, mirroring
the telemetry doctrine ("telemetry must never perturb the simulation"):

* flow entries are read via :meth:`FlowTable.entries` (canonical
  iteration), never :meth:`FlowTable.lookup`, which would bump
  ``lookup_count`` and diverge stats replies;
* group buckets are copied by hand, never resolved through
  :meth:`GroupEntry.select_buckets`, which increments ``packet_count``;
* no kernel events are scheduled and no randomness is drawn, so a run
  with snapshotting enabled is bit-identical to one without.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dataplane.actions import Action
from repro.dataplane.match import Match
from repro.netem.network import Network
from repro.packet import IPv4Address, MACAddress

__all__ = [
    "FlowEntrySnap",
    "TableSnap",
    "GroupSnap",
    "PortSnap",
    "DatapathSnap",
    "HostSnap",
    "NetworkSnapshot",
]


class FlowEntrySnap:
    """One flow entry, frozen: match, actions, and pipeline continuation."""

    __slots__ = ("match", "priority", "seq", "actions", "goto_table",
                 "cookie", "table_id")

    def __init__(self, match: Match, priority: int, seq: int,
                 actions: Tuple[Action, ...], goto_table: Optional[int],
                 cookie: int, table_id: int) -> None:
        self.match = match
        self.priority = priority
        self.seq = seq
        self.actions = actions
        self.goto_table = goto_table
        self.cookie = cookie
        self.table_id = table_id

    def __repr__(self) -> str:
        return (f"<FlowEntrySnap t{self.table_id} prio={self.priority} "
                f"{self.match!r}>")


class TableSnap:
    """One flow table in canonical lookup order.

    ``entries`` preserves the (-priority, -seq) iteration order of the
    live table, so "first match wins" over this list reproduces exactly
    what :meth:`FlowTable.lookup` would return.
    """

    __slots__ = ("table_id", "entries")

    def __init__(self, table_id: int,
                 entries: List[FlowEntrySnap]) -> None:
        self.table_id = table_id
        self.entries = entries


class GroupSnap:
    """A group entry: type plus frozen ``(actions, watch_port, weight)``
    buckets."""

    __slots__ = ("group_id", "group_type", "buckets")

    def __init__(self, group_id: int, group_type: str,
                 buckets: List[Tuple[Tuple[Action, ...], Optional[int],
                                     int]]) -> None:
        self.group_id = group_id
        self.group_type = group_type
        self.buckets = buckets


class PortSnap:
    __slots__ = ("number", "up", "no_flood")

    def __init__(self, number: int, up: bool, no_flood: bool) -> None:
        self.number = number
        self.up = up
        self.no_flood = no_flood


class DatapathSnap:
    """One switch's frozen pipeline state."""

    __slots__ = ("name", "dpid", "tables", "groups", "ports",
                 "miss_behaviour", "channel_up")

    def __init__(self, name: str, dpid: int, tables: List[TableSnap],
                 groups: Dict[int, GroupSnap],
                 ports: Dict[int, PortSnap], miss_behaviour: str,
                 channel_up: bool) -> None:
        self.name = name
        self.dpid = dpid
        self.tables = tables
        self.groups = groups
        self.ports = ports
        self.miss_behaviour = miss_behaviour
        #: Whether the switch could actually reach its controller at
        #: capture time.  A punt at a switch with a dead channel is a
        #: blackhole, not a recoverable miss.
        self.channel_up = channel_up

    def port_is_live(self, number: int) -> bool:
        port = self.ports.get(number)
        return port is not None and port.up


class HostSnap:
    """A host's identity and attachment point."""

    __slots__ = ("name", "mac", "ip", "switch", "port", "link_up")

    def __init__(self, name: str, mac: MACAddress, ip: IPv4Address,
                 switch: str, port: int, link_up: bool) -> None:
        self.name = name
        self.mac = mac
        self.ip = ip
        self.switch = switch
        self.port = port
        self.link_up = link_up


class NetworkSnapshot:
    """The complete forwarding state of a network at one instant.

    ``adjacency`` maps ``(switch_name, port)`` to
    ``(peer_kind, peer_name, peer_port, link_up)`` where ``peer_kind``
    is ``"switch"`` or ``"host"`` (``peer_port`` is 0 for hosts).
    """

    __slots__ = ("time", "switches", "hosts", "adjacency")

    def __init__(self, time: float, switches: Dict[str, DatapathSnap],
                 hosts: Dict[str, HostSnap],
                 adjacency: Dict[Tuple[str, int],
                                 Tuple[str, str, int, bool]]) -> None:
        self.time = time
        self.switches = switches
        self.hosts = hosts
        self.adjacency = adjacency

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, net: Network) -> "NetworkSnapshot":
        """Freeze ``net``'s forwarding state.  Pure read: touches no
        counters, schedules nothing, draws no randomness."""
        channels = net.channels
        switches: Dict[str, DatapathSnap] = {}
        for name in sorted(net.switches):
            dp = net.switches[name]
            tables = []
            for table in dp.tables:
                entries = [
                    FlowEntrySnap(
                        e.match, e.priority, e._seq, tuple(e.actions),
                        e.goto_table, e.cookie, table.table_id,
                    )
                    for e in table.entries()
                ]
                tables.append(TableSnap(table.table_id, entries))
            groups = {
                g.group_id: GroupSnap(
                    g.group_id, g.group_type,
                    [(tuple(b.actions), b.watch_port, b.weight)
                     for b in g.buckets],
                )
                for g in dp.groups
            }
            ports = {
                p.number: PortSnap(p.number, p.up, p.no_flood)
                for p in dp.ports.values()
            }
            channel = channels.get(name)
            switches[name] = DatapathSnap(
                name, dp.dpid, tables, groups, ports,
                dp.miss_behaviour,
                channel_up=(channel is None or channel.connected),
            )

        adjacency: Dict[Tuple[str, int], Tuple[str, str, int, bool]] = {}
        hosts: Dict[str, HostSnap] = {}
        topo = net.topology
        for name in sorted(net.switches):
            for neighbour in sorted(topo.neighbours(name)):
                port = net.port_of(name, neighbour)
                link_up = net.link(name, neighbour).up
                if neighbour in net.switches:
                    peer_port = net.port_of(neighbour, name)
                    adjacency[(name, port)] = (
                        "switch", neighbour, peer_port, link_up)
                else:
                    adjacency[(name, port)] = (
                        "host", neighbour, 0, link_up)
        for name in sorted(net.hosts):
            host = net.hosts[name]
            attached = [n for n in topo.neighbours(name)
                        if n in net.switches]
            if not attached:
                continue  # pragma: no cover - validated topologies
            sw = attached[0]
            port = net.port_of(sw, name)
            hosts[name] = HostSnap(
                name, host.mac, host.ip, sw, port,
                link_up=net.link(sw, name).up,
            )
        return cls(net.sim.now, switches, hosts, adjacency)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def switch_by_dpid(self, dpid: int) -> Optional[DatapathSnap]:
        for snap in self.switches.values():
            if snap.dpid == dpid:
                return snap
        return None

    def host_by_mac(self, mac: MACAddress) -> Optional[HostSnap]:
        for host in self.hosts.values():
            if host.mac == mac:
                return host
        return None

    def edge_ports(self) -> List[Tuple[str, int, HostSnap]]:
        """Host-facing ingress points, sorted by host name."""
        return [(h.switch, h.port, h)
                for h in (self.hosts[n] for n in sorted(self.hosts))]

    def total_flows(self) -> int:
        return sum(len(t.entries) for s in self.switches.values()
                   for t in s.tables)

    def __repr__(self) -> str:
        return (f"<NetworkSnapshot t={self.time:.3f} "
                f"{len(self.switches)} switches, "
                f"{self.total_flows()} flows>")
