"""Command-line interface: ``python -m repro <command>``.

Five commands, aimed at kicking the tyres without writing code:

* ``demo``      — build a topology, run a platform profile, verify
  all-pairs connectivity, print what the controller learned and what
  the control channel cost.
* ``topology``  — describe a builder's output (nodes, links, degrees).
* ``bench``     — list the experiment suite and how to regenerate it.
* ``telemetry`` — run a traffic demo with the observability plane on
  and dump metrics, a packet trace, and flow records.
* ``faults``    — run a demo under scripted fault injection (channel
  flaps, link flaps, or switch crashes) and report what recovered.
* ``check``     — verify network invariants or fuzz seeded scenarios.
* ``obs``       — sim-time metrics history, health reports, run diffs.
* ``workload``  — list/run declarative workload scenarios, or fan a
  suite across worker processes.
* ``trace``     — the causal trace plane: run a traced scenario
  (single platform, cluster under faults, or the sharded kernel),
  dump the merged TraceArtifact, and render span trees and critical
  paths.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import Table
from repro.core import ZenPlatform
from repro.netem import Topology
from repro.telemetry import Telemetry
from repro.telemetry.export import render_report, to_json

__all__ = ["main", "build_topology"]

_BUILDERS = ("linear", "single", "ring", "star", "tree", "fat_tree",
             "mesh", "waxman", "carrier_wan")

_EXPERIMENTS = [
    ("E1", "Table 1", "flow-setup latency across control designs"),
    ("E2", "Figure 1", "flow-table occupancy vs active flows"),
    ("E3", "Table 2", "controller packet-in capacity (M/D/1)"),
    ("E4", "Figure 2", "failure recovery time by repair mechanism"),
    ("E5", "Table 3", "traffic engineering vs SPF/ECMP on a fat-tree"),
    ("E6", "Figure 3", "VIP load balancing vs backend pool size"),
    ("E7", "Table 4", "ACL rule-set scaling"),
    ("E8", "Figure 4", "intent reconvergence under churn"),
    ("E9", "Table 5", "control-channel overhead by app design"),
    ("E10", "Figure 5", "slice isolation vs a hostile tenant"),
    ("E11", "Figure 6", "failover under control-channel churn"),
    ("E12", "—", "datapath fast-path throughput vs semantic drift"),
    ("E13", "—", "invariant checker: seeded-bug recall and "
     "clean-network precision"),
    ("E14", "—", "obs plane: scrape overhead, health under churn, "
     "run-to-run diff"),
    ("E16", "—", "workload suite: tail FCT and flow-table occupancy "
     "across realistic scenarios"),
    ("E18", "—", "trace plane: tracing overhead and bit-identity of "
     "seeded runs with tracing on vs off"),
    ("A1", "ablation", "reactive setup cost vs controller latency"),
    ("A2", "ablation", "microflow rules under table pressure (LRU)"),
]


def build_topology(name: str, size: int, bandwidth: float) -> Topology:
    """Instantiate a named builder at a given size."""
    if name == "linear":
        return Topology.linear(size, hosts_per_switch=1,
                               bandwidth_bps=bandwidth)
    if name == "single":
        return Topology.single(size, bandwidth_bps=bandwidth)
    if name == "ring":
        return Topology.ring(max(size, 3), hosts_per_switch=1,
                             bandwidth_bps=bandwidth)
    if name == "star":
        return Topology.star(size, hosts_per_leaf=1,
                             bandwidth_bps=bandwidth)
    if name == "tree":
        return Topology.tree(depth=max(size, 1), fanout=2,
                             bandwidth_bps=bandwidth)
    if name == "fat_tree":
        k = size if size % 2 == 0 else size + 1
        return Topology.fat_tree(max(k, 2), bandwidth_bps=bandwidth)
    if name == "mesh":
        return Topology.mesh(size, hosts_per_switch=1,
                             bandwidth_bps=bandwidth)
    if name == "waxman":
        return Topology.waxman(size, hosts_per_switch=1,
                               bandwidth_bps=bandwidth)
    if name == "carrier_wan":
        return Topology.carrier_wan(cores=max(size, 3),
                                    bandwidth_bps=bandwidth)
    raise SystemExit(f"unknown topology {name!r}; pick from {_BUILDERS}")


def _cmd_demo(args) -> int:
    topo = build_topology(args.topology, args.size, args.bandwidth)
    print(f"Built {topo}")
    platform = ZenPlatform(topo, profile=args.profile, seed=args.seed,
                           control_latency=args.control_latency)
    platform.start()
    print(f"Controller: {platform.controller.switch_count} switches, "
          f"{platform.discovery.link_count} directed links discovered")
    delivery = platform.ping_all(count=args.pings, settle=8.0)
    print(f"All-pairs ping delivery: {delivery:.0%}")
    table = Table("Per-switch state", ["switch", "flows", "forwarded",
                                       "punted"])
    for name in sorted(platform.net.switches):
        dp = platform.net.switches[name]
        table.add_row(name, dp.flow_count(), dp.packets_forwarded,
                      dp.packets_to_controller)
    print()
    print(table.render())
    print(f"\nControl channel: {platform.total_control_messages()} "
          f"messages, {platform.total_control_bytes()} bytes")
    print(f"Simulated {platform.sim.now:.1f}s in "
          f"{platform.sim.events_processed} events (seed {args.seed})")
    return 0 if delivery == 1.0 else 1


def _cmd_topology(args) -> int:
    topo = build_topology(args.topology, args.size, args.bandwidth)
    print(topo)
    table = Table("Nodes", ["name", "kind", "identity", "degree"])
    for node in topo.nodes.values():
        identity = (f"dpid={node.dpid}" if node.is_switch
                    else f"ip={node.ip}")
        table.add_row(node.name, node.kind, identity,
                      len(topo.neighbours(node.name)))
    print(table.render())
    switch_links = sum(
        1 for link in topo.links
        if topo.nodes[link.a].is_switch and topo.nodes[link.b].is_switch
    )
    print(f"\n{len(topo.links)} links total "
          f"({switch_links} switch-to-switch)")
    return 0


def _cmd_telemetry(args) -> int:
    if args.sample_every < 1:
        raise SystemExit("--sample-every must be >= 1")
    topo = build_topology(args.topology, args.size, args.bandwidth)
    telemetry = Telemetry(
        trace_sample_every=args.sample_every,
        max_traces=args.max_traces,
    )
    platform = ZenPlatform(
        topo, profile=args.profile, seed=args.seed,
        control_latency=args.control_latency, telemetry=telemetry,
    )
    platform.start()
    platform.ping_all(count=args.pings, settle=8.0)
    # Flush flows still resident so short runs export a full picture.
    for dp in platform.net.switches.values():
        telemetry.flows.flush_datapath(dp)
    if args.format == "json":
        print(to_json(telemetry,
                      include_wall_profile=args.profile_report))
    else:
        print(render_report(telemetry,
                            include_wall_profile=args.profile_report))
    return 0


def _cmd_faults(args) -> int:
    from repro.faults import FaultSchedule

    controllers = getattr(args, "controllers", 1)
    if args.kind in ("controller", "partition") and controllers < 2:
        raise SystemExit(
            f"--kind {args.kind} needs a cluster; pass --controllers >= 2"
        )
    topo = build_topology(args.topology, args.size, args.bandwidth)
    if controllers > 1:
        from repro.cluster import ZenCluster

        platform = ZenCluster(topo, controllers=controllers,
                              profile=args.profile, seed=args.seed,
                              control_latency=args.control_latency)
    else:
        platform = ZenPlatform(topo, profile=args.profile, seed=args.seed,
                               control_latency=args.control_latency)
    platform.start()
    # Warm traffic so the proactive profile has routes to break.
    hosts = list(platform.net.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    for i, host in enumerate(hosts):
        host.send_udp(hosts[(i + 1) % len(hosts)].ip, 7, 7, b"warm")
    platform.run(1.0)
    before = platform.ping_all(count=1, settle=8.0)
    print(f"Pre-fault all-pairs delivery: {before:.0%}")

    net = platform.net
    switches = sorted(net.switches)
    target = args.target or switches[0]
    if target not in net.switches:
        raise SystemExit(f"unknown switch {target!r}; pick from {switches}")
    start = net.sim.now + 0.5
    sched = FaultSchedule(net)
    if controllers > 1:
        sched.attach_cluster(platform.cluster)
    if args.kind == "controller":
        cluster = platform.cluster
        victim = cluster.master_of(net.switches[target].dpid)
        for k in range(args.cycles):
            sched.controller_crash(start + k * args.period, victim,
                                   restart_after=args.down_for)
        what = (f"controller-{victim} (master of {target}), "
                f"state wiped on crash")
    elif args.kind == "partition":
        cluster = platform.cluster
        minority = [cluster.leader]
        majority = [n for n in sorted(cluster.bus.alive)
                    if n not in minority]
        for k in range(args.cycles):
            sched.controller_partition(
                start + k * args.period, [minority, majority],
                heal_after=args.down_for,
            )
        what = f"east-west bus into {minority} | {majority}"
    elif args.kind == "channel":
        sched.channel_flap(start, target, down_for=args.down_for,
                           period=args.period, count=args.cycles)
        what = f"control channel of {target}"
    elif args.kind == "crash":
        for k in range(args.cycles):
            sched.switch_crash(start + k * args.period, target,
                               restart_after=args.down_for)
        what = f"agent of {target} (state wiped)"
    else:  # link
        neighbours = [n for n in net.topology.neighbours(target)
                      if n in net.switches]
        if not neighbours:
            raise SystemExit(f"{target} has no switch neighbour to cut")
        peer = sorted(neighbours)[0]
        sched.link_flap(start, target, peer, down_for=args.down_for,
                        period=args.period, count=args.cycles)
        what = f"link {target}-{peer}"
    print(f"Flapping {what}: {args.cycles} cycle(s), "
          f"{args.down_for:.2f}s down every {args.period:.2f}s")
    platform.run(args.cycles * args.period + 2.0)

    table = Table("Injections", ["t", "fault", "target"])
    for event in sched.log:
        table.add_row(f"{event.time:.3f}", event.kind, event.target)
    print()
    print(table.render())
    controller = platform.controller
    channel = net.channel(target)
    print(f"\nChannel {target}: {channel.disconnects} disconnects, "
          f"{channel.messages_dropped} messages lost in flight")
    print(f"Controller: {controller.resyncs} resyncs "
          f"({controller.resync_reinstalled} flows reinstalled, "
          f"{controller.resync_deleted} deleted, "
          f"{controller.resync_pruned} pruned), "
          f"{controller.resync_failures} resync failures")
    clean = True
    if controllers > 1:
        from repro.check import check_cluster

        cluster = platform.cluster
        if cluster.handover_log:
            hand = Table("Mastership handovers",
                         ["t", "dpid", "from", "to", "term"])
            for rec in cluster.handover_log:
                hand.add_row(f"{rec.time:.3f}", str(rec.dpid),
                             str(rec.old_node), str(rec.new_node),
                             str(rec.term))
            print()
            print(hand.render())
        masters = {d: m[0] for d, m in sorted(cluster.masters().items())
                   if m}
        print(f"\nCluster: {cluster.size} instance(s), "
              f"leader controller-{cluster.leader}, masters {masters}")
        violations = check_cluster(cluster, net)
        clean = not violations
        if violations:
            for v in violations:
                print(f"  VIOLATION {v.invariant}/{v.kind}: {v.message}")
        else:
            print("Cluster invariants: clean "
                  "(single-master, no orphans, ledgers converged)")
    after = platform.ping_all(count=1, settle=8.0)
    print(f"Post-recovery all-pairs delivery: {after:.0%} "
          f"(switches managed: {controller.switch_count})")
    return 0 if after == 1.0 and before == 1.0 and clean else 1


def _cmd_check(args) -> int:
    from repro.check import (
        example_scenarios,
        fuzz,
        generate_scenario,
        replay,
        result_digest,
        run_scenario,
    )

    if args.mode == "verify":
        failures = 0
        for scenario in example_scenarios():
            result = run_scenario(scenario)
            verdict = "clean" if result.ok else "VIOLATIONS"
            print(f"{scenario.name:20s} {verdict:10s} "
                  f"({result.verdicts['probes_run']} probes)")
            if not result.ok:
                failures += 1
                for violation in result.verdicts["violations"][:5]:
                    print(f"  {violation['invariant']}: "
                          f"{violation['message']}")
        print(f"\n{failures} of {len(example_scenarios())} scenarios "
              f"failed invariant checking")
        return 1 if failures else 0

    if args.mode == "replay":
        if not args.path:
            raise SystemExit("replay needs --path <repro or corpus file>")
        import json as _json

        with open(args.path) as fh:
            payload = _json.load(fh)
        if "seeds" in payload:  # a corpus file
            from repro.check import generate_cluster_scenario

            failures = 0
            for seed in payload["seeds"]:
                result = run_scenario(generate_scenario(seed),
                                      monitor=args.monitor)
                verdict = "clean" if result.ok else "VIOLATIONS"
                print(f"seed {seed:6d} {verdict}")
                failures += 0 if result.ok else 1
            for seed in payload.get("cluster_seeds", []):
                result = run_scenario(generate_cluster_scenario(seed),
                                      monitor=args.monitor)
                verdict = "clean" if result.ok else "VIOLATIONS"
                print(f"cluster seed {seed:6d} {verdict} "
                      f"({result.scenario.controllers} instances)")
                failures += 0 if result.ok else 1
            return 1 if failures else 0
        result = replay(args.path, monitor=args.monitor)
        print(f"replayed {result.scenario.name}: "
              f"{'clean' if result.ok else 'VIOLATIONS'} "
              f"(digest {result_digest(result)[:16]})")
        expected = payload.get("digest")
        if expected and expected != result_digest(result):
            print("WARNING: digest drift vs the recorded run")
            return 1
        return 0 if result.ok else 1

    # fuzz
    out_dir = args.out or "."
    failed = []

    def report(result) -> None:
        s = result.scenario
        verdict = "clean" if result.ok else "VIOLATIONS"
        transients = (f", {len(result.monitor_failures)} transient"
                      if result.monitor_failures else "")
        print(f"seed {s.seed:6d} {s.topology}({s.size})/{s.profile} "
              f"{len(s.faults)} fault(s): {verdict}{transients}")
        if not result.ok:
            failed.append(s.seed)

    fuzz(args.seeds, start_seed=args.start, monitor=args.monitor,
         out_dir=out_dir, on_result=report)
    if failed:
        print(f"\n{len(failed)} failing seed(s): {failed}; "
              f"repro files in {out_dir}")
        return 1
    print(f"\nall {args.seeds} seeds checked clean")
    return 0


def _run_obs_scenario(args):
    """Build a platform with the obs plane attached, run the scripted
    scenario, and return the finished ``(platform, plane, schedule)``."""
    from repro.faults import FaultSchedule
    from repro.obs import ObsPlane

    topo = build_topology(args.topology, args.size, args.bandwidth)
    telemetry = Telemetry(profile=False)
    platform = ZenPlatform(topo, profile=args.profile, seed=args.seed,
                           control_latency=args.control_latency,
                           telemetry=telemetry)
    platform.start()
    plane = ObsPlane(platform, interval=args.interval)
    sched = FaultSchedule(platform.net)
    plane.watch_faults(sched)
    if args.monitor:
        from repro.check import InvariantMonitor

        monitor = InvariantMonitor(platform.net)
        monitor.attach(platform.controller)
        monitor.watch(sched)
        plane.watch_monitor(monitor)

    hosts = list(platform.net.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    for i, host in enumerate(hosts):
        host.send_udp(hosts[(i + 1) % len(hosts)].ip, 7, 7, b"warm")

    if args.faults != "none":
        net = platform.net
        switches = sorted(net.switches)
        target = args.target or switches[0]
        if target not in net.switches:
            raise SystemExit(
                f"unknown switch {target!r}; pick from {switches}")
        start = net.sim.now + 0.5
        if args.faults == "channel":
            sched.channel_flap(start, target, down_for=args.down_for,
                               period=args.period, count=args.cycles)
        elif args.faults == "crash":
            for k in range(args.cycles):
                sched.switch_crash(start + k * args.period, target,
                                   restart_after=args.down_for)
        else:  # link
            neighbours = [n for n in net.topology.neighbours(target)
                          if n in net.switches]
            if not neighbours:
                raise SystemExit(f"{target} has no switch neighbour")
            peer = sorted(neighbours)[0]
            sched.link_flap(start, target, peer, down_for=args.down_for,
                            period=args.period, count=args.cycles)
    platform.run(args.duration)
    plane.finish()
    return platform, plane, sched


def _obs_meta(args) -> dict:
    return {
        "topology": f"{args.topology}({args.size})",
        "profile": args.profile,
        "seed": args.seed,
        "faults": args.faults,
        "duration": args.duration,
    }


def _cmd_obs(args) -> int:
    from repro.obs import (
        diff_runs,
        load_artifact,
        render_dashboard,
        render_diff,
        render_health,
        render_openmetrics,
    )

    if args.mode == "diff":
        if not args.base or not args.current:
            raise SystemExit("obs diff needs BASE and CURRENT artifacts")
        base = load_artifact(args.base)
        current = load_artifact(args.current)
        report = diff_runs(base, current, tolerance=args.tolerance)
        if args.format == "json":
            import json as _json

            print(_json.dumps(report.to_dict(), indent=2,
                              sort_keys=True))
        else:
            print(render_diff(report, base_name=args.base,
                              cur_name=args.current))
        return 0 if report.ok else 1

    if args.mode == "dashboard" and args.path:
        artifact = load_artifact(args.path)
        select = args.series.split(",") if args.series else None
        print(render_dashboard(artifact, width=args.width,
                               select=select,
                               max_series=args.max_series))
        if artifact.health is not None:
            print()
            print(render_health(artifact.health))
        return 0

    platform, plane, sched = _run_obs_scenario(args)
    artifact = plane.artifact(**_obs_meta(args))
    if args.mode == "dashboard":
        select = args.series.split(",") if args.series else None
        print(render_dashboard(artifact, width=args.width,
                               select=select,
                               max_series=args.max_series))
        print()
        print(render_health(plane.report))
    elif args.format == "openmetrics":
        print(render_openmetrics(platform.telemetry.metrics), end="")
    elif args.format == "json":
        import json as _json

        print(_json.dumps(artifact.to_dict(), indent=1, sort_keys=True))
    else:
        print(f"Scraped {plane.scraper.scrapes} samples of "
              f"{len(plane.scraper.series)} series over "
              f"{platform.sim.now:.1f}s sim "
              f"(interval {args.interval}s); "
              f"{len(sched.log)} fault(s) injected, "
              f"{len(plane.scraper.annotations)} annotations")
        print()
        print(render_health(plane.report))
    if args.out:
        artifact.save(args.out)
        print(f"\nrun artifact written to {args.out}")
    return 0


def _fmt_fct(value) -> str:
    return f"{value * 1e3:.1f}ms" if value is not None else "-"


def _run_profiled(fn, top: int, json_path: str):
    """Run ``fn`` under cProfile; print top-N cumulative hotspots to
    stderr and optionally dump the full stats table as JSON."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stderr)
    print(f"--- cProfile: top {top} by cumulative time ---",
          file=sys.stderr)
    stats.sort_stats("cumulative").print_stats(top)
    if json_path:
        rows = []
        for (filename, line, func), (cc, nc, tt, ct, _callers) \
                in stats.stats.items():
            rows.append({
                "file": filename, "line": line, "function": func,
                "ncalls": nc, "primitive_calls": cc,
                "tottime": tt, "cumtime": ct,
            })
        rows.sort(key=lambda r: r["cumtime"], reverse=True)
        with open(json_path, "w") as fh:
            json.dump({"sort": "cumtime", "entries": rows}, fh,
                      indent=1)
            fh.write("\n")
        print(f"profile JSON written to {json_path}", file=sys.stderr)
    return result


def _cmd_workload(args) -> int:
    from repro.workload import (
        library,
        load_spec,
        run_suite,
        run_workload,
        suite_digest,
    )

    specs = library()
    if args.mode == "list":
        table = Table("Workload scenario library",
                      ["name", "topology", "traffic", "faults", "seed"])
        for name in sorted(specs):
            spec = specs[name]
            kinds = ",".join(e.get("kind", "flows")
                             for e in spec.traffic)
            table.add_row(name, spec.topology.get("family", "?"),
                          kinds, len(spec.faults), spec.seed)
        print(table.render())
        print("\nRun one:      python -m repro workload run --name "
              "<name>")
        print("Run them all: python -m repro workload suite --jobs 2")
        return 0

    if args.mode == "run":
        if args.spec:
            spec = load_spec(args.spec)
        elif args.name:
            if args.name not in specs:
                raise SystemExit(f"unknown scenario {args.name!r}; "
                                 f"pick from {sorted(specs)}")
            spec = specs[args.name]
        else:
            raise SystemExit("workload run needs --name or --spec")
        if args.seed is not None:
            spec.seed = args.seed
        profiling = bool(args.profile or args.profile_json)
        # cProfile sees only this process, so profiled shard runs use
        # the in-process coordinator (bit-identical by construction).
        shard_processes = (False if (args.shard_sequential or profiling)
                           else None)

        def execute():
            return run_workload(spec, out=args.out or None,
                                shards=args.shards,
                                shard_processes=shard_processes)

        if profiling:
            result = _run_profiled(execute, args.profile_top,
                                   args.profile_json)
        else:
            result = execute()
        s = result.summary
        if args.shards is not None:
            mode = "mp" if s["processes"] else "seq"
            print(f"{spec.name} [{s['shards']} shard(s), {mode}]: "
                  f"{s['flows_completed']}/{s['flows_started']} flows "
                  f"completed, fct p50/p99 "
                  f"{_fmt_fct(s['fct_p50'])}/{_fmt_fct(s['fct_p99'])}, "
                  f"{s['events']} events in {s['rounds']} round(s), "
                  f"{s['wall_s']:.2f}s wall")
        else:
            print(f"{spec.name}: "
                  f"{s['flows_completed']}/{s['flows_started']} "
                  f"flows completed, fct p50/p99 "
                  f"{_fmt_fct(s['fct_p50'])}/{_fmt_fct(s['fct_p99'])}, "
                  f"flow-table peak {s['flow_table_peak']}, "
                  f"{s['faults_fired']} fault(s), "
                  f"health {'ok' if s['health_ok'] else 'ALERTS'}")
        print(f"digest {result.digest[:16]}")
        if args.out:
            print(f"run artifact written to {args.out}")
        return 0

    # suite
    if args.names:
        missing = [n for n in args.names.split(",") if n not in specs]
        if missing:
            raise SystemExit(f"unknown scenario(s) {missing}; "
                             f"pick from {sorted(specs)}")
        selection = [specs[n] for n in args.names.split(",")]
    else:
        selection = [specs[n] for n in sorted(specs)]
    results = run_suite(selection, jobs=args.jobs,
                        out_dir=args.out_dir or None,
                        shards=args.shards)
    table = Table(f"Workload suite ({args.jobs} job(s))",
                  ["name", "flows", "fct p99", "table peak", "health",
                   "digest"])
    for entry in results:
        s = entry["summary"]
        table.add_row(
            entry["name"],
            f"{s['flows_completed']}/{s['flows_started']}",
            _fmt_fct(s["fct_p99"]),
            s.get("flow_table_peak", "-"),
            "ok" if s.get("health_ok", True) else "ALERTS",
            entry["digest"][:16],
        )
    print(table.render())
    print(f"\nsuite digest {suite_digest(results)[:16]} "
          f"(independent of --jobs)")
    if args.out_dir:
        print(f"run artifacts in {args.out_dir}/ "
              f"(diff any pair: python -m repro obs diff A B)")
    return 0


def _run_trace_sharded(args):
    """Traced run on the sharded kernel: one workload scenario, per-
    shard tracers merged into a single global artifact."""
    from repro.sim.shard import run_sharded
    from repro.workload import WorkloadSpec, library

    lib = library()
    if args.scenario not in lib:
        raise SystemExit(f"unknown scenario {args.scenario!r}; "
                         f"pick from {sorted(lib)}")
    spec = WorkloadSpec.from_dict(lib[args.scenario].to_dict())
    if args.duration is not None:
        spec.duration = args.duration
    if args.seed is not None:
        spec.seed = args.seed
    result = run_sharded(spec, shards=args.shards,
                         processes=not args.shard_sequential,
                         trace=True)
    artifact = result.trace_artifact
    crossing = sum(1 for t in artifact.traces
                   if len(artifact.shards_of(t)) > 1)
    lines = [
        f"Sharded run {spec.name!r}: shards={result.effective_shards} "
        f"digest={result.digest[:12]}",
        f"{len(artifact.traces)} traces, {artifact.span_count} spans; "
        f"{crossing} trace(s) cross a shard boundary",
    ]
    return artifact, lines


def _run_trace_platform(args):
    """Traced platform/cluster run under a scripted fault, with the
    flight recorder armed on invariant violations and SLO alerts."""
    from repro.check import InvariantMonitor
    from repro.faults import FaultSchedule
    from repro.obs import ObsPlane
    from repro.obs.slo import ConvergenceSLO
    from repro.trace import FlightRecorder, TraceArtifact

    controllers = args.controllers
    if args.fault == "controller" and controllers < 2:
        raise SystemExit("--fault controller needs a cluster; "
                         "pass --controllers >= 2")
    seed = args.seed if args.seed is not None else 0
    telemetry = Telemetry(profile=False, max_traces=args.max_traces)
    topo = build_topology(args.topology, args.size, args.bandwidth)
    if controllers > 1:
        from repro.cluster import ZenCluster

        platform = ZenCluster(topo, controllers=controllers,
                              profile=args.profile, seed=seed,
                              control_latency=args.control_latency,
                              telemetry=telemetry)
    else:
        platform = ZenPlatform(topo, profile=args.profile, seed=seed,
                               control_latency=args.control_latency,
                               telemetry=telemetry)
    recorder = FlightRecorder(telemetry, capacity=args.ring,
                              max_events=args.ring)
    platform.start()
    net = platform.net

    sched = FaultSchedule(net)
    if controllers > 1:
        sched.attach_cluster(platform.cluster)
    recorder.watch_faults(sched)
    monitor = InvariantMonitor(net)
    monitor.attach(platform.controller)
    monitor.watch(sched)
    recorder.watch_monitor(monitor)
    plane = ObsPlane(platform, interval=0.05, slos=[
        ConvergenceSLO(
            "convergence", args.slo,
            open_kinds=("controller_crash", "channel_down",
                        "switch_crash", "link_down"),
            close_kinds=("resync_done",)),
    ])
    plane.watch_faults(sched)
    recorder.watch_alerts(plane.health)

    hosts = list(net.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    for i, host in enumerate(hosts):
        host.send_udp(hosts[(i + 1) % len(hosts)].ip, 7, 7, b"warm")
    platform.run(1.0)

    switches = sorted(net.switches)
    target = switches[0]
    start = net.sim.now + 0.5
    if args.fault == "controller":
        victim = platform.cluster.master_of(net.switches[target].dpid)
        sched.controller_crash(start, victim,
                               restart_after=args.down_for)
        what = f"controller-{victim} (master of {target})"
    elif args.fault == "channel":
        sched.channel_flap(start, target, down_for=args.down_for,
                           period=args.down_for * 2, count=1)
        what = f"control channel of {target}"
    elif args.fault == "link":
        neighbours = [n for n in net.topology.neighbours(target)
                      if n in net.switches]
        if not neighbours:
            raise SystemExit(f"{target} has no switch neighbour to cut")
        peer = sorted(neighbours)[0]
        sched.link_flap(start, target, peer, down_for=args.down_for,
                        period=args.down_for * 2, count=1)
        what = f"link {target}-{peer}"
    else:
        what = "none"
    duration = args.duration if args.duration is not None else 3.0
    platform.run(duration)
    plane.finish()

    lines = [
        f"{'Cluster' if controllers > 1 else 'Platform'} run: "
        f"{args.topology} size={args.size} profile={args.profile} "
        f"fault={what}",
        f"{len(sched.log)} injection(s), "
        f"{len(plane.health.alerts)} SLO alert(s), "
        f"{recorder!r}",
    ]
    meta = {
        "kind": "platform-run" if controllers == 1 else "cluster-run",
        "topology": args.topology, "size": args.size,
        "controllers": controllers, "seed": seed, "fault": args.fault,
    }
    if args.flight:
        if recorder.dumps:
            artifact = recorder.dumps[0]
            lines.append("flight-recorder dump captured at trigger "
                         f"{artifact.triggers[0]['kind']!r} "
                         f"({artifact.triggers[0]['detail']})")
        else:
            artifact = recorder.trigger("end-of-run",
                                        "no trigger fired; manual "
                                        "capture", net.sim.now)
            lines.append("no trigger fired; captured the rings at "
                         "end of run")
        artifact.meta.update(meta)
    else:
        artifact = TraceArtifact.from_tracer(telemetry.tracer,
                                             meta=meta)
    return artifact, lines


def _report_artifact(artifact, args, tree: bool) -> int:
    from repro.trace import (
        critical_path,
        render_critical_path,
        render_tree,
    )

    print(f"{artifact!r}")
    for trigger in artifact.triggers:
        print(f"  trigger: {trigger['kind']} at t={trigger['time']:.3f}"
              f" ({trigger['detail']})")
    candidates = artifact.traces
    if args.select == "fault":
        candidates = [t for t in artifact.traces
                      if t["label"].startswith("fault:")]
        if not candidates:
            print("no fault-rooted trace in this artifact")
            return 1
    if args.trace_id is not None:
        trace = artifact.trace(args.trace_id)
        if trace is None:
            print(f"no trace #{args.trace_id} in this artifact")
            return 1
    else:
        from repro.trace.artifact import TraceArtifact as _TA

        trace = _TA(candidates).longest()
    if trace is None:
        print("artifact holds no traces")
        return 1
    shards = artifact.shards_of(trace)
    if len(shards) > 1:
        print(f"trace #{trace['id']} crosses shards {shards}")
    print()
    if tree:
        print(render_tree(trace, attrs=args.attrs))
        print()
    print(render_critical_path(critical_path(trace)))
    return 0


def _cmd_trace(args) -> int:
    from repro.trace import TraceArtifact

    if args.mode == "critical-path":
        if not args.artifact:
            raise SystemExit("trace critical-path needs a saved "
                             "TraceArtifact path")
        artifact = TraceArtifact.load(args.artifact)
        return _report_artifact(artifact, args, tree=args.tree)

    if args.shards:
        artifact, lines = _run_trace_sharded(args)
    else:
        artifact, lines = _run_trace_platform(args)
    for line in lines:
        print(line)
    if args.out:
        artifact.save(args.out)
        print(f"TraceArtifact written to {args.out}")
    if args.mode == "report":
        print()
        return _report_artifact(artifact, args, tree=True)
    return 0


def _cmd_bench(args) -> int:
    table = Table("Experiment suite (see DESIGN.md / EXPERIMENTS.md)",
                  ["id", "artifact", "question"])
    for exp_id, artifact, question in _EXPERIMENTS:
        table.add_row(exp_id, artifact, question)
    print(table.render())
    print("\nRegenerate everything:  pytest benchmarks/ "
          "--benchmark-only")
    print("Per-artifact output lands in benchmarks/results/")
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ZenSDN: an SDN platform on a deterministic "
                    "simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a platform demo")
    demo.add_argument("--topology", default="ring", choices=_BUILDERS)
    demo.add_argument("--size", type=int, default=4,
                      help="builder size parameter")
    demo.add_argument("--profile", default="proactive",
                      choices=("reactive", "proactive"))
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--pings", type=int, default=1)
    demo.add_argument("--bandwidth", type=float, default=1e9)
    demo.add_argument("--control-latency", type=float, default=0.001)
    demo.set_defaults(fn=_cmd_demo)

    topo = sub.add_parser("topology", help="describe a topology builder")
    topo.add_argument("topology", choices=_BUILDERS)
    topo.add_argument("--size", type=int, default=4)
    topo.add_argument("--bandwidth", type=float, default=1e9)
    topo.set_defaults(fn=_cmd_topology)

    bench = sub.add_parser("bench", help="list the experiment suite")
    bench.set_defaults(fn=_cmd_bench)

    faults = sub.add_parser(
        "faults",
        help="run a demo under scripted fault injection",
    )
    faults.add_argument("--topology", default="ring", choices=_BUILDERS)
    faults.add_argument("--size", type=int, default=4)
    faults.add_argument("--profile", default="proactive",
                        choices=("reactive", "proactive"))
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--controllers", type=int, default=1,
                        help="controller instances (cluster mode when "
                             ">1; enables controller/partition kinds)")
    faults.add_argument("--bandwidth", type=float, default=1e9)
    faults.add_argument("--control-latency", type=float, default=0.001)
    faults.add_argument("--kind", default="channel",
                        choices=("channel", "link", "crash",
                                 "controller", "partition"),
                        help="what to flap: the control channel, a "
                             "dataplane link, the whole agent, a "
                             "controller instance, or the east-west "
                             "bus (last two need --controllers >= 2)")
    faults.add_argument("--target", default="",
                        help="switch to torment (default: first switch)")
    faults.add_argument("--cycles", type=int, default=2,
                        help="down/up cycles to inject")
    faults.add_argument("--period", type=float, default=2.0,
                        help="seconds between cycle starts")
    faults.add_argument("--down-for", type=float, default=0.5,
                        help="seconds down per cycle")
    faults.set_defaults(fn=_cmd_faults)

    tel = sub.add_parser(
        "telemetry",
        help="run a demo with the observability plane on and dump it",
    )
    tel.add_argument("--topology", default="linear", choices=_BUILDERS)
    tel.add_argument("--size", type=int, default=3)
    tel.add_argument("--profile", default="reactive",
                     choices=("reactive", "proactive"))
    tel.add_argument("--seed", type=int, default=0)
    tel.add_argument("--pings", type=int, default=1)
    tel.add_argument("--bandwidth", type=float, default=1e9)
    tel.add_argument("--control-latency", type=float, default=0.001)
    tel.add_argument("--format", default="report",
                     choices=("report", "json"))
    tel.add_argument("--sample-every", type=int, default=1,
                     help="trace every Nth packet (1 = all)")
    tel.add_argument("--max-traces", type=int, default=256)
    tel.add_argument("--profile-report", action="store_true",
                     help="include the wall-clock app profile "
                          "(non-deterministic across runs)")
    tel.set_defaults(fn=_cmd_telemetry)

    chk = sub.add_parser(
        "check",
        help="verify network invariants / fuzz seeded scenarios",
    )
    chk.add_argument("mode", choices=("verify", "fuzz", "replay"),
                     help="verify: run the canned example scenarios; "
                          "fuzz: generate and check seeded scenarios; "
                          "replay: re-run a repro or corpus file")
    chk.add_argument("--seeds", type=int, default=10,
                     help="number of fuzz seeds to run")
    chk.add_argument("--start", type=int, default=0,
                     help="first fuzz seed")
    chk.add_argument("--monitor", action="store_true",
                     help="also run the online invariant monitor")
    chk.add_argument("--out", default="",
                     help="directory for failure repro files")
    chk.add_argument("--path", default="",
                     help="repro or corpus file for replay mode")
    chk.set_defaults(fn=_cmd_check)

    obs = sub.add_parser(
        "obs",
        help="sim-time metrics history, health/SLO report, run diffing",
    )
    obs.add_argument("mode", choices=("report", "dashboard", "diff"),
                     help="report: run a scenario and print its health "
                          "report (or OpenMetrics/JSON); dashboard: "
                          "render sim-time sparklines with fault "
                          "windows; diff: A/B-compare two run "
                          "artifacts and flag regressions")
    obs.add_argument("base", nargs="?", default="",
                     help="baseline artifact (diff mode)")
    obs.add_argument("current", nargs="?", default="",
                     help="current artifact (diff mode)")
    obs.add_argument("--topology", default="ring", choices=_BUILDERS)
    obs.add_argument("--size", type=int, default=4)
    obs.add_argument("--profile", default="proactive",
                     choices=("reactive", "proactive"))
    obs.add_argument("--seed", type=int, default=0)
    obs.add_argument("--bandwidth", type=float, default=1e9)
    obs.add_argument("--control-latency", type=float, default=0.001)
    obs.add_argument("--interval", type=float, default=0.1,
                     help="scrape interval in simulated seconds")
    obs.add_argument("--duration", type=float, default=6.0,
                     help="simulated seconds to run after warmup")
    obs.add_argument("--faults", default="none",
                     choices=("none", "link", "channel", "crash"),
                     help="inject a scripted fault pattern")
    obs.add_argument("--target", default="",
                     help="switch to torment (default: first switch)")
    obs.add_argument("--cycles", type=int, default=2)
    obs.add_argument("--period", type=float, default=2.0)
    obs.add_argument("--down-for", type=float, default=0.5)
    obs.add_argument("--monitor", action="store_true",
                     help="run the invariant monitor and annotate "
                          "violations on the timeline")
    obs.add_argument("--out", default="",
                     help="write the run artifact (JSON) here")
    obs.add_argument("--path", default="",
                     help="render an existing artifact instead of "
                          "running a scenario (dashboard mode)")
    obs.add_argument("--format", default="health",
                     choices=("health", "openmetrics", "json"),
                     help="report output format (diff: table or json)")
    obs.add_argument("--width", type=int, default=60,
                     help="dashboard sparkline width in columns")
    obs.add_argument("--series", default="",
                     help="comma-separated series name prefixes to "
                          "show on the dashboard")
    obs.add_argument("--max-series", type=int, default=24)
    obs.add_argument("--tolerance", type=float, default=0.10,
                     help="relative-delta floor for diff significance")
    obs.set_defaults(fn=_cmd_obs)

    wl = sub.add_parser(
        "workload",
        help="declarative workload scenarios: list the library, run "
             "one, or fan a suite across worker processes",
    )
    wl.add_argument("mode", choices=("list", "run", "suite"),
                    help="list: show the scenario library; run: "
                         "execute one scenario; suite: execute many "
                         "and print per-run digests")
    wl.add_argument("--name", default="",
                    help="library scenario to run (run mode)")
    wl.add_argument("--spec", default="",
                    help="path to a JSON/YAML spec file (run mode)")
    wl.add_argument("--names", default="",
                    help="comma-separated library names (suite mode; "
                         "default: the whole library)")
    wl.add_argument("--seed", type=int, default=None,
                    help="override the spec seed (run mode)")
    wl.add_argument("--jobs", type=int, default=1,
                    help="worker processes for suite mode")
    wl.add_argument("--out", default="",
                    help="write the run artifact here (run mode)")
    wl.add_argument("--out-dir", default="",
                    help="directory for suite run artifacts")
    wl.add_argument("--shards", type=int, default=None,
                    help="run on the sharded kernel with N spatial "
                         "shards (1 = the differential oracle; merged "
                         "observables are bit-identical at any N)")
    wl.add_argument("--shard-sequential", action="store_true",
                    help="force the in-process shard coordinator "
                         "instead of one worker process per shard")
    wl.add_argument("--profile", action="store_true",
                    help="run under cProfile and print the top "
                         "cumulative hotspots to stderr (run mode)")
    wl.add_argument("--profile-top", type=int, default=25,
                    help="how many hotspots --profile prints")
    wl.add_argument("--profile-json", default="",
                    help="also dump the full cProfile stats table as "
                         "JSON to this path (implies --profile)")
    wl.set_defaults(fn=_cmd_workload)

    tr = sub.add_parser(
        "trace",
        help="causal trace plane: run a traced scenario and render "
             "span trees, critical paths, and flight-recorder dumps",
    )
    tr.add_argument("mode", choices=("report", "dump", "critical-path"),
                    help="report: run + render the selected trace; "
                         "dump: run + write the TraceArtifact; "
                         "critical-path: analyse a saved artifact")
    tr.add_argument("artifact", nargs="?", default="",
                    help="saved TraceArtifact (critical-path mode)")
    tr.add_argument("--topology", default="ring", choices=_BUILDERS)
    tr.add_argument("--size", type=int, default=4)
    tr.add_argument("--profile", default="reactive",
                    choices=("reactive", "proactive"))
    tr.add_argument("--seed", type=int, default=None)
    tr.add_argument("--bandwidth", type=float, default=1e9)
    tr.add_argument("--control-latency", type=float, default=0.001)
    tr.add_argument("--controllers", type=int, default=1,
                    help="cluster size (>= 2 enables --fault controller)")
    tr.add_argument("--fault", default="none",
                    choices=("none", "controller", "channel", "link"),
                    help="scripted fault injected mid-run")
    tr.add_argument("--down-for", type=float, default=0.3)
    tr.add_argument("--duration", type=float, default=None,
                    help="post-warmup run time (platform mode) or "
                         "spec-duration override (sharded mode)")
    tr.add_argument("--shards", type=int, default=None,
                    help="trace a workload scenario on the sharded "
                         "kernel with N shards instead of a platform")
    tr.add_argument("--scenario", default="wan-diurnal",
                    help="workload library scenario (sharded mode)")
    tr.add_argument("--shard-sequential", action="store_true",
                    help="in-process shard coordinator")
    tr.add_argument("--max-traces", type=int, default=256,
                    help="tracer retention ring size")
    tr.add_argument("--ring", type=int, default=256,
                    help="flight-recorder spans kept per component")
    tr.add_argument("--slo", type=float, default=0.05,
                    help="convergence SLO threshold (s) armed on "
                         "platform runs; breaching it triggers a "
                         "flight-recorder dump")
    tr.add_argument("--flight", action="store_true",
                    help="save the flight-recorder dump (triggered, or "
                         "end-of-run capture) instead of the full "
                         "tracer snapshot")
    tr.add_argument("--select", default="longest",
                    choices=("longest", "fault"),
                    help="which trace to render: the longest overall, "
                         "or the longest fault-rooted one")
    tr.add_argument("--trace-id", type=int, default=None,
                    help="render this exact trace id instead")
    tr.add_argument("--tree", action="store_true",
                    help="also render the span tree (critical-path "
                         "mode; report mode always does)")
    tr.add_argument("--attrs", action="store_true",
                    help="include span attributes in the tree")
    tr.add_argument("--out", default="",
                    help="write the TraceArtifact here")
    tr.set_defaults(fn=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `python -m repro bench | head`
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
