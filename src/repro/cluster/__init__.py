"""repro.cluster — the distributed controller control plane.

N controller instances share one fabric: rendezvous-hashed mastership
(:mod:`~repro.cluster.election`), an in-kernel east-west replication
bus with quorum-based failure handling (:mod:`~repro.cluster.bus`),
cluster-aware controller instances with term-fenced MASTER/SLAVE roles
and handover (:mod:`~repro.cluster.node`), and the one-call platform
assembly (:mod:`~repro.cluster.platform`).
"""

from repro.cluster.bus import EastWestBus
from repro.cluster.election import (
    assign_masters,
    elect_leader,
    rendezvous_score,
)
from repro.cluster.node import (
    ClusterController,
    ControllerCluster,
    HandoverRecord,
)
from repro.cluster.platform import ZenCluster, dataplane_digest

__all__ = [
    "EastWestBus",
    "assign_masters",
    "elect_leader",
    "rendezvous_score",
    "ClusterController",
    "ControllerCluster",
    "HandoverRecord",
    "ZenCluster",
    "dataplane_digest",
]
