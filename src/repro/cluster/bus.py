"""The simulated east-west channel between controller instances.

Controller instances replicate state (intent ledger, topology view,
host locations, mastership terms) over this bus.  It is deliberately an
*in-kernel* abstraction rather than a modelled TCP mesh: east-west
traffic in ONOS-style clusters rides a datacenter fabric whose latency
is orders of magnitude below the probe intervals and fault timescales
this platform measures, so replication is delivered synchronously and
only *failure detection* takes simulated time (``detect_delay``).

Failure-model doctrine (documented because the quorum math depends on
it):

* **Crashes are detected as crashes.**  A crashed member is removed
  from every survivor's quorum denominator after ``detect_delay`` —
  the perfect-failure-detector assumption, as if an out-of-band
  management network reported the process death.
* **Partitions are detected as unreachability.**  A partitioned peer
  stays in the denominator (it is alive and may be mastering switches
  on the far side), so a minority side computes *no quorum* and
  self-demotes instead of split-braining.
* Ties on an exact half go to the side holding the lowest alive
  member id, so even-sized clusters still converge deterministically.

Everything here is deterministic: no RNG, membership notifications are
plain kernel events, and peers are always iterated in sorted-id order.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional

__all__ = ["EastWestBus"]


class EastWestBus:
    """Synchronous replication + failure detection between nodes.

    Registered nodes must expose ``node_id``, ``on_ew_message(src,
    kind, payload)`` and ``on_membership_change()``.
    """

    def __init__(self, sim, detect_delay: float = 0.05) -> None:
        self.sim = sim
        #: Seconds between a membership event and survivors noticing.
        self.detect_delay = detect_delay
        self.nodes: Dict[int, object] = {}
        #: Members whose process is up (crash removes, restart re-adds).
        self.alive: set = set()
        #: ``None`` = full mesh; else disjoint member groups.
        self._groups: Optional[List[FrozenSet[int]]] = None
        #: Bumped on every membership event; fences stale notifications.
        self.epoch = 0
        self.messages_sent = 0
        self.broadcasts_sent = 0
        #: Called with the epoch when a membership notification fires —
        #: the failure-*detection* instant, ``detect_delay`` after the
        #: membership event itself.  The trace plane hangs the handover
        #: chain's ``bus.death_detect`` span here; hooks must be pure
        #: (no events, no RNG).
        self.on_notify: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, node) -> None:
        self.nodes[node.node_id] = node
        self.alive.add(node.node_id)

    def crash(self, node_id: int) -> None:
        """Member process dies; survivors notice after ``detect_delay``."""
        if node_id not in self.alive:
            return
        self.alive.discard(node_id)
        self._bump()

    def restart(self, node_id: int) -> None:
        """Member process comes back (empty); peers re-admit it."""
        if node_id in self.alive or node_id not in self.nodes:
            return
        self.alive.add(node_id)
        self._bump()

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Split the east-west mesh into isolated member groups."""
        self._groups = [frozenset(g) for g in groups]
        self._bump()

    def heal(self) -> None:
        """Restore the full east-west mesh."""
        self._groups = None
        self._bump()

    @property
    def partitioned(self) -> bool:
        return self._groups is not None

    def _bump(self) -> None:
        self.epoch += 1
        self.sim.schedule(self.detect_delay, self._notify, self.epoch)

    def _notify(self, epoch: int) -> None:
        if epoch != self.epoch:
            return  # superseded by a later membership event
        if self.on_notify is not None:
            self.on_notify(epoch)
        alive = sorted(self.alive)
        # Two phases: every node first anti-entropy-syncs with newly
        # visible peers, then every node recomputes mastership — so a
        # rejoining node adopts with merged terms, never stale ones.
        for node_id in alive:
            sync = getattr(self.nodes[node_id], "on_membership_sync", None)
            if sync is not None:
                sync()
        for node_id in alive:
            self.nodes[node_id].on_membership_change()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def component_of(self, node_id: int) -> FrozenSet[int]:
        if self._groups is None:
            return frozenset(self.nodes)
        for group in self._groups:
            if node_id in group:
                return group
        return frozenset((node_id,))

    def reachable(self, src: int, dst: int) -> bool:
        return (src in self.alive and dst in self.alive
                and dst in self.component_of(src))

    def view(self, node_id: int) -> FrozenSet[int]:
        """Members ``node_id`` sees as alive and reachable (incl. self)."""
        if node_id not in self.alive:
            return frozenset()
        return frozenset(
            m for m in self.component_of(node_id) if m in self.alive
        )

    def has_quorum(self, node_id: int) -> bool:
        """Whether ``node_id``'s side may claim mastership.

        Denominator = all alive members (crashed peers drop out by the
        perfect-failure-detector doctrine; partitioned peers do not).
        An exact half only counts when it holds the lowest alive id.
        """
        visible = self.view(node_id)
        if not visible:
            return False
        total = len(self.alive)
        if 2 * len(visible) > total:
            return True
        return (2 * len(visible) == total
                and min(visible) == min(self.alive))

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, kind: str, payload) -> bool:
        """Deliver one message now; False when ``dst`` is unreachable."""
        if not self.reachable(src, dst):
            return False
        self.messages_sent += 1
        self.nodes[dst].on_ew_message(src, kind, payload)
        return True

    def broadcast(self, src: int, kind: str, payload) -> int:
        """Deliver to every reachable peer in id order; returns count."""
        if src not in self.alive:
            return 0
        delivered = 0
        for dst in sorted(self.component_of(src)):
            if dst != src and dst in self.alive:
                self.messages_sent += 1
                self.nodes[dst].on_ew_message(src, kind, payload)
                delivered += 1
        if delivered:
            self.broadcasts_sent += 1
        return delivered

    def __repr__(self) -> str:
        state = "partitioned" if self.partitioned else "meshed"
        return (f"<EastWestBus {len(self.alive)}/{len(self.nodes)} "
                f"alive, {state}, epoch {self.epoch}>")
