"""Deterministic leader election and per-switch mastership assignment.

Mastership uses rendezvous (highest-random-weight) hashing: every
cluster member scores every dpid with a keyed hash, and the highest
score wins MASTER.  The scheme gives exactly the properties the cluster
needs, with no coordination protocol at all:

* **Pure.**  The assignment is a function of (member set, seed) — any
  two nodes that agree on the member set agree on every master without
  exchanging a single message.  The property tests lean on this.
* **Stable under churn.**  When a member leaves, only the switches it
  owned move (each to its runner-up); when a member joins, it steals
  only the switches it now scores highest on.  No full reshuffle.
* **Balanced.**  Scores are uniform hashes, so mastership spreads
  evenly across members for free.

The "leader" is just the member that wins the rendezvous draw for a
sentinel key.  It carries no special power — every node computes the
same assignment independently — but gives tests, logs, and operators a
distinguished coordinator to point at, mirroring ONOS's leadership
service sitting next to its mastership service.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional

__all__ = ["rendezvous_score", "assign_masters", "elect_leader"]

#: Sentinel hashed instead of a dpid to pick the cluster leader.
_LEADER_KEY = "__cluster_leader__"


def rendezvous_score(seed: int, member: int, key) -> int:
    """The HRW weight of ``member`` for ``key`` under ``seed``.

    A pure function of its arguments (sha256 over a canonical string),
    so every node computes identical scores with no shared state.
    """
    digest = hashlib.sha256(
        f"{seed}\x1f{member}\x1f{key}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


def assign_masters(members: Iterable[int], dpids: Iterable[int],
                   seed: int = 0) -> Dict[int, int]:
    """Map every dpid to its MASTER member via rendezvous hashing.

    Returns ``{}`` when ``members`` is empty (a partitioned minority
    masters nothing).  The member id itself breaks score ties, so the
    result is total and deterministic.
    """
    pool = sorted(set(members))
    if not pool:
        return {}
    return {
        dpid: max(pool,
                  key=lambda m: (rendezvous_score(seed, m, dpid), m))
        for dpid in dpids
    }


def elect_leader(members: Iterable[int],
                 seed: int = 0) -> Optional[int]:
    """The distinguished coordinator for this member set, or ``None``."""
    pool = sorted(set(members))
    if not pool:
        return None
    return max(pool,
               key=lambda m: (rendezvous_score(seed, m, _LEADER_KEY), m))
