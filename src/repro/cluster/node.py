"""Cluster controller instances and the mastership coordinator.

A :class:`ClusterController` is a :class:`~repro.controller.core.Controller`
that shares the fabric with peers.  Every switch connects a channel to
every instance, but each instance *adopts* (masters) only the switches
the rendezvous election assigns to it — the rest it *watches* as a
SLAVE, holding a connected handle but publishing no events to its apps.
Adoption sends ``RoleRequest(PRIMARY, term)``; watching sends
``RoleRequest(SECONDARY, term)``; the per-dpid **term** rides the ZOF
``generation_id`` so the switch-side arbiter fences stale masters.

State is replicated eagerly over the :class:`~repro.cluster.bus.EastWestBus`:

* the intent ledger (records, forgets, and flow-removed prunes),
* the topology view (every local LLDP observation, every removal),
* host locations (discoveries and moves),
* mastership terms (broadcast on every adoption).

so any surviving node can run the PR-2 resync handshake against an
inherited switch using its replica as the source of truth.

:class:`ControllerCluster` owns the shared pieces — the bus, the
election seed, the global dpid list, the handover log — and drives
mastership recomputation when the bus reports membership churn.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set

from repro.cluster.bus import EastWestBus
from repro.cluster.election import assign_masters, elect_leader
from repro.controller.core import Controller, SwitchHandle
from repro.controller.discovery import TopologyDiscovery
from repro.controller.events import SwitchEnter, SwitchLeave
from repro.controller.hosttracker import HostTracker
from repro.southbound.messages import (
    ControllerRole,
    FeaturesReply,
    RoleRequest,
)

__all__ = ["ClusterController", "ControllerCluster", "HandoverRecord"]


class HandoverRecord:
    """One mastership transfer: which switch moved, from whom, to whom."""

    __slots__ = ("time", "dpid", "old_node", "new_node", "term")

    def __init__(self, time: float, dpid: int, old_node: Optional[int],
                 new_node: int, term: int) -> None:
        self.time = time
        self.dpid = dpid
        self.old_node = old_node
        self.new_node = new_node
        self.term = term

    def __repr__(self) -> str:
        return (f"<Handover t={self.time:.3f} dpid={self.dpid} "
                f"{self.old_node}->{self.new_node} term={self.term}>")


class ClusterController(Controller):
    """One controller instance in a cluster.

    ``self.switches`` holds only *mastered* handles — apps, discovery
    probing, and the programming surface therefore see exactly the
    slice of the fabric this node owns.  ``self.handles`` holds every
    connected switch regardless of role.
    """

    def __init__(self, sim, node_id: int, cluster: "ControllerCluster",
                 **kwargs) -> None:
        kwargs.setdefault("name", f"controller-{node_id}")
        super().__init__(sim, **kwargs)
        self.node_id = node_id
        self.cluster = cluster
        #: Every switch with a completed handshake, mastered or not.
        self.handles: Dict[int, SwitchHandle] = {}
        #: Per-dpid mastership term (replicated, max-merged).
        self.terms: Dict[int, int] = {}
        #: This node's view of who masters what ({} without quorum).
        self.assignment: Dict[int, int] = {}
        #: Dpids assigned to us whose handshake has not completed yet.
        self.pending_master: Set[int] = set()
        self.channels: List = []
        self.crashed = False
        self.wipe_hooks: List[Callable[[], None]] = []
        self._applying_remote = False
        self._last_view: FrozenSet[int] = frozenset()

    # ------------------------------------------------------------------
    # Role bookkeeping
    # ------------------------------------------------------------------
    def is_master(self, dpid: int) -> bool:
        return dpid in self.switches

    @property
    def mastered_dpids(self) -> List[int]:
        return sorted(self.switches)

    def accept_channel(self, channel) -> None:
        self.channels.append(channel)
        super().accept_channel(channel)

    # ------------------------------------------------------------------
    # Handshake / channel lifecycle overrides
    # ------------------------------------------------------------------
    def _on_features(self, endpoint, reply) -> None:
        if not isinstance(reply, FeaturesReply) or self.crashed:
            return
        handle = SwitchHandle(self, endpoint, reply)
        self.handles[handle.dpid] = handle
        self._endpoint_switch[endpoint] = handle
        if self.assignment.get(handle.dpid) == self.node_id:
            self._adopt(handle, bump=handle.dpid in self.pending_master)
        else:
            self._watch(handle)

    def _on_channel_down(self, endpoint) -> None:
        handle = self._endpoint_switch.pop(endpoint, None)
        if handle is None:
            return
        handle.connected = False
        self.handles.pop(handle.dpid, None)
        if self.crashed:
            return
        if handle.dpid in self.switches:
            # Losing the channel to a mastered switch mirrors the
            # single-controller semantics: remember it for resync and
            # let apps re-path around it.
            self.switches.pop(handle.dpid, None)
            self._stale[handle.dpid] = handle
            if self._g_stale is not None:
                self._g_stale.set(len(self._stale))
            self.publish(SwitchLeave(handle.dpid))
        # A watched (slave) switch dropping its channel is silent: our
        # apps never saw it enter, so there is nothing to tear down.

    # ------------------------------------------------------------------
    # Mastership transitions
    # ------------------------------------------------------------------
    def _adopt(self, handle: SwitchHandle, bump: bool,
               previous: Optional[int] = None,
               trace_parent: Optional[int] = None) -> None:
        """Become MASTER of ``handle``; resync when state could differ."""
        dpid = handle.dpid
        if dpid in self.switches:
            return
        self.pending_master.discard(dpid)
        term = self.terms.get(dpid, 0)
        if bump:
            term += 1
            self.terms[dpid] = term
            # Commit the claim cluster-wide before touching the switch,
            # so peers fence themselves even if they race us.
            self.cluster.broadcast_term(self, dpid, term)
        else:
            self.terms.setdefault(dpid, term)
        role_span = None
        tracer = self.cluster.tracer
        trace_tid = self.cluster.trace_ctx_id
        if (bump and trace_parent is not None and tracer is not None
                and trace_tid is not None):
            bump_span = tracer.record(
                trace_tid, "cluster.term_bump", "cluster",
                parent=trace_parent, dpid=dpid, term=term,
                node=self.node_id)
            role_span = tracer.record(
                trace_tid, "cluster.role_grant", "cluster",
                parent=bump_span, dpid=dpid, node=self.node_id)
        stale = self._stale.pop(dpid, None)
        if self._g_stale is not None:
            self._g_stale.set(len(self._stale))
        self.switches[dpid] = handle
        handle.send(RoleRequest(ControllerRole.PRIMARY, term))
        self.publish(SwitchEnter(handle))
        if stale is not None:
            self._reconcile_ports(handle, stale)
        if stale is not None or self._ledger.get(dpid):
            # Inherited or reconnected: reconcile the switch's tables
            # against the replicated intent ledger (PR-2 handshake).
            if role_span is not None:
                self._resync_trace[dpid] = (trace_tid, role_span,
                                            self.sim.now)
            self._start_resync(handle)
        for app in self.apps:
            rebuild = getattr(app, "schedule_rebuild", None)
            if rebuild is not None:
                rebuild()
        self.cluster.note_adopted(self, dpid, previous, term,
                                  initial=not bump)

    def _watch(self, handle: SwitchHandle) -> None:
        """Hold ``handle`` as SLAVE: connected, invisible to apps."""
        self._stale.pop(handle.dpid, None)
        if self._g_stale is not None:
            self._g_stale.set(len(self._stale))
        handle.send(RoleRequest(ControllerRole.SECONDARY,
                                self.terms.get(handle.dpid, 0)))

    def _demote(self, dpid: int) -> None:
        """Drop mastership without tearing the switch down for apps.

        No SwitchLeave: the switch is healthy and its links stay valid
        (the new master keeps refreshing them); only the ownership
        moved.
        """
        handle = self.switches.pop(dpid, None)
        if handle is None:
            return
        if handle.connected:
            handle.send(RoleRequest(ControllerRole.SECONDARY,
                                    self.terms.get(dpid, 0)))

    # ------------------------------------------------------------------
    # Membership churn (called by the bus, sync phase then apply phase)
    # ------------------------------------------------------------------
    def on_membership_sync(self) -> None:
        """Anti-entropy with peers that just became visible.

        Push our state *and* request theirs: the request covers the
        asymmetric case where only one side noticed the churn — a crash
        + restart inside one detection window coalesces into a single
        epoch, so the survivors never see the rebooted node as newly
        joined and would otherwise never re-seed its wiped state.
        """
        if self.crashed:
            return
        bus = self.cluster.bus
        view = bus.view(self.node_id)
        joined = view - self._last_view
        self._last_view = view
        snapshot = None
        for peer in sorted(joined):
            if peer == self.node_id:
                continue
            if snapshot is None:
                snapshot = self._snapshot()
            bus.send(self.node_id, peer, "state_push", snapshot)
            bus.send(self.node_id, peer, "state_request", None)

    def on_membership_change(self) -> None:
        """Recompute mastership for the current view; adopt and demote."""
        if self.crashed:
            return
        bus = self.cluster.bus
        if bus.has_quorum(self.node_id):
            new_assign = assign_masters(bus.view(self.node_id),
                                        self.cluster.dpids,
                                        self.cluster.seed)
        else:
            # Minority side: release everything rather than split-brain.
            new_assign = {}
        old_assign = self.assignment
        self.assignment = new_assign
        self.pending_master = {
            d for d in self.pending_master
            if new_assign.get(d) == self.node_id
        }
        election_span = self.cluster.trace_election(self.node_id)
        for dpid in self.cluster.dpids:
            old_m = old_assign.get(dpid)
            new_m = new_assign.get(dpid)
            if old_m == new_m:
                continue
            if new_m == self.node_id:
                handle = self.handles.get(dpid)
                if handle is not None and handle.connected:
                    self._adopt(handle, bump=True, previous=old_m,
                                trace_parent=election_span)
                else:
                    self.pending_master.add(dpid)
            elif old_m == self.node_id:
                self._demote(dpid)

    # ------------------------------------------------------------------
    # East-west replication
    # ------------------------------------------------------------------
    def attach_discovery(self, discovery: TopologyDiscovery) -> None:
        """Broadcast every local LLDP observation to the peers."""
        discovery.on_link_seen = self._replicate_link_seen

    def start_replication(self) -> None:
        """Subscribe the replication taps to this node's event bus."""
        from repro.controller.events import (  # local: avoid cycle at import
            HostDiscovered,
            HostMoved,
            LinkVanished,
        )
        self.subscribe(LinkVanished, self._replicate_link_gone,
                       owner="cluster")
        self.subscribe(HostDiscovered, self._replicate_host,
                       owner="cluster")
        self.subscribe(HostMoved, self._replicate_host_moved,
                       owner="cluster")

    def _broadcast(self, kind: str, payload) -> None:
        if self.crashed or self._applying_remote:
            return
        self.cluster.bus.broadcast(self.node_id, kind, payload)

    def _ledger_record(self, dpid, match, actions, priority, table_id,
                       idle_timeout, hard_timeout, cookie, goto_table,
                       notify_removed) -> None:
        super()._ledger_record(dpid, match, actions, priority, table_id,
                               idle_timeout, hard_timeout, cookie,
                               goto_table, notify_removed)
        spec = self._ledger[dpid][(table_id, priority, match)]
        self._broadcast("ledger_record",
                        (dpid, (table_id, priority, match), spec))

    def _ledger_forget(self, dpid, match, table_id, priority,
                       strict) -> None:
        super()._ledger_forget(dpid, match, table_id, priority, strict)
        self._broadcast("ledger_forget",
                        (dpid, match, table_id, priority, strict))

    def _on_flow_removed_msg(self, handle, msg) -> None:
        if self.crashed or handle.dpid not in self.switches:
            return  # only the master narrates its switch's expiries
        super()._on_flow_removed_msg(handle, msg)
        self._broadcast("flow_removed",
                        (handle.dpid,
                         (msg.table_id, msg.priority, msg.match)))

    def _enqueue_packet_in(self, handle, msg) -> None:
        # Belt and braces on top of the switch-side SLAVE filter: only
        # the master's apps may react to a switch's punts (covers the
        # EQUAL window between handshake and role application).
        if self.crashed or handle.dpid not in self.switches:
            return
        super()._enqueue_packet_in(handle, msg)

    def _replicate_link_seen(self, link) -> None:
        self._broadcast("link_seen", (link.src_dpid, link.src_port,
                                      link.dst_dpid, link.dst_port))

    def _replicate_link_gone(self, event) -> None:
        self._broadcast("links_gone",
                        [(event.src_dpid, event.src_port)])

    def _replicate_host(self, event) -> None:
        self._broadcast("host_seen",
                        (event.mac, event.ip, event.dpid, event.port))

    def _replicate_host_moved(self, event) -> None:
        tracker = self.get_app(HostTracker)
        entry = tracker.hosts_by_mac.get(event.mac) if tracker else None
        ip = entry.ip if entry is not None else None
        self._broadcast("host_seen",
                        (event.mac, ip, event.dpid, event.port))

    # -- receive side ---------------------------------------------------
    def on_ew_message(self, src: int, kind: str, payload) -> None:
        if self.crashed:
            return
        if kind == "ledger_record":
            dpid, key, spec = payload
            self._ledger.setdefault(dpid, {})[key] = dict(spec)
        elif kind == "ledger_forget":
            dpid, match, table_id, priority, strict = payload
            Controller._ledger_forget(self, dpid, match, table_id,
                                      priority, strict)
        elif kind == "flow_removed":
            dpid, key = payload
            flows = self._ledger.get(dpid)
            if flows is not None:
                flows.pop(key, None)
        elif kind == "link_seen":
            discovery = self.get_app(TopologyDiscovery)
            if discovery is not None:
                self._apply_remote(discovery.observe_link, *payload,
                                   local=False)
        elif kind == "links_gone":
            discovery = self.get_app(TopologyDiscovery)
            if discovery is not None:
                self._apply_remote(discovery._remove_links, payload)
        elif kind == "host_seen":
            tracker = self.get_app(HostTracker)
            if tracker is not None:
                mac, ip, dpid, port = payload
                self._apply_remote(tracker._learn, mac, ip, dpid, port)
        elif kind == "term":
            self._on_remote_term(*payload)
        elif kind == "state_push":
            self._merge_snapshot(payload)
        elif kind == "state_request":
            self.cluster.bus.send(self.node_id, src, "state_push",
                                  self._snapshot())

    def _apply_remote(self, fn, *args, **kwargs) -> None:
        self._applying_remote = True
        try:
            fn(*args, **kwargs)
        finally:
            self._applying_remote = False

    def _on_remote_term(self, dpid: int, term: int, master: int) -> None:
        mine = self.terms.get(dpid, 0)
        if term > mine:
            self.terms[dpid] = term
        if master == self.node_id:
            return
        if dpid in self.switches and term > mine:
            # Fenced: a peer claimed this switch with a newer term.
            self._demote(dpid)
            return
        handle = self.handles.get(dpid)
        if (handle is not None and handle.connected
                and dpid not in self.switches):
            # Refresh our SLAVE registration under the new generation.
            handle.send(RoleRequest(ControllerRole.SECONDARY,
                                    self.terms[dpid]))

    # -- anti-entropy snapshots ----------------------------------------
    def _snapshot(self) -> dict:
        discovery = self.get_app(TopologyDiscovery)
        tracker = self.get_app(HostTracker)
        links = []
        if discovery is not None:
            links = sorted(
                (l.src_dpid, l.src_port, l.dst_dpid, l.dst_port)
                for l in discovery.links.values()
            )
        hosts = []
        if tracker is not None:
            hosts = sorted(
                ((e.mac, e.ip, e.dpid, e.port)
                 for e in tracker.hosts_by_mac.values()),
                key=lambda item: str(item[0]),
            )
        return {
            "terms": dict(self.terms),
            "ledger": {
                dpid: {key: dict(spec) for key, spec in flows.items()}
                for dpid, flows in self._ledger.items()
            },
            "masters": sorted(self.switches),
            "links": links,
            "hosts": hosts,
        }

    def _merge_snapshot(self, snapshot: dict) -> None:
        sender_masters = set(snapshot.get("masters", ()))
        for dpid in sorted(snapshot["terms"]):
            term = snapshot["terms"][dpid]
            mine = self.terms.get(dpid, 0)
            # Strictly newer term: the sender's ledger supersedes
            # whatever we froze at.  At an *equal* term, defer to the
            # sender iff it currently masters the switch — term fencing
            # guarantees one claimant per term, so its copy carries any
            # writes we missed while unreachable (a partition that never
            # moved mastership never bumps the term).
            if term > mine or (term == mine
                               and dpid in sender_masters
                               and dpid not in self.switches):
                self.terms[dpid] = term
                flows = snapshot["ledger"].get(dpid)
                if flows:
                    self._ledger[dpid] = {
                        key: dict(spec) for key, spec in flows.items()
                    }
                else:
                    self._ledger.pop(dpid, None)
        discovery = self.get_app(TopologyDiscovery)
        if discovery is not None:
            for src_dpid, src_port, dst_dpid, dst_port in snapshot["links"]:
                self._apply_remote(discovery.observe_link, src_dpid,
                                   src_port, dst_dpid, dst_port,
                                   local=False)
        tracker = self.get_app(HostTracker)
        if tracker is not None:
            for mac, ip, dpid, port in snapshot["hosts"]:
                self._apply_remote(tracker._learn, mac, ip, dpid, port)

    # ------------------------------------------------------------------
    # Crash / restart (fresh-process semantics)
    # ------------------------------------------------------------------
    def wipe(self) -> None:
        """Forget everything, as a crashed process would."""
        self._ledger.clear()
        self._stale.clear()
        if self._g_stale is not None:
            self._g_stale.set(0)
        self.switches.clear()
        self.handles.clear()
        self._endpoint_switch.clear()
        self.terms.clear()
        self.assignment = {}
        self.pending_master.clear()
        self._last_view = frozenset()
        for hook in self.wipe_hooks:
            hook()

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else "up"
        return (f"<ClusterController {self.node_id} {state}: "
                f"{len(self.switches)} mastered / "
                f"{len(self.handles)} connected>")


class ControllerCluster:
    """The shared spine of a controller cluster.

    Owns the east-west bus, the election seed, the global dpid list,
    and the handover log; the per-instance logic lives in
    :class:`ClusterController`.
    """

    def __init__(self, sim, size: int, seed: int = 0,
                 detect_delay: float = 0.05,
                 packet_in_service_time: float = 0.0,
                 telemetry=None) -> None:
        if size < 1:
            raise ValueError(f"cluster size must be >= 1, got {size}")
        self.sim = sim
        self.seed = seed
        self.bus = EastWestBus(sim, detect_delay=detect_delay)
        self.dpids: List[int] = []
        self.controllers: List[ClusterController] = []
        self.handover_log: List[HandoverRecord] = []
        self.on_handover: List[Callable[[HandoverRecord], None]] = []
        self.on_failover_complete: List[Callable[[int, float], None]] = []
        #: crashed node -> (crash time, dpids still awaiting re-adoption)
        self._pending_failover: Dict[int, tuple] = {}
        #: Trace plane: the tracer shared with the platform (``None``
        #: when tracing is off) and the active fault-root context
        #: ``(trace_id, root_span, fired_at)`` handed over by
        #: :meth:`~repro.faults.schedule.FaultSchedule._fire` so the
        #: asynchronous handover chain records under the fault's trace.
        self.tracer = (telemetry.tracer
                       if telemetry is not None and telemetry.enabled
                       and telemetry.tracing else None)
        self._trace_ctx: Optional[tuple] = None
        self._trace_detect: Optional[int] = None
        self.bus.on_notify = self._on_bus_notify
        for node_id in range(size):
            node = ClusterController(
                sim, node_id, self,
                packet_in_service_time=packet_in_service_time,
                telemetry=telemetry,
            )
            self.bus.register(node)
            self.controllers.append(node)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.controllers)

    def node(self, node_id: int) -> ClusterController:
        return self.controllers[node_id]

    def seed_assignment(self, dpids: Iterable[int]) -> None:
        """Fix the dpid universe and pre-agree the initial mastership.

        Called once at build time, before any channel connects: every
        node starts from the same assignment and term 1 per switch, so
        startup needs no elections and no handovers.
        """
        self.dpids = sorted(dpids)
        initial = assign_masters(
            sorted(self.bus.alive), self.dpids, self.seed
        )
        for node in self.controllers:
            node.assignment = dict(initial)
            node.terms = {dpid: 1 for dpid in self.dpids}
            node._last_view = self.bus.view(node.node_id)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def leader(self) -> Optional[int]:
        return elect_leader(sorted(self.bus.alive), self.seed)

    def masters(self) -> Dict[int, List[int]]:
        """dpid -> node ids currently *claiming* mastership (live view)."""
        claims: Dict[int, List[int]] = {d: [] for d in self.dpids}
        for node in self.controllers:
            if node.crashed:
                continue
            for dpid in node.switches:
                claims.setdefault(dpid, []).append(node.node_id)
        return claims

    def master_of(self, dpid: int) -> Optional[int]:
        claimants = self.masters().get(dpid, [])
        return claimants[0] if len(claimants) == 1 else None

    def handover_complete(self) -> bool:
        """True when no crashed node's switches await re-adoption."""
        return not self._pending_failover

    # ------------------------------------------------------------------
    # Trace plane (causal handover chain)
    # ------------------------------------------------------------------
    def note_fault_trace(self, trace_id: Optional[int],
                         span_id: Optional[int], at: float) -> None:
        """Adopt a fault injection's root span as the handover context.

        Every subsequent span of the chain — death detection, election,
        term bump, role grant, resync, failover completion — parents
        (transitively) under this root, so one trace explains the whole
        recovery.
        """
        if self.tracer is None or trace_id is None:
            return
        self._trace_ctx = (trace_id, span_id, at)
        self._trace_detect = None

    @property
    def trace_ctx_id(self) -> Optional[int]:
        return self._trace_ctx[0] if self._trace_ctx is not None else None

    def _on_bus_notify(self, epoch: int) -> None:
        if self.tracer is None or self._trace_ctx is None:
            return
        tid, root, at = self._trace_ctx
        # Spans the detection window: membership event -> notification.
        self._trace_detect = self.tracer.record(
            tid, "bus.death_detect", "cluster", start=at,
            parent=root, epoch=epoch)

    def trace_election(self, node_id: int) -> Optional[int]:
        """Record one node's mastership recomputation; returns its span
        id (the parent for the node's term bumps), or ``None``."""
        if self.tracer is None or self._trace_ctx is None:
            return None
        tid, root, _at = self._trace_ctx
        parent = self._trace_detect if self._trace_detect is not None \
            else root
        return self.tracer.record(tid, "cluster.election", "cluster",
                                  parent=parent, node=node_id)

    # ------------------------------------------------------------------
    # Coordination callbacks
    # ------------------------------------------------------------------
    def broadcast_term(self, node: ClusterController, dpid: int,
                       term: int) -> None:
        self.bus.broadcast(node.node_id, "term",
                           (dpid, term, node.node_id))

    def note_adopted(self, node: ClusterController, dpid: int,
                     previous: Optional[int], term: int,
                     initial: bool) -> None:
        if initial:
            return
        record = HandoverRecord(self.sim.now, dpid, previous,
                                node.node_id, term)
        self.handover_log.append(record)
        for hook in self.on_handover:
            hook(record)
        for crashed_id in list(self._pending_failover):
            started, pending = self._pending_failover[crashed_id]
            if dpid in pending:
                pending.discard(dpid)
                if not pending:
                    del self._pending_failover[crashed_id]
                    elapsed = self.sim.now - started
                    if (self.tracer is not None
                            and self._trace_ctx is not None):
                        tid, root, _at = self._trace_ctx
                        self.tracer.record(
                            tid, "cluster.failover_complete", "cluster",
                            start=started, parent=root,
                            node=crashed_id)
                    for hook in self.on_failover_complete:
                        hook(crashed_id, elapsed)

    # ------------------------------------------------------------------
    # Faults (driven by repro.faults.FaultSchedule)
    # ------------------------------------------------------------------
    def crash_node(self, node_id: int) -> None:
        """Kill one controller process: bus death + channels down."""
        node = self.controllers[node_id]
        if node.crashed:
            return
        owned = set(node.switches)
        node.crashed = True
        self.bus.crash(node_id)
        for channel in node.channels:
            if channel.connected:
                channel.disconnect()
        node.wipe()
        if owned:
            self._pending_failover[node_id] = (self.sim.now, owned)
        else:
            for hook in self.on_failover_complete:
                hook(node_id, 0.0)

    def restart_node(self, node_id: int) -> None:
        """Bring a crashed controller back, empty; peers re-seed it."""
        node = self.controllers[node_id]
        if not node.crashed:
            return
        node.crashed = False
        self.bus.restart(node_id)
        for channel in node.channels:
            if not channel.connected:
                channel.connect()

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        self.bus.partition(groups)

    def heal(self) -> None:
        self.bus.heal()

    def __repr__(self) -> str:
        alive = sum(1 for n in self.controllers if not n.crashed)
        return (f"<ControllerCluster {alive}/{self.size} up, "
                f"leader={self.leader}>")
