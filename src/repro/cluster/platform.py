"""ZenCluster: the whole stack with N controller instances.

Mirrors :class:`~repro.core.platform.ZenPlatform` — one emulated
network, the standard service apps, a forwarding profile — but builds
``controllers`` instances of :class:`ClusterController` sharing the
fabric.  Every switch gets one control channel *per instance*
(``make_channel(..., instance=node_id)``), the initial mastership is
pre-agreed at build time by the rendezvous election, and the east-west
bus replicates state from the first installed flow.

Determinism contract: with zero faults, a ZenCluster run is
bit-identical on the dataplane for any cluster size — per-node
discovery probes run with ``jitter=0.0`` (no main-RNG draws), each
switch's programming flows through exactly one master, and the bus
delivers synchronously.  The differential test plane pins this down.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from repro.apps.arp_proxy import ArpProxy
from repro.apps.learning_switch import LearningSwitch
from repro.apps.proactive_router import ProactiveRouter
from repro.cluster.node import ClusterController, ControllerCluster
from repro.controller.discovery import TopologyDiscovery
from repro.controller.hosttracker import HostTracker
from repro.errors import ControllerError
from repro.netem.network import Network
from repro.netem.topology import Topology
from repro.sim import Simulator

__all__ = ["ZenCluster", "dataplane_digest"]

_PROFILES = ("reactive", "proactive", "bare")


def dataplane_digest(net: Network) -> str:
    """A canonical hash of everything the *dataplane* shows.

    Flow tables, datapath counters, and host tx/rx — deliberately
    excluding control-channel and controller-side counters, which
    legitimately differ with cluster size (N instances exchange more
    control messages while programming the very same dataplane).
    """
    state = {
        "switches": {
            name: {
                "stats": dp.stats(),
                "flows": sorted(
                    (table.table_id, entry.priority, repr(entry.match),
                     repr(sorted(map(repr, entry.actions))))
                    for table in dp.tables
                    for entry in table
                ),
            }
            for name, dp in sorted(net.switches.items())
        },
        "hosts": {
            name: {"tx": host.tx_packets, "rx": host.rx_packets,
                   "tx_bytes": host.tx_bytes, "rx_bytes": host.rx_bytes}
            for name, host in sorted(net.hosts.items())
        },
    }
    blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ZenCluster:
    """One-call assembly of network + N-instance controller cluster.

    The surface mirrors :class:`ZenPlatform` (``start``, ``run``,
    ``ping_all``, ``controller`` …) so benchmarks, obs, and the fuzzer
    drive either interchangeably; ``controllers=1`` is the oracle the
    differential tests compare larger clusters against.
    """

    def __init__(
        self,
        topology: Topology,
        controllers: int = 3,
        profile: str = "proactive",
        seed: int = 0,
        control_latency: float = 0.001,
        control_bandwidth_bps: float = 0.0,
        flowmod_delay: float = 0.0,
        packet_in_service_time: float = 0.0,
        num_tables: int = 4,
        table_capacity: int = 0,
        eviction_policy: Optional[str] = None,
        probe_interval: float = 1.0,
        exact_match: bool = False,
        telemetry=None,
        fast_path: bool = True,
        detect_delay: float = 0.05,
        election_seed: Optional[int] = None,
    ) -> None:
        if profile not in _PROFILES:
            raise ControllerError(
                f"unknown profile {profile!r}; pick one of {_PROFILES}"
            )
        self.profile = profile
        self.net = Network(
            topology,
            seed=seed,
            num_tables=num_tables,
            table_capacity=table_capacity,
            eviction_policy=eviction_policy,
            telemetry=telemetry,
            fast_path=fast_path,
        )
        self.telemetry = self.net.telemetry
        self.cluster = ControllerCluster(
            self.net.sim, controllers,
            seed=election_seed if election_seed is not None else seed,
            detect_delay=detect_delay,
            packet_in_service_time=packet_in_service_time,
            telemetry=self.telemetry,
        )
        self.discoveries: List[TopologyDiscovery] = []
        self.trackers: List[HostTracker] = []
        self.routers: List[Optional[ProactiveRouter]] = []
        self.learnings: List[Optional[LearningSwitch]] = []
        for node in self.cluster.controllers:
            # jitter=0.0: probe timing must not consume main-RNG draws,
            # or the draw count (and every downstream stream) would
            # depend on the cluster size.
            discovery = node.add_app(TopologyDiscovery(
                probe_interval=probe_interval, jitter=0.0,
            ))
            tracker = node.add_app(HostTracker())
            node.add_app(ArpProxy())
            router = learning = None
            if profile == "reactive":
                learning = node.add_app(
                    LearningSwitch(exact_match=exact_match)
                )
            elif profile == "proactive":
                router = node.add_app(ProactiveRouter())
            self.discoveries.append(discovery)
            self.trackers.append(tracker)
            self.routers.append(router)
            self.learnings.append(learning)
            node.attach_discovery(discovery)
            node.start_replication()
            node.wipe_hooks.append(
                self._make_wipe_hook(discovery, tracker, router, learning)
            )
        self.cluster.seed_assignment(
            dp.dpid for dp in self.net.switches.values()
        )
        # One channel per (switch, instance), switch-major so per-switch
        # handshakes complete in node order deterministically.
        for name in self.net.switches:
            for node in self.cluster.controllers:
                channel = self.net.make_channel(
                    name,
                    latency=control_latency,
                    bandwidth_bps=control_bandwidth_bps,
                    flowmod_delay=flowmod_delay,
                    instance=node.node_id,
                )
                node.accept_channel(channel)
                channel.connect()

    @staticmethod
    def _make_wipe_hook(discovery, tracker, router, learning):
        def wipe() -> None:
            discovery.links.clear()
            tracker.hosts_by_mac.clear()
            tracker.hosts_by_ip.clear()
            if router is not None:
                router._installed.clear()
            if learning is not None:
                learning.mac_tables.clear()
        return wipe

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def sim(self) -> Simulator:
        return self.net.sim

    @property
    def controller(self) -> ClusterController:
        """Node 0, for surfaces that expect a single controller."""
        return self.cluster.controllers[0]

    @property
    def discovery(self) -> TopologyDiscovery:
        return self.discoveries[0]

    def node(self, node_id: int) -> ClusterController:
        return self.cluster.node(node_id)

    def start(self, warmup: Optional[float] = None) -> "ZenCluster":
        """Run long enough for handshakes and discovery to settle."""
        if warmup is None:
            warmup = 2 * self.discoveries[0].probe_interval + 0.5
        self.net.run(warmup)
        return self

    def run(self, duration: float) -> None:
        self.net.run(duration)

    # ------------------------------------------------------------------
    # Convenience passthroughs (ZenPlatform parity)
    # ------------------------------------------------------------------
    def host(self, name: str):
        return self.net.host(name)

    def switch(self, name: str):
        return self.net.switch(name)

    def ping_all(self, count: int = 1, settle: float = 10.0) -> float:
        return self.net.ping_all(count=count, settle=settle)

    def fail_link(self, a: str, b: str) -> None:
        self.net.fail_link(a, b)

    def recover_link(self, a: str, b: str) -> None:
        self.net.recover_link(a, b)

    def dataplane_digest(self) -> str:
        return dataplane_digest(self.net)

    def control_overhead(self) -> Dict[str, dict]:
        return {
            name: channel.total_stats()
            for name, channel in self.net.channels.items()
        }

    def total_control_messages(self) -> int:
        total = 0
        for stats in self.control_overhead().values():
            total += stats["to_controller"]["messages"]
            total += stats["to_switch"]["messages"]
        return total

    def total_events_published(self) -> int:
        return sum(n.events_published for n in self.cluster.controllers)

    def total_resyncs(self) -> int:
        return sum(n.resyncs for n in self.cluster.controllers)

    def __repr__(self) -> str:
        return (
            f"<ZenCluster {self.cluster.size}x {self.profile!r} on "
            f"{self.net.topology.name!r}>"
        )
