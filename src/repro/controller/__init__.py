"""Controller framework: core, events, discovery, hosts, paths, intents."""

from repro.controller.core import App, Controller, SwitchHandle
from repro.controller.discovery import DiscoveredLink, TopologyDiscovery
from repro.controller.events import (
    ErrorEvent,
    Event,
    FlowRemovedEvent,
    HostDiscovered,
    HostMoved,
    LinkDiscovered,
    LinkVanished,
    PacketInEvent,
    PortStatsUpdate,
    PortStatusEvent,
    SwitchEnter,
    SwitchLeave,
)
from repro.controller.hosttracker import HostEntry, HostTracker
from repro.controller.intents import (
    HostToHostIntent,
    Intent,
    IntentService,
    IntentState,
)
from repro.controller.pathing import PathService
from repro.controller.stats import PortRate, StatsPoller

__all__ = [
    "App",
    "Controller",
    "DiscoveredLink",
    "ErrorEvent",
    "Event",
    "FlowRemovedEvent",
    "HostDiscovered",
    "HostEntry",
    "HostMoved",
    "HostToHostIntent",
    "HostTracker",
    "Intent",
    "IntentService",
    "IntentState",
    "LinkDiscovered",
    "LinkVanished",
    "PacketInEvent",
    "PathService",
    "PortRate",
    "PortStatsUpdate",
    "PortStatusEvent",
    "StatsPoller",
    "SwitchEnter",
    "SwitchHandle",
    "SwitchLeave",
    "TopologyDiscovery",
]
