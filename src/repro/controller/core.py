"""The controller core: channel handshakes, switch handles, event bus.

The controller is deliberately thin — everything interesting lives in
apps.  The core's jobs are:

* complete the ZOF handshake on every accepted channel and mint a
  :class:`SwitchHandle`,
* decode asynchronous messages into typed events on the bus,
* model controller compute (an optional single-server queue for
  packet-in processing, so benchmark E3's saturation curve is honest),
* give apps an ergonomic programming surface (``add_flow``,
  ``packet_out``, ``barrier``, stats requests).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.controller.events import (
    ErrorEvent,
    Event,
    FlowRemovedEvent,
    PacketInEvent,
    PortStatusEvent,
    ResyncDone,
    SwitchEnter,
    SwitchLeave,
)
from repro.dataplane.actions import Action
from repro.dataplane.group import Bucket
from repro.dataplane.match import Match
from repro.errors import ControllerError
from repro.packet import Packet
from repro.sim import Simulator
from repro.southbound.channel import ChannelEndpoint, ControlChannel
from repro.southbound.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    Error,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    GroupMod,
    Hello,
    Message,
    MeterMod,
    ModCommand,
    PacketIn,
    PacketOut,
    PortDesc,
    PortStatus,
    StatsKind,
    StatsReply,
    StatsRequest,
)
from repro.telemetry import ensure

__all__ = ["Controller", "SwitchHandle", "App"]


class SwitchHandle:
    """The controller's view of one connected switch."""

    def __init__(self, controller: "Controller",
                 endpoint: ChannelEndpoint,
                 features: FeaturesReply) -> None:
        self.controller = controller
        self.endpoint = endpoint
        self.dpid = features.dpid
        self.num_tables = features.num_tables
        self.ports: Dict[int, PortDesc] = {
            p.number: p for p in features.ports
        }
        self.connected = True

    # ------------------------------------------------------------------
    # Programming surface
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> int:
        if not self.connected:
            raise ControllerError(f"switch {self.dpid} is disconnected")
        return self.endpoint.send(msg)

    def add_flow(
        self,
        match: Match,
        actions: List[Action],
        priority: int = 0,
        table_id: int = 0,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: int = 0,
        goto_table: Optional[int] = None,
        notify_removed: bool = False,
    ) -> None:
        """Install one flow entry (ZOF FlowMod ADD)."""
        flags = FlowMod.SEND_FLOW_REM if notify_removed else 0
        self.controller._ledger_record(
            self.dpid, match=match, actions=actions, priority=priority,
            table_id=table_id, idle_timeout=idle_timeout,
            hard_timeout=hard_timeout, cookie=cookie,
            goto_table=goto_table, notify_removed=notify_removed,
        )
        ctx = self.controller._trace_ctx
        if ctx is not None:
            self.controller.telemetry.tracer.record(
                ctx, "flow.install", "controller",
                parent=self.controller._trace_span,
                dpid=self.dpid, table=table_id, priority=priority,
            )
        self.send(FlowMod(
            command=FlowModCommand.ADD,
            table_id=table_id,
            match=match,
            priority=priority,
            actions=actions,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            cookie=cookie,
            goto_table=goto_table,
            flags=flags,
        ))

    def delete_flows(
        self,
        match: Optional[Match] = None,
        table_id: int = 0,
        priority: Optional[int] = None,
        strict: bool = False,
        cookie: int = 0,
    ) -> None:
        command = (FlowModCommand.DELETE_STRICT if strict
                   else FlowModCommand.DELETE)
        self.controller._ledger_forget(
            self.dpid,
            match=match if match is not None else Match(),
            table_id=table_id,
            priority=priority if priority is not None else 0,
            strict=strict,
        )
        self.send(FlowMod(
            command=command,
            table_id=table_id,
            match=match if match is not None else Match(),
            priority=priority if priority is not None else 0,
            cookie=cookie,
        ))

    def packet_out(self, packet: Packet, actions: List[Action],
                   in_port: int = 0,
                   encoded: Optional[bytes] = None) -> None:
        # Periodic senders (LLDP probes, keepalives) pass ``encoded`` so
        # identical frames are serialised once, not once per interval.
        data = packet.encode() if encoded is None else encoded
        ctx = self.controller._trace_ctx
        if ctx is None:
            ctx = packet.trace_id
        if ctx is not None:
            tracer = self.controller.telemetry.tracer
            tracer.record(ctx, "packet.out", "controller", dpid=self.dpid,
                          parent=self.controller._trace_span)
            # Stash so the switch agent re-adopts after deserialisation;
            # scoped to the channel so an epoch bump prunes the entry.
            tracer.stash(("packet_out", self.dpid, data), ctx,
                         scope=self.endpoint._channel)
        self.send(PacketOut(in_port, actions, data))

    def barrier(self, callback: Optional[Callable[[], None]] = None) -> None:
        """Request a barrier; ``callback`` fires when the reply lands.

        The callback does *not* fire if the channel drops while the
        barrier is outstanding (the synthetic Error is swallowed) — a
        barrier certifies completed processing, which a dead channel
        cannot.
        """
        ctx = self.controller._trace_ctx
        parent = self.controller._trace_span
        requested_at = self.controller.sim.now
        if callback is None:
            if ctx is not None:
                self.controller.telemetry.tracer.record(
                    ctx, "barrier.request", "controller",
                    parent=parent, dpid=self.dpid)
            self.send(BarrierRequest())
            return

        def _on_reply(msg: Message) -> None:
            if not isinstance(msg, BarrierReply):
                return
            if ctx is not None:
                # The span covers request -> reply: everything the
                # switch had queued (flow-mods included) is committed.
                self.controller.telemetry.tracer.record(
                    ctx, "barrier", "controller", start=requested_at,
                    parent=parent, dpid=self.dpid)
            callback()

        self.endpoint.request(BarrierRequest(), _on_reply)

    def request_stats(self, kind: int,
                      callback: Callable[[StatsReply], None],
                      table_id: int = 0xFF,
                      timeout: float = 0.0, retries: int = 0,
                      on_failure: Optional[Callable[[Message], None]] = None,
                      ) -> None:
        self.endpoint.request(StatsRequest(kind, table_id), callback,
                              timeout=timeout, retries=retries,
                              on_failure=on_failure)

    def add_group(self, group_id: int, group_type: str,
                  buckets: List[Bucket]) -> None:
        self.send(GroupMod(ModCommand.ADD, group_id, group_type, buckets))

    def modify_group(self, group_id: int, group_type: str,
                     buckets: List[Bucket]) -> None:
        self.send(GroupMod(ModCommand.MODIFY, group_id, group_type, buckets))

    def delete_group(self, group_id: int) -> None:
        self.send(GroupMod(ModCommand.DELETE, group_id))

    def add_meter(self, meter_id: int, rate_bps: float,
                  burst_bytes: int = 0) -> None:
        self.send(MeterMod(ModCommand.ADD, meter_id, rate_bps, burst_bytes))

    def delete_meter(self, meter_id: int) -> None:
        self.send(MeterMod(ModCommand.DELETE, meter_id))

    def __repr__(self) -> str:
        state = "up" if self.connected else "down"
        return f"<SwitchHandle dpid={self.dpid} {state}>"


class App:
    """Base class for controller applications.

    Override the ``on_*`` hooks you care about; :meth:`start` wires them
    to the event bus.  Apps see switches that connected before they were
    added via a synthetic :class:`SwitchEnter` replay.
    """

    name = "app"

    def __init__(self) -> None:
        self.controller: Optional["Controller"] = None

    def start(self, controller: "Controller") -> None:
        self.controller = controller
        controller.subscribe(SwitchEnter,
                             lambda ev: self.on_switch_enter(ev.switch),
                             owner=self.name)
        controller.subscribe(SwitchLeave,
                             lambda ev: self.on_switch_leave(ev.dpid),
                             owner=self.name)
        controller.subscribe(PacketInEvent, self.on_packet_in,
                             owner=self.name)
        controller.subscribe(FlowRemovedEvent, self.on_flow_removed,
                             owner=self.name)
        controller.subscribe(PortStatusEvent, self.on_port_status,
                             owner=self.name)
        controller.subscribe(ErrorEvent, self.on_error, owner=self.name)

    # -- overridable hooks ---------------------------------------------
    def on_switch_enter(self, switch: SwitchHandle) -> None:
        """A switch finished its handshake."""

    def on_switch_leave(self, dpid: int) -> None:
        """A switch disconnected."""

    def on_packet_in(self, event: PacketInEvent) -> None:
        """A packet was punted to the controller."""

    def on_flow_removed(self, event: FlowRemovedEvent) -> None:
        """A flow entry the controller asked to watch was removed."""

    def on_port_status(self, event: PortStatusEvent) -> None:
        """A switch port changed liveness."""

    def on_error(self, event: ErrorEvent) -> None:
        """The switch rejected something we sent."""

    @property
    def sim(self) -> Simulator:
        if self.controller is None:
            raise ControllerError(f"app {self.name} is not started")
        return self.controller.sim

    def __repr__(self) -> str:
        return f"<App {self.name}>"


class Controller:
    """A centralised SDN controller.

    Parameters
    ----------
    sim:
        The shared simulation kernel.
    packet_in_service_time:
        Seconds of controller CPU consumed per punted packet, modelled
        as a single-server FIFO.  0 disables the model (infinitely fast
        controller).
    """

    def __init__(self, sim: Simulator, name: str = "controller",
                 packet_in_service_time: float = 0.0,
                 telemetry=None) -> None:
        self.sim = sim
        self.name = name
        self.packet_in_service_time = packet_in_service_time
        self.switches: Dict[int, SwitchHandle] = {}
        self.apps: List[App] = []
        self._subscribers: Dict[Type[Event], List[Tuple[Callable, str]]] = {}
        self._endpoint_switch: Dict[ChannelEndpoint, SwitchHandle] = {}
        #: Intended flow state per dpid, keyed (table_id, priority, match)
        #: — the source of truth the resync reconciles the switch against.
        self._ledger: Dict[int, Dict[Tuple[int, int, Match], dict]] = {}
        #: Switches that dropped their channel; remembered (not forgotten)
        #: so the reconnect handshake can reconcile rather than rebuild.
        self._stale: Dict[int, SwitchHandle] = {}
        #: Handshake/resync robustness knobs (seconds / attempt counts).
        self.handshake_timeout = 0.5
        self.handshake_retries = 2
        self.resync_timeout = 1.0
        self.resync_retries = 1
        #: When the controller CPU frees up (single-server queue model).
        self._cpu_free_at = 0.0
        # Counters for E3/E9.
        self.packet_ins_handled = 0
        self.packet_in_delays: List[float] = []
        self.events_published = 0
        # Counters for E11 / fault recovery.
        self.resyncs = 0
        self.resync_reinstalled = 0
        self.resync_deleted = 0
        self.resync_pruned = 0
        self.resync_failures = 0
        # Default to the kernel's plane so Controller(sim) just works.
        tel = ensure(telemetry if telemetry is not None
                     else getattr(sim, "telemetry", None))
        self.telemetry = tel
        #: Trace id of the packet-in currently being dispatched, so app
        #: spans and resulting flow-mods/packet-outs join its trace.
        self._trace_ctx: Optional[int] = None
        #: Span id of the innermost active span (dispatch, then the app
        #: handler) — the parent for flow-mod/packet-out/barrier spans,
        #: which is what turns a trace into a causal tree.
        self._trace_span: Optional[int] = None
        #: Pending resync trace contexts: dpid -> (trace_id, parent
        #: span, started_at), recorded when a traced adoption kicks off
        #: a ledger resync and closed by ``_on_resync_stats``.
        self._resync_trace: Dict[int, Tuple[int, Optional[int], float]] = {}
        self._profile = tel.profiler.enabled
        if tel.enabled:
            self._m_packet_ins = tel.metrics.counter(
                "controller_packet_ins_total",
                "Packet-in messages dispatched to apps",
            )
            self._m_pi_delay = tel.metrics.histogram(
                "controller_packet_in_delay_seconds",
                "Queueing delay between packet-in arrival and dispatch",
            )
            self._m_resyncs = tel.metrics.counter(
                "controller_resyncs_total",
                "Flow-table resyncs completed after a reconnect",
            )
            self._m_resync_flows = tel.metrics.counter(
                "controller_resync_flows_total",
                "Flow entries touched by resyncs",
                ("action",),
            )
            self._g_stale = tel.metrics.gauge(
                "controller_stale_switches",
                "Switches currently disconnected but remembered",
            )
        else:
            self._m_packet_ins = self._m_pi_delay = None
            self._m_resyncs = self._m_resync_flows = self._g_stale = None

    # ------------------------------------------------------------------
    # Event bus
    # ------------------------------------------------------------------
    def subscribe(self, event_type: Type[Event],
                  handler: Callable[[Event], None],
                  owner: str = "-") -> None:
        """Register ``handler``; ``owner`` names the app for telemetry."""
        self._subscribers.setdefault(event_type, []).append((handler, owner))

    def publish(self, event: Event) -> None:
        self.events_published += 1
        handlers = self._subscribers.get(type(event), ())
        if not self._profile and self._trace_ctx is None:
            for handler, _owner in handlers:
                handler(event)
            return
        event_name = type(event).__name__
        tracer = self.telemetry.tracer
        profiler = self.telemetry.profiler
        for handler, owner in handlers:
            sim_t0 = self.sim.now
            wall_t0 = time.perf_counter() if self._profile else 0.0
            app_span = None
            outer_span = self._trace_span
            if self._trace_ctx is not None:
                # Recorded *before* the handler so flow-mod/packet-out
                # spans emitted inside it nest under the app span.  No
                # wall time in attrs: trace output must stay
                # deterministic across identical-seed runs.
                app_span = tracer.record(
                    self._trace_ctx, f"app.{owner}", "app",
                    start=sim_t0, parent=outer_span,
                    app=owner, event=event_name)
                self._trace_span = app_span
            try:
                handler(event)
            finally:
                self._trace_span = outer_span
            if self._profile:
                profiler.record(owner, event_name,
                                time.perf_counter() - wall_t0)
            if app_span is not None:
                tracer.end_span(self._trace_ctx, app_span)

    # ------------------------------------------------------------------
    # App lifecycle
    # ------------------------------------------------------------------
    def add_app(self, app: App) -> App:
        """Register and start an app; replays SwitchEnter for live switches."""
        self.apps.append(app)
        app.start(self)
        for handle in self.switches.values():
            app.on_switch_enter(handle)
        return app

    def get_app(self, app_type: Type[App]) -> Optional[App]:
        for app in self.apps:
            if isinstance(app, app_type):
                return app
        return None

    # ------------------------------------------------------------------
    # Channel intake
    # ------------------------------------------------------------------
    def accept_channel(self, channel: ControlChannel) -> None:
        """Claim the controller end of ``channel`` and start the handshake.

        The channel may be connected before or after this call.
        """
        endpoint = channel.controller_end
        endpoint.handler = lambda msg: self._handle(endpoint, msg)
        endpoint.on_connect = lambda: endpoint.send(Hello())
        endpoint.on_disconnect = lambda: self._on_channel_down(endpoint)
        if channel.connected:
            endpoint.send(Hello())

    def _on_channel_down(self, endpoint: ChannelEndpoint) -> None:
        handle = self._endpoint_switch.pop(endpoint, None)
        if handle is None:
            return
        handle.connected = False
        self.switches.pop(handle.dpid, None)
        # Graceful degradation: remember the switch instead of forgetting
        # it.  SwitchLeave still fires so discovery tears its links down
        # and routing apps re-path around it; the retained handle's port
        # map seeds the reconciliation when the dpid comes back.
        self._stale[handle.dpid] = handle
        if self._g_stale is not None:
            self._g_stale.set(len(self._stale))
        self.publish(SwitchLeave(handle.dpid))

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _handle(self, endpoint: ChannelEndpoint, msg: Message) -> None:
        if isinstance(msg, Hello):
            endpoint.request(FeaturesRequest(),
                             lambda reply: self._on_features(endpoint, reply),
                             timeout=self.handshake_timeout,
                             retries=self.handshake_retries)
            return
        if isinstance(msg, EchoRequest):
            reply = EchoReply(msg.data)
            reply.xid = msg.xid
            endpoint.send(reply)
            return
        handle = self._endpoint_switch.get(endpoint)
        if handle is None:
            return  # pre-handshake noise
        if isinstance(msg, PacketIn):
            self._enqueue_packet_in(handle, msg)
        elif isinstance(msg, FlowRemoved):
            self._on_flow_removed_msg(handle, msg)
        elif isinstance(msg, PortStatus):
            port = msg.port
            handle.ports[port.number] = port
            self.publish(PortStatusEvent(handle, port.number, port.up))
        elif isinstance(msg, Error):
            self.publish(ErrorEvent(handle, msg.code, msg.detail))
        # Stats and barrier replies ride the xid request path.

    def _on_flow_removed_msg(self, handle: SwitchHandle,
                             msg: FlowRemoved) -> None:
        # The switch no longer holds this entry: drop the intent too,
        # or the next resync would resurrect an expired flow.
        flows = self._ledger.get(handle.dpid)
        if flows is not None:
            flows.pop((msg.table_id, msg.priority, msg.match), None)
        self.publish(FlowRemovedEvent(
            handle, msg.table_id, msg.match, msg.priority, msg.cookie,
            msg.reason, msg.duration, msg.packet_count, msg.byte_count,
        ))

    def _on_features(self, endpoint: ChannelEndpoint,
                     reply: Message) -> None:
        if not isinstance(reply, FeaturesReply):
            return  # handshake failed (channel down / retries exhausted)
        handle = SwitchHandle(self, endpoint, reply)
        stale = self._stale.pop(handle.dpid, None)
        if self._g_stale is not None:
            self._g_stale.set(len(self._stale))
        self.switches[handle.dpid] = handle
        self._endpoint_switch[endpoint] = handle
        self.publish(SwitchEnter(handle))
        if stale is not None:
            self._reconcile_ports(handle, stale)
            self._start_resync(handle)

    # ------------------------------------------------------------------
    # Reconnect reconciliation (PROTOCOL.md §9)
    # ------------------------------------------------------------------
    def _reconcile_ports(self, handle: SwitchHandle,
                         stale: SwitchHandle) -> None:
        """Publish PortStatus deltas accumulated while the dpid was away.

        A port that died during the outage produced no PortStatus on the
        (dead) channel; the fresh FeaturesReply is the first truth we see.
        Publishing the diff lets discovery kill the adjacency immediately
        instead of waiting out its link timeout.
        """
        for number, port in handle.ports.items():
            old = stale.ports.get(number)
            if old is None or old.up != port.up:
                self.publish(PortStatusEvent(handle, number, port.up))
        for number in stale.ports:
            if number not in handle.ports:
                self.publish(PortStatusEvent(handle, number, False))

    def _start_resync(self, handle: SwitchHandle) -> None:
        """Reconcile the switch's flow tables against the intent ledger."""
        handle.request_stats(
            StatsKind.FLOW,
            lambda reply: self._on_resync_stats(handle, reply),
            timeout=self.resync_timeout,
            retries=self.resync_retries,
            on_failure=lambda _err: self._on_resync_failed(handle),
        )

    def _on_resync_failed(self, handle: SwitchHandle) -> None:
        self.resync_failures += 1
        # The channel died again mid-resync; the next reconnect restarts
        # the reconciliation from scratch, so nothing else to do here.

    def _on_resync_stats(self, handle: SwitchHandle,
                         reply: StatsReply) -> None:
        if not isinstance(reply, StatsReply):
            return
        intended = self._ledger.get(handle.dpid, {})
        actual = {(e.table_id, e.priority, e.match) for e in reply.entries}
        reinstalled = deleted = 0
        for key in list(intended):
            if key in actual:
                continue
            spec = intended[key]
            if spec["idle_timeout"] or spec["hard_timeout"]:
                # The switch legitimately expired it while we were away;
                # resurrect the intent and we would pin a dead flow.
                del intended[key]
                self.resync_pruned += 1
                continue
            handle.add_flow(**spec)
            reinstalled += 1
        for table_id, priority, match in actual - set(intended):
            handle.delete_flows(match=match, table_id=table_id,
                                priority=priority, strict=True)
            deleted += 1
        self.resyncs += 1
        self.resync_reinstalled += reinstalled
        self.resync_deleted += deleted
        if self._m_resyncs is not None:
            self._m_resyncs.inc()
            self._m_resync_flows.labels("reinstalled").inc(reinstalled)
            self._m_resync_flows.labels("deleted").inc(deleted)
        pending = self._resync_trace.pop(handle.dpid, None)
        if pending is not None:
            tid, parent, started = pending
            self.telemetry.tracer.record(
                tid, "cluster.resync", "cluster", start=started,
                parent=parent, dpid=handle.dpid,
                reinstalled=reinstalled, deleted=deleted)
        self.publish(ResyncDone(handle, reinstalled, deleted))

    # ------------------------------------------------------------------
    # Intent ledger
    # ------------------------------------------------------------------
    def _ledger_record(self, dpid: int, match: Match, actions: List[Action],
                       priority: int, table_id: int, idle_timeout: float,
                       hard_timeout: float, cookie: int,
                       goto_table: Optional[int],
                       notify_removed: bool) -> None:
        self._ledger.setdefault(dpid, {})[(table_id, priority, match)] = {
            "match": match,
            "actions": list(actions),
            "priority": priority,
            "table_id": table_id,
            "idle_timeout": idle_timeout,
            "hard_timeout": hard_timeout,
            "cookie": cookie,
            "goto_table": goto_table,
            "notify_removed": notify_removed,
        }

    def _ledger_forget(self, dpid: int, match: Match, table_id: int,
                       priority: int, strict: bool) -> None:
        flows = self._ledger.get(dpid)
        if not flows:
            return
        if strict:
            flows.pop((table_id, priority, match), None)
            return
        # Non-strict mirrors FlowTable.delete: every entry in the table
        # whose match is a subset of the given pattern goes.
        doomed = [key for key in flows
                  if key[0] == table_id and key[2].is_subset_of(match)]
        for key in doomed:
            del flows[key]

    def intended_flows(self, dpid: int) -> int:
        """Number of ledger entries for ``dpid`` (introspection/tests)."""
        return len(self._ledger.get(dpid, ()))

    # -- packet-in compute model ---------------------------------------
    def _enqueue_packet_in(self, handle: SwitchHandle,
                           msg: PacketIn) -> None:
        arrival = self.sim.now
        trace_id = None
        trace_parent = None
        if self.telemetry.tracing:
            trace_id, sent_at = self.telemetry.tracer.adopt(
                ("packet_in", msg.in_port, msg.data)
            )
            if trace_id is not None:
                trace_parent = self.telemetry.tracer.record(
                    trace_id, "channel.packet_in", "channel",
                    start=sent_at, end=arrival, dpid=handle.dpid,
                )
        if self.packet_in_service_time <= 0:
            self._process_packet_in(handle, msg, arrival, trace_id,
                                    trace_parent)
            return
        start = max(arrival, self._cpu_free_at)
        finish = start + self.packet_in_service_time
        self._cpu_free_at = finish
        self.sim.schedule_at(finish, self._process_packet_in,
                             handle, msg, arrival, trace_id, trace_parent)

    def _process_packet_in(self, handle: SwitchHandle, msg: PacketIn,
                           arrival: float,
                           trace_id: Optional[int] = None,
                           trace_parent: Optional[int] = None) -> None:
        self.packet_ins_handled += 1
        delay = self.sim.now - arrival
        self.packet_in_delays.append(delay)
        if self._m_packet_ins is not None:
            self._m_packet_ins.inc()
            self._m_pi_delay.observe(delay)
        packet = Packet.decode(msg.data)
        dispatch_span = None
        if trace_id is not None:
            packet.trace_id = trace_id
            dispatch_span = self.telemetry.tracer.record(
                trace_id, "controller.dispatch", "controller",
                start=arrival, parent=trace_parent,
                dpid=handle.dpid, reason=msg.reason,
            )
        self._trace_ctx = trace_id
        self._trace_span = dispatch_span
        try:
            self.publish(PacketInEvent(handle, msg.in_port, packet,
                                       msg.reason))
        finally:
            self._trace_ctx = None
            self._trace_span = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def switch_count(self) -> int:
        return len(self.switches)

    def switch(self, dpid: int) -> SwitchHandle:
        handle = self.switches.get(dpid)
        if handle is None:
            raise ControllerError(f"no connected switch with dpid {dpid}")
        return handle

    def __repr__(self) -> str:
        return (
            f"<Controller {self.name!r}: {len(self.switches)} switches, "
            f"{len(self.apps)} apps>"
        )
