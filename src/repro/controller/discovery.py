"""LLDP-based topology discovery.

The discovery app periodically sends an LLDP frame out of every port of
every connected switch; receiving one back on another switch proves a
unidirectional link.  Links age out when probes stop arriving, and port-
down events remove them immediately (the fast path that failure-recovery
experiments measure).

The discovered graph is exposed as a :mod:`networkx` graph for the path
service, and edge-port classification feeds the host tracker.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

import networkx as nx

from repro.controller.core import App, SwitchHandle
from repro.controller.events import (
    LinkDiscovered,
    LinkVanished,
    PortStatusEvent,
)
from repro.dataplane.actions import Output, PORT_CONTROLLER
from repro.dataplane.match import Match
from repro.packet import Ethernet, EtherType, LLDP, LLDP_MULTICAST
from repro.southbound.codec import FrameCache

__all__ = ["TopologyDiscovery", "DiscoveredLink"]

#: Priority for the punt-LLDP-to-controller rule; above everything else.
LLDP_RULE_PRIORITY = 65000


class DiscoveredLink:
    """A unidirectional switch-to-switch adjacency."""

    __slots__ = ("src_dpid", "src_port", "dst_dpid", "dst_port",
                 "last_seen")

    def __init__(self, src_dpid: int, src_port: int, dst_dpid: int,
                 dst_port: int, last_seen: float) -> None:
        self.src_dpid = src_dpid
        self.src_port = src_port
        self.dst_dpid = dst_dpid
        self.dst_port = dst_port
        self.last_seen = last_seen

    def key(self) -> Tuple[int, int]:
        return (self.src_dpid, self.src_port)

    def __repr__(self) -> str:
        return (
            f"<Link {self.src_dpid}:{self.src_port} -> "
            f"{self.dst_dpid}:{self.dst_port}>"
        )


class TopologyDiscovery(App):
    """Maintains the switch-level topology via LLDP probing."""

    name = "discovery"

    def __init__(self, probe_interval: float = 1.0,
                 link_timeout: float = 3.5,
                 jitter: float = 0.01) -> None:
        super().__init__()
        self.probe_interval = probe_interval
        self.link_timeout = link_timeout
        # Cluster nodes pass jitter=0.0: jittered timers draw the main
        # RNG per re-arm, which would make the draw count depend on the
        # number of controller instances.
        self.jitter = jitter
        #: (src_dpid, src_port) -> DiscoveredLink
        self.links: Dict[Tuple[int, int], DiscoveredLink] = {}
        #: Hook fired on every *locally observed* probe (new or refresh);
        #: the cluster layer uses it to replicate liveness east-west.
        self.on_link_seen: Optional[Callable[[DiscoveredLink], None]] = None
        self._stop_probe: Optional[Callable[[], None]] = None
        # Probe frames are a pure function of (dpid, port, mac, ttl), so
        # build and encode each one exactly once across all intervals.
        self._frames = FrameCache()

    def start(self, controller) -> None:
        super().start(controller)
        self._stop_probe = controller.sim.call_every(
            self.probe_interval, self._probe_all, jitter=self.jitter
        )

    def stop(self) -> None:
        if self._stop_probe is not None:
            self._stop_probe()
            self._stop_probe = None

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def on_switch_enter(self, switch: SwitchHandle) -> None:
        # Make sure LLDP always reaches the controller, even when other
        # apps install wildcard rules below this priority.
        switch.add_flow(
            Match(eth_type=EtherType.LLDP),
            [Output(PORT_CONTROLLER)],
            priority=LLDP_RULE_PRIORITY,
        )
        self._probe_switch(switch)

    def on_switch_leave(self, dpid: int) -> None:
        self._remove_links([
            k for k, l in self.links.items()
            if l.src_dpid == dpid or l.dst_dpid == dpid
        ])

    def _probe_all(self) -> None:
        for switch in list(self.controller.switches.values()):
            self._probe_switch(switch)
        self._age_links()

    def _probe_switch(self, switch: SwitchHandle) -> None:
        ttl = int(self.link_timeout) + 1
        for port in switch.ports.values():
            if not port.up:
                continue
            frame, encoded = self._frames.get(
                (switch.dpid, port.number, port.mac_bytes, ttl),
                lambda: self._build_probe(switch.dpid, port, ttl),
            )
            switch.packet_out(frame, [Output(port.number)],
                              encoded=encoded)

    @staticmethod
    def _build_probe(dpid: int, port, ttl: int):
        frame = (
            Ethernet(dst=LLDP_MULTICAST, src=port.mac_bytes)
            / LLDP(chassis_id=dpid, port_id=port.number, ttl=ttl)
        )
        return frame, frame.encode()

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def on_packet_in(self, event) -> None:
        lldp = event.packet.get(LLDP)
        if lldp is None:
            return
        self.observe_link(lldp.chassis_id, lldp.port_id,
                          event.switch.dpid, event.in_port)

    def observe_link(self, src_dpid: int, src_port: int, dst_dpid: int,
                     dst_port: int, local: bool = True) -> None:
        """Record an adjacency observation (probe or replicated).

        ``local=False`` marks a sighting replicated from a cluster peer:
        it is applied identically but not re-announced via
        :attr:`on_link_seen`, which would echo it around the bus.
        """
        key = (src_dpid, src_port)
        now = self.sim.now
        existing = self.links.get(key)
        if existing is not None:
            existing.last_seen = now
            if (existing.dst_dpid == dst_dpid
                    and existing.dst_port == dst_port):
                if local and self.on_link_seen is not None:
                    self.on_link_seen(existing)
                return
            # The far end changed (rewiring): replace the link.
            self._remove_links([key])
        link = DiscoveredLink(src_dpid, src_port, dst_dpid, dst_port, now)
        self.links[key] = link
        self.controller.publish(LinkDiscovered(
            link.src_dpid, link.src_port, link.dst_dpid, link.dst_port
        ))
        if local and self.on_link_seen is not None:
            self.on_link_seen(link)

    def _age_links(self) -> None:
        now = self.sim.now
        self._remove_links([
            key for key, link in self.links.items()
            if now - link.last_seen > self.link_timeout
        ])

    def on_port_status(self, event: PortStatusEvent) -> None:
        if event.up:
            return
        dpid, port_no = event.switch.dpid, event.port_no
        # A dead port kills the adjacency in both directions at once:
        # LLDP cannot be sent or received there, and publishing a
        # half-removed state would let subscribers compute paths over a
        # link that is already known dead.
        doomed = set()
        for key, link in self.links.items():
            if (link.src_dpid, link.src_port) == (dpid, port_no):
                doomed.add(key)
                doomed.add((link.dst_dpid, link.dst_port))
            elif (link.dst_dpid, link.dst_port) == (dpid, port_no):
                doomed.add(key)
                doomed.add((link.src_dpid, link.src_port))
        self._remove_links(doomed)

    def _remove_links(self, keys) -> None:
        """Remove a batch atomically: state first, events second."""
        removed = []
        for key in keys:
            link = self.links.pop(key, None)
            if link is not None:
                removed.append(link)
        for link in removed:
            self.controller.publish(LinkVanished(
                link.src_dpid, link.src_port, link.dst_dpid, link.dst_port
            ))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def graph(self) -> nx.Graph:
        """An undirected switch graph with per-edge port annotations.

        An edge exists once either direction has been observed; edge
        attribute ``ports`` maps each endpoint dpid to its local port.
        """
        g = nx.Graph()
        for dpid in self.controller.switches:
            g.add_node(dpid)
        for link in self.links.values():
            g.add_edge(
                link.src_dpid, link.dst_dpid,
                ports={link.src_dpid: link.src_port,
                       link.dst_dpid: link.dst_port},
            )
        return g

    def port_toward(self, src_dpid: int, dst_dpid: int) -> Optional[int]:
        """The port on ``src_dpid`` that reaches neighbour ``dst_dpid``."""
        for link in self.links.values():
            if link.src_dpid == src_dpid and link.dst_dpid == dst_dpid:
                return link.src_port
        return None

    def switch_ports_in_use(self, dpid: int) -> Set[int]:
        """Ports of ``dpid`` known to face another switch."""
        used: Set[int] = set()
        for link in self.links.values():
            if link.src_dpid == dpid:
                used.add(link.src_port)
            if link.dst_dpid == dpid:
                used.add(link.dst_port)
        return used

    def is_edge_port(self, dpid: int, port_no: int) -> bool:
        """True when no discovered link uses this port (host-facing)."""
        return port_no not in self.switch_ports_in_use(dpid)

    @property
    def link_count(self) -> int:
        return len(self.links)
