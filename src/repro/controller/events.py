"""Controller-side event types published on the event bus.

Apps subscribe to these; the controller core and the built-in services
(discovery, host tracker, stats poller) publish them.  Events are plain
value objects — no behaviour — so they can be logged, asserted on in
tests, and replayed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.packet import IPv4Address, MACAddress, Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.controller.core import SwitchHandle

__all__ = [
    "Event",
    "SwitchEnter",
    "SwitchLeave",
    "ResyncDone",
    "PacketInEvent",
    "FlowRemovedEvent",
    "PortStatusEvent",
    "ErrorEvent",
    "LinkDiscovered",
    "LinkVanished",
    "HostDiscovered",
    "HostMoved",
    "PortStatsUpdate",
]


class Event:
    """Base class; exists so the bus can type-check subscriptions."""

    def fields(self) -> dict:
        return {k: v for k, v in vars(self).items() if not k.startswith("_")}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields().items())
        return f"{type(self).__name__}({inner})"


class SwitchEnter(Event):
    """A switch completed the handshake and is ready to be programmed."""

    def __init__(self, switch: "SwitchHandle") -> None:
        self.switch = switch


class SwitchLeave(Event):
    """A switch's control channel went down."""

    def __init__(self, dpid: int) -> None:
        self.dpid = dpid


class ResyncDone(Event):
    """A reconnect reconciliation finished for one switch.

    Published after the controller has reinstalled every intended flow
    missing from the switch and strict-deleted the unintended ones —
    the moment the dataplane is supposed to be consistent again, which
    makes it a natural trigger for invariant re-checking.
    """

    def __init__(self, switch: "SwitchHandle", reinstalled: int,
                 deleted: int) -> None:
        self.switch = switch
        self.reinstalled = reinstalled
        self.deleted = deleted


class PacketInEvent(Event):
    """A punted packet, already decoded for the apps' convenience."""

    def __init__(self, switch: "SwitchHandle", in_port: int,
                 packet: Packet, reason: str) -> None:
        self.switch = switch
        self.in_port = in_port
        self.packet = packet
        self.reason = reason


class FlowRemovedEvent(Event):
    def __init__(self, switch: "SwitchHandle", table_id: int, match,
                 priority: int, cookie: int, reason: str,
                 duration: float, packet_count: int,
                 byte_count: int) -> None:
        self.switch = switch
        self.table_id = table_id
        self.match = match
        self.priority = priority
        self.cookie = cookie
        self.reason = reason
        self.duration = duration
        self.packet_count = packet_count
        self.byte_count = byte_count


class PortStatusEvent(Event):
    def __init__(self, switch: "SwitchHandle", port_no: int,
                 up: bool) -> None:
        self.switch = switch
        self.port_no = port_no
        self.up = up


class ErrorEvent(Event):
    def __init__(self, switch: "SwitchHandle", code: int,
                 detail: str) -> None:
        self.switch = switch
        self.code = code
        self.detail = detail


class LinkDiscovered(Event):
    """Discovery confirmed a unidirectional switch-to-switch link."""

    def __init__(self, src_dpid: int, src_port: int, dst_dpid: int,
                 dst_port: int) -> None:
        self.src_dpid = src_dpid
        self.src_port = src_port
        self.dst_dpid = dst_dpid
        self.dst_port = dst_port


class LinkVanished(Event):
    """A previously discovered link is gone (port down or LLDP aged out)."""

    def __init__(self, src_dpid: int, src_port: int, dst_dpid: int,
                 dst_port: int) -> None:
        self.src_dpid = src_dpid
        self.src_port = src_port
        self.dst_dpid = dst_dpid
        self.dst_port = dst_port


class HostDiscovered(Event):
    """The host tracker located an end host at an edge port."""

    def __init__(self, mac: MACAddress, ip: Optional[IPv4Address],
                 dpid: int, port: int) -> None:
        self.mac = mac
        self.ip = ip
        self.dpid = dpid
        self.port = port


class HostMoved(Event):
    """A known host reappeared at a different attachment point."""

    def __init__(self, mac: MACAddress, old_dpid: int, old_port: int,
                 dpid: int, port: int) -> None:
        self.mac = mac
        self.old_dpid = old_dpid
        self.old_port = old_port
        self.dpid = dpid
        self.port = port


class PortStatsUpdate(Event):
    """A fresh port-stats sample set from the stats poller."""

    def __init__(self, dpid: int, entries: list, interval: float,
                 elapsed: Optional[float] = None) -> None:
        self.dpid = dpid
        self.entries = entries
        #: The poller's nominal sampling interval (configuration).
        self.interval = interval
        #: Measured time since the previous reply from this switch —
        #: what rate computations should divide by, since replies can be
        #: delayed by channel congestion.  ``None`` on the first sample.
        self.elapsed = elapsed
