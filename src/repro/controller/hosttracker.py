"""Host location tracking.

The tracker watches packet-ins: any frame whose source MAC appears on an
*edge* port (one discovery has not claimed for a switch-to-switch link)
pins that host to (dpid, port).  ARP and IPv4 headers contribute the IP
binding.  Hosts that show up elsewhere trigger :class:`HostMoved` —
exactly the signal mobility-aware apps need.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.controller.core import App
from repro.controller.discovery import TopologyDiscovery
from repro.controller.events import HostDiscovered, HostMoved
from repro.errors import ControllerError
from repro.packet import ARP, IPv4, IPv4Address, LLDP, MACAddress, Ethernet

__all__ = ["HostTracker", "HostEntry"]


class HostEntry:
    """Everything known about one end host."""

    __slots__ = ("mac", "ip", "dpid", "port", "last_seen")

    def __init__(self, mac: MACAddress, ip: Optional[IPv4Address],
                 dpid: int, port: int, last_seen: float) -> None:
        self.mac = mac
        self.ip = ip
        self.dpid = dpid
        self.port = port
        self.last_seen = last_seen

    @property
    def location(self):
        return (self.dpid, self.port)

    def __repr__(self) -> str:
        return (
            f"<HostEntry {self.mac} ip={self.ip} "
            f"at {self.dpid}:{self.port}>"
        )


class HostTracker(App):
    """Learns host attachment points from dataplane packet-ins."""

    name = "hosttracker"

    def __init__(self,
                 discovery: Optional[TopologyDiscovery] = None) -> None:
        super().__init__()
        self._discovery = discovery
        self.hosts_by_mac: Dict[MACAddress, HostEntry] = {}
        self.hosts_by_ip: Dict[IPv4Address, HostEntry] = {}
        #: MACs that must never be tracked as hosts (virtual addresses
        #: owned by apps, e.g. a load balancer's VIP MAC).
        self._excluded: set = set()

    def start(self, controller) -> None:
        super().start(controller)
        if self._discovery is None:
            self._discovery = controller.get_app(TopologyDiscovery)

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def on_packet_in(self, event) -> None:
        packet = event.packet
        if packet.get(LLDP) is not None:
            return  # switch chatter, not a host
        eth = packet.get(Ethernet)
        if eth is None or eth.src.is_multicast or eth.src in self._excluded:
            return
        dpid, port = event.switch.dpid, event.in_port
        if (self._discovery is not None
                and not self._discovery.is_edge_port(dpid, port)):
            return  # frame relayed through the core; not an attachment
        ip: Optional[IPv4Address] = None
        arp = packet.get(ARP)
        if arp is not None and arp.sender_mac == eth.src:
            ip = arp.sender_ip
        else:
            ipv4 = packet.get(IPv4)
            if ipv4 is not None:
                ip = ipv4.src
        self._learn(eth.src, ip, dpid, port)

    def _learn(self, mac: MACAddress, ip: Optional[IPv4Address],
               dpid: int, port: int) -> None:
        now = self.sim.now
        entry = self.hosts_by_mac.get(mac)
        if entry is None:
            entry = HostEntry(mac, ip, dpid, port, now)
            self.hosts_by_mac[mac] = entry
            if ip is not None:
                self.hosts_by_ip[ip] = entry
            self.controller.publish(HostDiscovered(mac, ip, dpid, port))
            return
        entry.last_seen = now
        if ip is not None and entry.ip != ip:
            if entry.ip is not None:
                self.hosts_by_ip.pop(entry.ip, None)
            entry.ip = ip
            self.hosts_by_ip[ip] = entry
        if entry.location != (dpid, port):
            old_dpid, old_port = entry.location
            entry.dpid, entry.port = dpid, port
            self.controller.publish(HostMoved(
                mac, old_dpid, old_port, dpid, port
            ))

    def exclude_mac(self, mac) -> None:
        """Never track ``mac`` as a host (apps' virtual addresses).

        Any entry already learned for it is forgotten.
        """
        mac = MACAddress(mac)
        self._excluded.add(mac)
        entry = self.hosts_by_mac.pop(mac, None)
        if entry is not None and entry.ip is not None:
            self.hosts_by_ip.pop(entry.ip, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def lookup_mac(self, mac) -> Optional[HostEntry]:
        return self.hosts_by_mac.get(MACAddress(mac))

    def lookup_ip(self, ip) -> Optional[HostEntry]:
        return self.hosts_by_ip.get(IPv4Address(ip))

    def require_ip(self, ip) -> HostEntry:
        entry = self.lookup_ip(ip)
        if entry is None:
            raise ControllerError(f"host with IP {ip} is unknown")
        return entry

    @property
    def host_count(self) -> int:
        return len(self.hosts_by_mac)
