"""An ONOS-style intent framework.

Intents are declarative connectivity requests ("host A talks to host B")
that the service *compiles* into flow rules against the current topology
and *keeps satisfied* as the network changes: link failures, host moves,
and switch departures all trigger recompilation of exactly the affected
intents.  Benchmark E8 measures that reconvergence.

Flow rules installed on behalf of an intent carry the intent id as their
cookie, so withdrawal and rerouting can remove them surgically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.controller.core import App
from repro.controller.discovery import TopologyDiscovery
from repro.controller.events import (
    HostMoved,
    LinkDiscovered,
    LinkVanished,
    SwitchLeave,
)
from repro.controller.hosttracker import HostTracker
from repro.controller.pathing import PathService
from repro.dataplane.actions import Output
from repro.dataplane.match import Match
from repro.errors import ControllerError, IntentError
from repro.packet import IPv4Address, MACAddress

__all__ = ["Intent", "HostToHostIntent", "IntentService", "IntentState"]

#: Priority used for intent rules.
INTENT_PRIORITY = 30000


class IntentState:
    SUBMITTED = "submitted"
    INSTALLED = "installed"
    FAILED = "failed"
    WITHDRAWN = "withdrawn"


class Intent:
    """Base class for declarative connectivity requests."""

    _next_id = 1

    def __init__(self) -> None:
        self.intent_id = Intent._next_id
        Intent._next_id += 1
        self.state = IntentState.SUBMITTED
        #: Rules currently installed: (dpid, match, priority, table_id).
        self.installed_rules: List[Tuple[int, Match, int, int]] = []
        #: dpid paths in use (for failure impact analysis).
        self.paths: List[List[int]] = []
        self.reroutes = 0

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} id={self.intent_id} "
            f"state={self.state}>"
        )


class HostToHostIntent(Intent):
    """Bidirectional L2 connectivity between two known hosts."""

    def __init__(self, src_mac: MACAddress, dst_mac: MACAddress) -> None:
        super().__init__()
        self.src_mac = MACAddress(src_mac)
        self.dst_mac = MACAddress(dst_mac)

    def endpoints(self) -> Tuple[MACAddress, MACAddress]:
        return self.src_mac, self.dst_mac


class IntentService(App):
    """Compiles and maintains intents against the live topology."""

    name = "intents"

    def __init__(self, discovery: Optional[TopologyDiscovery] = None,
                 host_tracker: Optional[HostTracker] = None) -> None:
        super().__init__()
        self._discovery = discovery
        self._tracker = host_tracker
        self._paths: Optional[PathService] = None
        self.intents: Dict[int, Intent] = {}
        #: Running count of recompilations caused by topology churn.
        self.reroute_events = 0
        #: Sim times at which a reroute batch finished (barrier-acked).
        self.reroute_done_times: List[float] = []

    def start(self, controller) -> None:
        super().start(controller)
        if self._discovery is None:
            self._discovery = controller.get_app(TopologyDiscovery)
        if self._tracker is None:
            self._tracker = controller.get_app(HostTracker)
        if self._discovery is None or self._tracker is None:
            raise IntentError(
                "IntentService needs TopologyDiscovery and HostTracker"
            )
        self._paths = PathService(self._discovery)
        controller.subscribe(LinkVanished, self._on_link_vanished,
                             owner=self.name)
        controller.subscribe(LinkDiscovered, self._on_link_discovered,
                             owner=self.name)
        controller.subscribe(HostMoved, self._on_host_moved,
                             owner=self.name)
        controller.subscribe(SwitchLeave, self._on_switch_leave_event,
                             owner=self.name)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, intent: Intent) -> Intent:
        """Register ``intent`` and try to satisfy it immediately."""
        self.intents[intent.intent_id] = intent
        self._compile(intent)
        return intent

    def connect_hosts(self, src_mac, dst_mac) -> HostToHostIntent:
        """Convenience: submit a host-to-host intent by MAC."""
        return self.submit(HostToHostIntent(MACAddress(src_mac),
                                            MACAddress(dst_mac)))

    def connect_ips(self, src_ip, dst_ip) -> HostToHostIntent:
        """Convenience: submit a host-to-host intent by IP.

        Both hosts must already be known to the host tracker.
        """
        src = self._tracker.require_ip(IPv4Address(src_ip))
        dst = self._tracker.require_ip(IPv4Address(dst_ip))
        return self.connect_hosts(src.mac, dst.mac)

    def withdraw(self, intent_id: int) -> None:
        intent = self.intents.pop(intent_id, None)
        if intent is None:
            raise IntentError(f"no intent with id {intent_id}")
        self._uninstall(intent)
        intent.state = IntentState.WITHDRAWN

    def installed_count(self) -> int:
        return sum(1 for i in self.intents.values()
                   if i.state == IntentState.INSTALLED)

    def failed_count(self) -> int:
        return sum(1 for i in self.intents.values()
                   if i.state == IntentState.FAILED)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile(self, intent: Intent) -> None:
        """(Re)satisfy an intent, make-before-break.

        New-path rules are installed before old-path rules are removed,
        so a *planned* reroute (host move, better path appearing) never
        black-holes in-flight traffic.  Failure reroutes get the same
        treatment for free — the stale rules point into the dead link
        anyway and are removed once the new ones are in.
        """
        if not isinstance(intent, HostToHostIntent):
            raise IntentError(
                f"cannot compile intent type {type(intent).__name__}"
            )
        old_rules = list(intent.installed_rules)
        src = self._tracker.lookup_mac(intent.src_mac)
        dst = self._tracker.lookup_mac(intent.dst_mac)
        if src is None or dst is None:
            self._uninstall(intent)
            intent.state = IntentState.FAILED
            return
        if src.dpid == dst.dpid:
            path = [src.dpid]
        else:
            path = self._paths.shortest_path(src.dpid, dst.dpid)
            if path is None:
                self._uninstall(intent)
                intent.state = IntentState.FAILED
                return
        new_rules: List[Tuple[int, Match, int, int]] = []
        try:
            self._install_direction(intent, path, intent.src_mac,
                                    intent.dst_mac, dst.port, new_rules)
            self._install_direction(intent, list(reversed(path)),
                                    intent.dst_mac, intent.src_mac,
                                    src.port, new_rules)
        except ControllerError:
            # Discovery state moved under us (e.g. a port map went
            # stale mid-compile); clean up and retry on the next
            # topology event.
            intent.installed_rules = old_rules + new_rules
            self._uninstall(intent)
            intent.state = IntentState.FAILED
            return
        # Break after make: drop only the rules the new path no longer
        # uses.  (Per-switch channel FIFO guarantees the matching ADD
        # lands before any same-switch DELETE sent here.)
        fresh = set(new_rules)
        for rule in old_rules:
            if rule not in fresh:
                self._delete_rule(rule)
        intent.installed_rules = new_rules
        intent.paths = [path]
        intent.state = IntentState.INSTALLED

    def _install_direction(self, intent: Intent, path: List[int],
                           src_mac: MACAddress, dst_mac: MACAddress,
                           final_port: int,
                           out_rules: List[Tuple[int, Match, int, int]],
                           ) -> None:
        match = Match(eth_src=src_mac, eth_dst=dst_mac)
        hops = self._paths.path_ports(path) if len(path) > 1 else []
        hops.append((path[-1], final_port))
        for dpid, out_port in hops:
            switch = self.controller.switches.get(dpid)
            if switch is None:
                continue
            switch.add_flow(
                match,
                [Output(out_port)],
                priority=INTENT_PRIORITY,
                cookie=intent.intent_id,
            )
            out_rules.append((dpid, match, INTENT_PRIORITY, 0))

    def _delete_rule(self, rule: Tuple[int, Match, int, int]) -> None:
        dpid, match, priority, table_id = rule
        switch = self.controller.switches.get(dpid)
        if switch is not None:
            switch.delete_flows(match=match, table_id=table_id,
                                priority=priority, strict=True)

    def _uninstall(self, intent: Intent) -> None:
        for rule in intent.installed_rules:
            self._delete_rule(rule)
        intent.installed_rules = []
        intent.paths = []

    # ------------------------------------------------------------------
    # Reactions to topology churn
    # ------------------------------------------------------------------
    def _affected_by_link(self, dpid_a: int, dpid_b: int) -> List[Intent]:
        hit = []
        for intent in self.intents.values():
            if intent.state != IntentState.INSTALLED:
                continue
            for path in intent.paths:
                if self._paths.path_uses_link(path, dpid_a, dpid_b):
                    hit.append(intent)
                    break
        return hit

    def _recompile_batch(self, batch: List[Intent]) -> None:
        if not batch:
            return
        self.reroute_events += 1
        touched: set = set()
        for intent in batch:
            intent.reroutes += 1
            self._compile(intent)
            for dpid, *_ in intent.installed_rules:
                touched.add(dpid)
        self._await_barriers(touched)

    def _await_barriers(self, dpids: set) -> None:
        """Record the reroute-done time once every switch acks a barrier."""
        remaining = {d for d in dpids if d in self.controller.switches}
        if not remaining:
            self.reroute_done_times.append(self.sim.now)
            return

        def acked(dpid: int) -> None:
            remaining.discard(dpid)
            if not remaining:
                self.reroute_done_times.append(self.sim.now)

        for dpid in list(remaining):
            self.controller.switches[dpid].barrier(
                lambda d=dpid: acked(d)
            )

    def _on_link_vanished(self, event: LinkVanished) -> None:
        self._recompile_batch(
            self._affected_by_link(event.src_dpid, event.dst_dpid)
        )

    def _on_link_discovered(self, event: LinkDiscovered) -> None:
        failed = [i for i in self.intents.values()
                  if i.state == IntentState.FAILED]
        for intent in failed:
            self._compile(intent)

    def _on_host_moved(self, event: HostMoved) -> None:
        batch = [
            intent for intent in self.intents.values()
            if isinstance(intent, HostToHostIntent)
            and event.mac in intent.endpoints()
        ]
        self._recompile_batch(batch)

    def _on_switch_leave_event(self, event: SwitchLeave) -> None:
        batch = [
            intent for intent in self.intents.values()
            if intent.state == IntentState.INSTALLED
            and any(event.dpid in path for path in intent.paths)
        ]
        self._recompile_batch(batch)
