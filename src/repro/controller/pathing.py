"""Path computation over the discovered topology.

A thin service on top of :class:`TopologyDiscovery`'s graph offering the
three primitives every forwarding app needs: shortest path, k-shortest
paths (Yen), and the full equal-cost set for ECMP.  Paths are lists of
dpids; :meth:`PathService.path_ports` converts one into the (dpid,
out_port) hop list a flow programmer installs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.controller.discovery import TopologyDiscovery
from repro.errors import ControllerError

__all__ = ["PathService"]


class PathService:
    """Stateless path queries against the live discovery graph."""

    def __init__(self, discovery: TopologyDiscovery) -> None:
        self.discovery = discovery

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def shortest_path(self, src_dpid: int,
                      dst_dpid: int) -> Optional[List[int]]:
        """Hop-count shortest dpid path, or ``None`` if disconnected."""
        graph = self.discovery.graph()
        try:
            return nx.shortest_path(graph, src_dpid, dst_dpid)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def k_shortest_paths(self, src_dpid: int, dst_dpid: int,
                         k: int) -> List[List[int]]:
        """Up to ``k`` loop-free paths in non-decreasing length order."""
        if k < 1:
            raise ControllerError(f"k must be >= 1, got {k}")
        graph = self.discovery.graph()
        if src_dpid not in graph or dst_dpid not in graph:
            return []
        paths: List[List[int]] = []
        try:
            for path in nx.shortest_simple_paths(graph, src_dpid, dst_dpid):
                paths.append(path)
                if len(paths) >= k:
                    break
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return []
        return paths

    def ecmp_paths(self, src_dpid: int, dst_dpid: int,
                   limit: int = 16) -> List[List[int]]:
        """Every shortest path (up to ``limit``) — the ECMP set."""
        graph = self.discovery.graph()
        if src_dpid not in graph or dst_dpid not in graph:
            return []
        try:
            paths = []
            for path in nx.all_shortest_paths(graph, src_dpid, dst_dpid):
                paths.append(path)
                if len(paths) >= limit:
                    break
            return paths
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return []

    def distance(self, src_dpid: int, dst_dpid: int) -> Optional[int]:
        path = self.shortest_path(src_dpid, dst_dpid)
        return None if path is None else len(path) - 1

    # ------------------------------------------------------------------
    # Path -> forwarding hops
    # ------------------------------------------------------------------
    def path_ports(self, path: List[int]) -> List[Tuple[int, int]]:
        """Convert a dpid path into ``[(dpid, out_port), ...]`` hops.

        The final hop's host-facing port is not included (the caller
        knows the destination host's attachment port).
        """
        hops: List[Tuple[int, int]] = []
        for here, there in zip(path, path[1:]):
            port = self.discovery.port_toward(here, there)
            if port is None:
                raise ControllerError(
                    f"no known port from {here} toward {there}; "
                    "discovery may be stale"
                )
            hops.append((here, port))
        return hops

    def path_uses_link(self, path: List[int], dpid_a: int,
                       dpid_b: int) -> bool:
        """True when ``path`` traverses the (a, b) adjacency either way."""
        for here, there in zip(path, path[1:]):
            if {here, there} == {dpid_a, dpid_b}:
                return True
        return False
