"""Periodic statistics collection.

The poller requests port stats from every connected switch on a fixed
interval, derives per-port rates from consecutive samples, and publishes
:class:`PortStatsUpdate` events.  Traffic-engineering apps consume the
rates; tests and benchmarks read the time series directly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.controller.core import App, SwitchHandle
from repro.controller.events import PortStatsUpdate
from repro.southbound.messages import StatsKind, StatsReply

__all__ = ["StatsPoller", "PortRate"]


class PortRate:
    """Derived per-port rates between the last two samples."""

    __slots__ = ("dpid", "port", "rx_bps", "tx_bps", "rx_pps", "tx_pps")

    def __init__(self, dpid: int, port: int, rx_bps: float, tx_bps: float,
                 rx_pps: float, tx_pps: float) -> None:
        self.dpid = dpid
        self.port = port
        self.rx_bps = rx_bps
        self.tx_bps = tx_bps
        self.rx_pps = rx_pps
        self.tx_pps = tx_pps

    def __repr__(self) -> str:
        return (
            f"<PortRate {self.dpid}:{self.port} "
            f"tx={self.tx_bps / 1e6:.2f}Mbps rx={self.rx_bps / 1e6:.2f}Mbps>"
        )


class StatsPoller(App):
    """Polls port counters and derives rates."""

    name = "stats"

    def __init__(self, interval: float = 1.0,
                 request_timeout: float = 0.0) -> None:
        super().__init__()
        self.interval = interval
        #: With a timeout set, a lost poll fails fast instead of leaking
        #: a pending request; either way the next tick repolls.
        self.request_timeout = request_timeout
        self.poll_failures = 0
        #: (dpid, port) -> (time, rx_bytes, tx_bytes, rx_pkts, tx_pkts)
        self._last_sample: Dict[Tuple[int, int], Tuple] = {}
        #: (dpid, port) -> latest PortRate
        self.rates: Dict[Tuple[int, int], PortRate] = {}
        #: dpid -> time of its previous stats reply (measured, per switch).
        self._last_reply: Dict[int, float] = {}
        self._stop: Optional[Callable[[], None]] = None
        self._g_rx = None
        self._g_tx = None

    def start(self, controller) -> None:
        super().start(controller)
        tel = controller.telemetry
        if tel.enabled:
            self._g_rx = tel.metrics.gauge(
                "port_rx_bps", "Derived per-port receive rate",
                ("dpid", "port"),
            )
            self._g_tx = tel.metrics.gauge(
                "port_tx_bps", "Derived per-port transmit rate",
                ("dpid", "port"),
            )
        self._stop = controller.sim.call_every(
            self.interval, self._poll_all, jitter=0.01
        )

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    def _poll_all(self) -> None:
        for switch in list(self.controller.switches.values()):
            switch.request_stats(
                StatsKind.PORT,
                lambda reply, s=switch: self._on_reply(s, reply),
                timeout=self.request_timeout,
                on_failure=lambda _err: self._on_poll_failed(),
            )

    def _on_poll_failed(self) -> None:
        # Channel down or timed out; the periodic tick repolls, so the
        # failure only needs counting, not retrying.
        self.poll_failures += 1

    def _on_reply(self, switch: SwitchHandle, reply: StatsReply) -> None:
        if not isinstance(reply, StatsReply) or reply.kind != StatsKind.PORT:
            return
        now = self.sim.now
        last_reply = self._last_reply.get(switch.dpid)
        elapsed = None if last_reply is None else now - last_reply
        self._last_reply[switch.dpid] = now
        for entry in reply.entries:
            key = (switch.dpid, entry["port"])
            sample = (now, entry["rx_bytes"], entry["tx_bytes"],
                      entry["rx_packets"], entry["tx_packets"])
            last = self._last_sample.get(key)
            self._last_sample[key] = sample
            if last is None:
                continue
            dt = now - last[0]
            if dt <= 0:
                continue
            rate = PortRate(
                switch.dpid, entry["port"],
                rx_bps=(sample[1] - last[1]) * 8 / dt,
                tx_bps=(sample[2] - last[2]) * 8 / dt,
                rx_pps=(sample[3] - last[3]) / dt,
                tx_pps=(sample[4] - last[4]) / dt,
            )
            self.rates[key] = rate
            if self._g_rx is not None:
                labels = (str(switch.dpid), str(entry["port"]))
                self._g_rx.labels(*labels).set(rate.rx_bps)
                self._g_tx.labels(*labels).set(rate.tx_bps)
        self.controller.publish(PortStatsUpdate(
            switch.dpid, reply.entries, self.interval, elapsed=elapsed
        ))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rate(self, dpid: int, port: int) -> Optional[PortRate]:
        return self.rates.get((dpid, port))

    def busiest_ports(self, top_n: int = 5) -> List[PortRate]:
        ranked = sorted(self.rates.values(),
                        key=lambda r: max(r.tx_bps, r.rx_bps),
                        reverse=True)
        return ranked[:top_n]
