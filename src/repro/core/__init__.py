"""The platform layer: assembled stack and the northbound policy algebra."""

from repro.core.platform import ZenPlatform
from repro.core.policy import (
    Policy,
    Rule,
    compile_policy,
    drop,
    filter_,
    flood,
    fwd,
    ifte,
    install_policy,
    mod,
    punt,
)

__all__ = [
    "Policy",
    "Rule",
    "ZenPlatform",
    "compile_policy",
    "drop",
    "filter_",
    "flood",
    "fwd",
    "ifte",
    "install_policy",
    "mod",
    "punt",
]
