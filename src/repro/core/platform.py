"""ZenPlatform: the whole stack assembled with one call.

The platform is the top of the layering: it instantiates the emulated
network, a controller, the standard service apps (discovery, host
tracking, ARP proxying), and a forwarding profile — then connects every
switch's control channel.  Examples and benchmarks build on this instead
of re-wiring the stack by hand.

Profiles
--------
* ``reactive``  — L2 learning switch (flows installed on demand).
* ``proactive`` — all-pairs shortest-path routing, pre-installed.
* ``bare``      — services only; the caller adds its own apps.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.arp_proxy import ArpProxy
from repro.apps.learning_switch import LearningSwitch
from repro.apps.proactive_router import ProactiveRouter
from repro.controller.core import App, Controller
from repro.controller.discovery import TopologyDiscovery
from repro.controller.hosttracker import HostTracker
from repro.controller.intents import IntentService
from repro.errors import ControllerError
from repro.netem.network import Network
from repro.netem.topology import Topology
from repro.sim import Simulator

__all__ = ["ZenPlatform"]

_PROFILES = ("reactive", "proactive", "bare")


class ZenPlatform:
    """One-call assembly of network + controller + app stack.

    Parameters
    ----------
    topology:
        What to emulate.
    profile:
        Forwarding profile (see module docstring).
    control_latency:
        One-way switch-to-controller delay.
    flowmod_delay:
        Per-flow-mod switch install time (TCAM latency model).
    packet_in_service_time:
        Controller CPU per punted packet.
    intents:
        Also start the intent service (proactive/bare profiles).
    """

    def __init__(
        self,
        topology: Topology,
        profile: str = "proactive",
        seed: int = 0,
        control_latency: float = 0.001,
        control_bandwidth_bps: float = 0.0,
        flowmod_delay: float = 0.0,
        packet_in_service_time: float = 0.0,
        num_tables: int = 4,
        table_capacity: int = 0,
        eviction_policy: Optional[str] = None,
        intents: bool = False,
        probe_interval: float = 1.0,
        exact_match: bool = False,
        telemetry=None,
        fast_path: bool = True,
    ) -> None:
        if profile not in _PROFILES:
            raise ControllerError(
                f"unknown profile {profile!r}; pick one of {_PROFILES}"
            )
        self.profile = profile
        self.net = Network(
            topology,
            seed=seed,
            num_tables=num_tables,
            table_capacity=table_capacity,
            eviction_policy=eviction_policy,
            telemetry=telemetry,
            fast_path=fast_path,
        )
        #: The observability plane shared by every layer of this stack.
        self.telemetry = self.net.telemetry
        self.controller = Controller(
            self.net.sim,
            packet_in_service_time=packet_in_service_time,
        )
        # Service apps every profile needs.
        self.discovery = self.controller.add_app(
            TopologyDiscovery(probe_interval=probe_interval)
        )
        self.hosts = self.controller.add_app(HostTracker())
        self.arp_proxy = self.controller.add_app(ArpProxy())
        self.learning: Optional[LearningSwitch] = None
        self.router: Optional[ProactiveRouter] = None
        self.intents: Optional[IntentService] = None
        if profile == "reactive":
            self.learning = self.controller.add_app(
                LearningSwitch(exact_match=exact_match)
            )
        elif profile == "proactive":
            self.router = self.controller.add_app(ProactiveRouter())
        if intents:
            self.intents = self.controller.add_app(IntentService())
        # Wire every switch to the controller.
        for name in self.net.switches:
            channel = self.net.make_channel(
                name,
                latency=control_latency,
                bandwidth_bps=control_bandwidth_bps,
                flowmod_delay=flowmod_delay,
            )
            self.controller.accept_channel(channel)
            channel.connect()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def sim(self) -> Simulator:
        return self.net.sim

    def start(self, warmup: Optional[float] = None) -> "ZenPlatform":
        """Run long enough for handshakes and discovery to settle."""
        if warmup is None:
            warmup = 2 * self.discovery.probe_interval + 0.5
        self.net.run(warmup)
        return self

    def run(self, duration: float) -> None:
        self.net.run(duration)

    def add_app(self, app: App) -> App:
        return self.controller.add_app(app)

    # ------------------------------------------------------------------
    # Convenience passthroughs
    # ------------------------------------------------------------------
    def host(self, name: str):
        return self.net.host(name)

    def switch(self, name: str):
        return self.net.switch(name)

    def ping_all(self, count: int = 1, settle: float = 10.0) -> float:
        return self.net.ping_all(count=count, settle=settle)

    def fail_link(self, a: str, b: str) -> None:
        self.net.fail_link(a, b)

    def recover_link(self, a: str, b: str) -> None:
        self.net.recover_link(a, b)

    def control_overhead(self) -> Dict[str, dict]:
        """Per-switch control-channel counters (benchmark E9)."""
        return {
            name: channel.total_stats()
            for name, channel in self.net.channels.items()
        }

    def total_control_messages(self) -> int:
        total = 0
        for stats in self.control_overhead().values():
            total += stats["to_controller"]["messages"]
            total += stats["to_switch"]["messages"]
        return total

    def total_control_bytes(self) -> int:
        total = 0
        for stats in self.control_overhead().values():
            total += stats["to_controller"]["bytes"]
            total += stats["to_switch"]["bytes"]
        return total

    def __repr__(self) -> str:
        return (
            f"<ZenPlatform {self.profile!r} on "
            f"{self.net.topology.name!r}>"
        )
