"""A compositional policy algebra (Frenetic/NetKAT-flavoured).

Policies describe per-switch packet processing declaratively and compile
to prioritised flow rules, so operators state *what* should happen and
never hand-order rule priorities — the keynote's "program the network,
don't configure boxes" stance made executable.

Combinators
-----------
* ``filter(**fields)`` — pass packets matching the fields, drop the rest.
* ``fwd(port)`` / ``punt()`` / ``drop()`` — terminal forwarding decisions.
* ``mod(**fields)`` — rewrite header fields (``eth_src``, ``eth_dst``,
  ``ip_src``, ``ip_dst``, ``l4_src``, ``l4_dst``, ``ip_dscp``,
  ``vlan_vid``).
* ``a >> b`` — sequential composition (a's filters/rewrites, then b).
* ``a | b`` — parallel composition (both behaviours).
* ``ifte(pred, then_p, else_p)`` — predicated branching, compiled with
  the classic priority trick (no negation needed).

Compilation produces a first-match-wins rule list; ``install_policy``
pushes it to a switch with descending priorities.

Restrictions (checked, not silent): the left side of ``>>`` must be
non-terminal (filters/rewrites only), and parallel branches that both
rewrite the same packet are rejected — these keep the compiled rules
faithful to the algebra's semantics on a single-copy dataplane.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.dataplane.actions import (
    Action,
    Output,
    PORT_CONTROLLER,
    PORT_FLOOD,
    SetDSCP,
    SetEthDst,
    SetEthSrc,
    SetIPDst,
    SetIPSrc,
    SetL4Dst,
    SetL4Src,
    SetVLAN,
)
from repro.dataplane.match import Match
from repro.errors import PolicyError

__all__ = [
    "Policy",
    "Rule",
    "filter_",
    "fwd",
    "punt",
    "drop",
    "flood",
    "mod",
    "ifte",
    "compile_policy",
    "install_policy",
]

#: Field name -> (set-action constructor, match field it writes).
_WRITERS = {
    "eth_src": (SetEthSrc, "eth_src"),
    "eth_dst": (SetEthDst, "eth_dst"),
    "ip_src": (SetIPSrc, "ip_src"),
    "ip_dst": (SetIPDst, "ip_dst"),
    "l4_src": (SetL4Src, "l4_src"),
    "l4_dst": (SetL4Dst, "l4_dst"),
    "ip_dscp": (SetDSCP, "ip_dscp"),
    "vlan_vid": (SetVLAN, "vlan_vid"),
}


class Rule:
    """One compiled rule: match → writes then outputs.

    ``outputs is None`` marks a *pass* rule — meaningful only as an
    intermediate stage inside ``>>``; at top level it degenerates to a
    drop (a filter with nothing after it forwards nowhere).
    """

    __slots__ = ("match", "writes", "outputs")

    def __init__(self, match: Match, writes: List[Action],
                 outputs: Optional[List[Action]]) -> None:
        self.match = match
        self.writes = writes
        self.outputs = outputs

    @property
    def is_pass(self) -> bool:
        return self.outputs is None

    def actions(self) -> List[Action]:
        return list(self.writes) + list(self.outputs or [])

    def __repr__(self) -> str:
        tail = "PASS" if self.is_pass else repr(self.outputs)
        return f"<Rule {self.match!r} -> {self.writes!r} {tail}>"


class Policy:
    """Base class; subclasses implement :meth:`rules`."""

    def rules(self) -> List[Rule]:
        raise NotImplementedError

    @property
    def is_terminal(self) -> bool:
        """True when the policy decides where packets go."""
        return True

    def __rshift__(self, other: "Policy") -> "Policy":
        return Seq(self, other)

    def __or__(self, other: "Policy") -> "Policy":
        return Par(self, other)


class Filter(Policy):
    def __init__(self, match: Match) -> None:
        self.match = match

    @property
    def is_terminal(self) -> bool:
        return False

    def rules(self) -> List[Rule]:
        out = [Rule(self.match, [], None)]
        if not self.match.is_wildcard:
            out.append(Rule(Match(), [], []))  # everything else drops
        return out

    def __repr__(self) -> str:
        return f"filter({self.match!r})"


class Mod(Policy):
    def __init__(self, writes: Dict[str, object]) -> None:
        unknown = set(writes) - set(_WRITERS)
        if unknown:
            raise PolicyError(
                f"mod() cannot write field(s): {', '.join(sorted(unknown))}"
            )
        self.fields = dict(writes)

    @property
    def is_terminal(self) -> bool:
        return False

    def _actions(self) -> List[Action]:
        actions = []
        for name, value in self.fields.items():
            ctor, _ = _WRITERS[name]
            actions.append(ctor(value))
        return actions

    def rules(self) -> List[Rule]:
        return [Rule(Match(), self._actions(), None)]

    def __repr__(self) -> str:
        return f"mod({self.fields!r})"


class Terminal(Policy):
    """fwd/punt/flood/drop."""

    def __init__(self, outputs: List[Action], label: str) -> None:
        self.outputs = outputs
        self.label = label

    def rules(self) -> List[Rule]:
        return [Rule(Match(), [], list(self.outputs))]

    def __repr__(self) -> str:
        return self.label


class Seq(Policy):
    def __init__(self, left: Policy, right: Policy) -> None:
        if left.is_terminal:
            raise PolicyError(
                f"left side of >> must be a filter/mod, got {left!r}"
            )
        self.left = left
        self.right = right

    @property
    def is_terminal(self) -> bool:
        return self.right.is_terminal

    def rules(self) -> List[Rule]:
        result: List[Rule] = []
        right_rules = self.right.rules()
        for ra in self.left.rules():
            if not ra.is_pass:
                # A drop stage in the left pipeline stays a drop.
                result.append(ra)
                continue
            for rb in right_rules:
                pulled = _pullback(rb.match, ra.writes)
                if pulled is None:
                    continue
                combined = ra.match.intersect(pulled)
                if combined is None:
                    continue
                result.append(Rule(
                    combined, ra.writes + rb.writes, rb.outputs
                ))
        return result

    def __repr__(self) -> str:
        return f"({self.left!r} >> {self.right!r})"


class Par(Policy):
    def __init__(self, left: Policy, right: Policy) -> None:
        self.left = left
        self.right = right

    @property
    def is_terminal(self) -> bool:
        return self.left.is_terminal or self.right.is_terminal

    def rules(self) -> List[Rule]:
        left_rules = self.left.rules()
        right_rules = self.right.rules()
        result: List[Rule] = []
        # Overlap region first: both behaviours apply.
        for ra in left_rules:
            for rb in right_rules:
                both = ra.match.intersect(rb.match)
                if both is None:
                    continue
                if ra.writes and rb.writes:
                    raise PolicyError(
                        "parallel branches both rewrite overlapping "
                        f"traffic ({ra.match!r} ∩ {rb.match!r}); "
                        "refactor with ifte()"
                    )
                if ra.is_pass and rb.is_pass:
                    outputs: Optional[List[Action]] = None
                elif ra.is_pass or rb.is_pass:
                    outputs = list(ra.outputs or []) + list(rb.outputs or [])
                    if not outputs:
                        outputs = []
                else:
                    outputs = list(ra.outputs) + list(rb.outputs)
                result.append(Rule(
                    both, ra.writes + rb.writes, outputs
                ))
        result.extend(left_rules)
        result.extend(right_rules)
        return result

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


class IfThenElse(Policy):
    def __init__(self, predicate: Match, then_policy: Policy,
                 else_policy: Policy) -> None:
        self.predicate = predicate
        self.then_policy = then_policy
        self.else_policy = else_policy

    @property
    def is_terminal(self) -> bool:
        return (self.then_policy.is_terminal
                or self.else_policy.is_terminal)

    def rules(self) -> List[Rule]:
        result: List[Rule] = []
        for rule in self.then_policy.rules():
            narrowed = rule.match.intersect(self.predicate)
            if narrowed is not None:
                result.append(Rule(narrowed, rule.writes, rule.outputs))
        # When no then-rule matched, the predicate region must not fall
        # through into else with different semantics — but the priority
        # trick already handles it: the then-branch emitted a rule for
        # every (predicate ∩ then-match) region, and NetKAT filters end
        # with an explicit drop, so coverage is complete.
        result.extend(self.else_policy.rules())
        return result

    def __repr__(self) -> str:
        return (
            f"ifte({self.predicate!r}, {self.then_policy!r}, "
            f"{self.else_policy!r})"
        )


def _pullback(match: Match, writes: List[Action]) -> Optional[Match]:
    """Adjust ``match`` for the writes that precede it in a pipeline.

    If an earlier stage sets field f to v, a later constraint on f is
    satisfied iff it accepts v — so the constraint is either removed
    (already guaranteed) or the rule is unsatisfiable.
    """
    fields = match.fields
    for action in writes:
        for name, (ctor, field) in _WRITERS.items():
            if not isinstance(action, ctor):
                continue
            if field not in fields:
                continue
            constraint = fields[field]
            written = _written_value(action)
            satisfied = (
                constraint.contains(written)
                if hasattr(constraint, "contains")
                else constraint == written
            )
            if not satisfied:
                return None
            del fields[field]
    return Match(**fields)


def _written_value(action: Action):
    for attr in ("mac", "ip", "port", "dscp", "vid"):
        if hasattr(action, attr):
            return getattr(action, attr)
    raise PolicyError(f"cannot extract written value from {action!r}")


# ----------------------------------------------------------------------
# Public constructors
# ----------------------------------------------------------------------
def filter_(**fields) -> Policy:
    """Pass packets matching ``fields``; drop everything else."""
    return Filter(Match(**fields))


def mod(**fields) -> Policy:
    """Rewrite header fields, e.g. ``mod(ip_dst="10.0.0.9")``."""
    return Mod(fields)


def fwd(port: int) -> Policy:
    """Send matching packets out a port."""
    return Terminal([Output(port)], f"fwd({port})")


def flood() -> Policy:
    return Terminal([Output(PORT_FLOOD)], "flood()")


def punt() -> Policy:
    """Send matching packets to the controller."""
    return Terminal([Output(PORT_CONTROLLER)], "punt()")


def drop() -> Policy:
    return Terminal([], "drop()")


def ifte(predicate: Union[Match, Dict], then_policy: Policy,
         else_policy: Policy) -> Policy:
    if isinstance(predicate, dict):
        predicate = Match(**predicate)
    return IfThenElse(predicate, then_policy, else_policy)


# ----------------------------------------------------------------------
# Compilation and installation
# ----------------------------------------------------------------------
def compile_policy(policy: Policy) -> List[Tuple[Match, List[Action]]]:
    """Compile to a first-match-wins ``[(match, actions), ...]`` list.

    Shadowed rules (whose match is a subset of an earlier rule's) are
    pruned; pass rules degenerate to drops at top level.
    """
    compiled: List[Tuple[Match, List[Action]]] = []
    for rule in policy.rules():
        if rule.is_pass or not rule.outputs:
            # Terminal drop (or a dangling pass): rewrites on a packet
            # that goes nowhere are unobservable, so strip them.
            actions: List[Action] = []
        else:
            actions = rule.actions()
        if any(rule.match.is_subset_of(seen) for seen, _ in compiled):
            continue  # unreachable: shadowed by an earlier rule
        compiled.append((rule.match, actions))
    return compiled


def install_policy(switch, policy: Policy, table_id: int = 0,
                   base_priority: int = 10000) -> int:
    """Push a compiled policy to a switch handle; returns rule count.

    Rules get descending priorities from ``base_priority`` so dataplane
    lookup order equals compile order.
    """
    compiled = compile_policy(policy)
    if len(compiled) > base_priority:
        raise PolicyError(
            f"policy compiles to {len(compiled)} rules; does not fit "
            f"under base priority {base_priority}"
        )
    for offset, (match, actions) in enumerate(compiled):
        switch.add_flow(match, actions,
                        priority=base_priority - offset,
                        table_id=table_id)
    return len(compiled)
