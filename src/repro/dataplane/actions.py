"""Action primitives applied by the switch pipeline.

An action list rewrites and/or forwards a packet.  Actions are small value
objects; :func:`apply_actions` executes a list against a packet and returns
the set of (port, packet) emissions, leaving group/meter indirection to the
datapath.

Reserved output ports follow the OpenFlow convention: FLOOD replicates out
every up port except the ingress, CONTROLLER punts to the control channel,
IN_PORT hairpins, and ALL is FLOOD including the ingress port.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import DataplaneError
from repro.packet import (
    IPv4,
    IPv4Address,
    MACAddress,
    Packet,
    TCP,
    UDP,
    VLAN,
    Ethernet,
    EtherType,
)

__all__ = [
    "Action",
    "Output",
    "SetEthSrc",
    "SetEthDst",
    "SetIPSrc",
    "SetIPDst",
    "SetL4Src",
    "SetL4Dst",
    "SetDSCP",
    "PushVLAN",
    "PopVLAN",
    "SetVLAN",
    "DecTTL",
    "Group",
    "Meter",
    "PORT_FLOOD",
    "PORT_CONTROLLER",
    "PORT_IN_PORT",
    "PORT_ALL",
    "PORT_TABLE",
    "apply_actions",
    "TTLExpired",
]

# Reserved port numbers (high values, clear of any physical port).
PORT_ALL = 0xFFFFFFFC
PORT_CONTROLLER = 0xFFFFFFFD
PORT_IN_PORT = 0xFFFFFFF8
PORT_FLOOD = 0xFFFFFFFB
#: Resubmit to the pipeline from table 0 (packet-out only) — OFPP_TABLE.
PORT_TABLE = 0xFFFFFFF9

_RESERVED_PORTS = {PORT_ALL, PORT_CONTROLLER, PORT_IN_PORT, PORT_FLOOD,
                   PORT_TABLE}


class TTLExpired(Exception):
    """Raised by :class:`DecTTL` when a packet's TTL reaches zero.

    The datapath catches this and drops the packet (optionally punting a
    time-exceeded notification to the controller).
    """


class Action:
    """Base class for all actions; value semantics via ``fields()``."""

    def apply(self, packet: Packet) -> None:
        """Mutate ``packet`` in place.  Forwarding actions override nothing
        here — the executor special-cases them."""

    def fields(self) -> dict:
        return {k: v for k, v in vars(self).items() if not k.startswith("_")}

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.fields() == other.fields()

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(
            self.fields().items(), key=lambda kv: kv[0]
        ))))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.fields().items())
        return f"{type(self).__name__}({inner})"


class Output(Action):
    """Emit the packet on a port (physical or reserved)."""

    def __init__(self, port: int) -> None:
        if port < 0:
            raise DataplaneError(f"invalid output port {port}")
        self.port = port

    @property
    def is_reserved(self) -> bool:
        return self.port in _RESERVED_PORTS


class Group(Action):
    """Hand the packet to a group-table entry (ECMP, failover, multicast)."""

    def __init__(self, group_id: int) -> None:
        self.group_id = group_id


class Meter(Action):
    """Subject the packet to a meter band before further processing."""

    def __init__(self, meter_id: int) -> None:
        self.meter_id = meter_id


class SetEthSrc(Action):
    def __init__(self, mac: Union[str, MACAddress]) -> None:
        self.mac = MACAddress(mac)

    def apply(self, packet: Packet) -> None:
        eth = packet.get(Ethernet)
        if eth is None:
            raise DataplaneError("SetEthSrc on packet without Ethernet")
        eth.src = self.mac


class SetEthDst(Action):
    def __init__(self, mac: Union[str, MACAddress]) -> None:
        self.mac = MACAddress(mac)

    def apply(self, packet: Packet) -> None:
        eth = packet.get(Ethernet)
        if eth is None:
            raise DataplaneError("SetEthDst on packet without Ethernet")
        eth.dst = self.mac


class SetIPSrc(Action):
    def __init__(self, ip: Union[str, IPv4Address]) -> None:
        self.ip = IPv4Address(ip)

    def apply(self, packet: Packet) -> None:
        ip = packet.get(IPv4)
        if ip is None:
            raise DataplaneError("SetIPSrc on packet without IPv4")
        ip.src = self.ip


class SetIPDst(Action):
    def __init__(self, ip: Union[str, IPv4Address]) -> None:
        self.ip = IPv4Address(ip)

    def apply(self, packet: Packet) -> None:
        ip = packet.get(IPv4)
        if ip is None:
            raise DataplaneError("SetIPDst on packet without IPv4")
        ip.dst = self.ip


class SetDSCP(Action):
    def __init__(self, dscp: int) -> None:
        if not 0 <= dscp < 64:
            raise DataplaneError(f"DSCP out of range: {dscp}")
        self.dscp = dscp

    def apply(self, packet: Packet) -> None:
        ip = packet.get(IPv4)
        if ip is None:
            raise DataplaneError("SetDSCP on packet without IPv4")
        ip.dscp = self.dscp


class SetL4Src(Action):
    def __init__(self, port: int) -> None:
        if not 0 <= port < 65536:
            raise DataplaneError(f"L4 port out of range: {port}")
        self.port = port

    def apply(self, packet: Packet) -> None:
        l4 = packet.get(TCP) or packet.get(UDP)
        if l4 is None:
            raise DataplaneError("SetL4Src on packet without TCP/UDP")
        l4.src_port = self.port


class SetL4Dst(Action):
    def __init__(self, port: int) -> None:
        if not 0 <= port < 65536:
            raise DataplaneError(f"L4 port out of range: {port}")
        self.port = port

    def apply(self, packet: Packet) -> None:
        l4 = packet.get(TCP) or packet.get(UDP)
        if l4 is None:
            raise DataplaneError("SetL4Dst on packet without TCP/UDP")
        l4.dst_port = self.port


class PushVLAN(Action):
    """Insert an 802.1Q tag just after the Ethernet header."""

    def __init__(self, vid: int, pcp: int = 0) -> None:
        self.vid = vid
        self.pcp = pcp

    def apply(self, packet: Packet) -> None:
        eth = packet.get(Ethernet)
        if eth is None:
            raise DataplaneError("PushVLAN on packet without Ethernet")
        idx = packet.headers.index(eth)
        tag = VLAN(vid=self.vid, pcp=self.pcp, ethertype=eth.ethertype)
        eth.ethertype = EtherType.VLAN
        packet.headers.insert(idx + 1, tag)


class PopVLAN(Action):
    """Remove the outermost 802.1Q tag."""

    def apply(self, packet: Packet) -> None:
        vlan = packet.get(VLAN)
        if vlan is None:
            raise DataplaneError("PopVLAN on packet without a VLAN tag")
        eth = packet.get(Ethernet)
        if eth is not None:
            eth.ethertype = vlan.ethertype
        packet.headers.remove(vlan)


class SetVLAN(Action):
    """Rewrite the VID of an existing 802.1Q tag."""

    def __init__(self, vid: int) -> None:
        self.vid = vid

    def apply(self, packet: Packet) -> None:
        vlan = packet.get(VLAN)
        if vlan is None:
            raise DataplaneError("SetVLAN on packet without a VLAN tag")
        vlan.vid = self.vid


class DecTTL(Action):
    """Decrement the IPv4 TTL; raises :class:`TTLExpired` at zero."""

    def apply(self, packet: Packet) -> None:
        ip = packet.get(IPv4)
        if ip is None:
            raise DataplaneError("DecTTL on packet without IPv4")
        if not ip.decrement_ttl():
            raise TTLExpired()


def apply_actions(
    actions: List[Action],
    packet: Packet,
    in_port: Optional[int] = None,
) -> Tuple[Packet, List[int], List[int], List[int]]:
    """Execute an action list against a copy of ``packet``.

    Returns ``(rewritten_packet, out_ports, group_ids, meter_ids)``.
    Rewrites apply in list order and affect only the emissions that follow
    them in real OpenFlow; this executor applies the common controller
    idiom (all rewrites, then outputs) by snapshotting the packet at each
    Output action.

    The caller (the datapath) resolves reserved ports, groups, and meters.
    """
    working = packet.copy()
    out_ports: List[int] = []
    groups: List[int] = []
    meters: List[int] = []
    for action in actions:
        if isinstance(action, Output):
            out_ports.append(action.port)
        elif isinstance(action, Group):
            groups.append(action.group_id)
        elif isinstance(action, Meter):
            meters.append(action.meter_id)
        else:
            action.apply(working)
    return working, out_ports, groups, meters
