"""Priority flow tables with timeouts, counters, and capacity limits.

Lookup semantics follow OpenFlow: the highest-priority matching entry wins;
ties are broken by most-recent installation (deterministic in simulation).
Entries may carry idle and hard timeouts; :meth:`FlowTable.expire` pops
them from a lazy deadline heap, returning the evicted entries so the
datapath can emit flow-removed notifications.

Internally the table is indexed rather than flat (the observable
semantics are unchanged — a TCAM):

* entries are partitioned into per-priority buckets, with the priority
  list kept sorted by bisect-insert instead of re-sorting on every add;
* fully-specified matches (all fields constrained, no prefixes) live in
  an exact-match hash per bucket, so the microflow-rule workloads that
  dominate deep tables resolve in O(1) instead of a linear scan;
* wildcard entries stay in a per-bucket list ordered by installation
  sequence, scanned newest-first only until it cannot beat the exact hit.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.dataplane.actions import Action
from repro.dataplane.match import FlowKey, MATCH_FIELDS, Match
from repro.errors import TableFullError
from repro.packet import IPv4Network

__all__ = ["FlowEntry", "FlowTable", "RemovalReason"]

_INFINITY = float("inf")


class RemovalReason:
    """Why a flow entry left the table (mirrors OFPRR_*)."""

    IDLE_TIMEOUT = "idle_timeout"
    HARD_TIMEOUT = "hard_timeout"
    DELETE = "delete"
    EVICTION = "eviction"


class FlowEntry:
    """One match→actions rule resident in a flow table."""

    __slots__ = (
        "match",
        "priority",
        "actions",
        "goto_table",
        "idle_timeout",
        "hard_timeout",
        "cookie",
        "flags",
        "install_time",
        "last_used",
        "packet_count",
        "byte_count",
        "_seq",
    )

    def __init__(
        self,
        match: Match,
        actions: Iterable[Action] = (),
        priority: int = 0,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: int = 0,
        goto_table: Optional[int] = None,
        flags: int = 0,
    ) -> None:
        self.match = match
        self.actions: List[Action] = list(actions)
        self.priority = priority
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.cookie = cookie
        self.flags = flags
        self.goto_table = goto_table
        self.install_time = 0.0
        self.last_used = 0.0
        self.packet_count = 0
        self.byte_count = 0
        self._seq = 0

    def touch(self, now: float, nbytes: int) -> None:
        """Record a hit for counters and idle-timeout tracking."""
        self.last_used = now
        self.packet_count += 1
        self.byte_count += nbytes

    def is_expired(self, now: float) -> Optional[str]:
        """The removal reason if this entry has timed out, else ``None``."""
        if self.hard_timeout and now - self.install_time >= self.hard_timeout:
            return RemovalReason.HARD_TIMEOUT
        if self.idle_timeout and now - self.last_used >= self.idle_timeout:
            return RemovalReason.IDLE_TIMEOUT
        return None

    def next_deadline(self) -> float:
        """The earliest simulated time this entry could expire."""
        deadline = _INFINITY
        if self.hard_timeout:
            deadline = self.install_time + self.hard_timeout
        if self.idle_timeout:
            deadline = min(deadline, self.last_used + self.idle_timeout)
        return deadline

    @property
    def age_fields(self) -> dict:
        return {
            "packets": self.packet_count,
            "bytes": self.byte_count,
            "installed": self.install_time,
            "last_used": self.last_used,
        }

    def __repr__(self) -> str:
        return (
            f"<FlowEntry prio={self.priority} {self.match!r} "
            f"actions={self.actions!r} hits={self.packet_count}>"
        )


def _exact_key(match: Match) -> Optional[Tuple]:
    """The value tuple indexing ``match`` when it is fully specified.

    A fully-specified match constrains every field with an exact value
    (no IP prefixes), so it matches exactly the keys whose field tuple
    equals this one — the property the exact-match hash relies on.
    Returns ``None`` for anything wildcarded.
    """
    fields = match._fields
    if len(fields) != len(MATCH_FIELDS):
        return None
    if isinstance(fields["ip_src"], IPv4Network):
        return None
    if isinstance(fields["ip_dst"], IPv4Network):
        return None
    return tuple(fields[name] for name in MATCH_FIELDS)


def _probe_key(key: FlowKey) -> Tuple:
    """The value tuple of a packet's flow key, for exact-hash probing."""
    return (
        key.in_port, key.eth_src, key.eth_dst, key.eth_type, key.vlan_vid,
        key.ip_src, key.ip_dst, key.ip_proto, key.ip_dscp,
        key.l4_src, key.l4_dst,
    )


class _Bucket:
    """Entries of one priority: an exact-match hash plus a wildcard list.

    ``wild`` is kept in ascending installation order, so appending keeps
    it sorted and a newest-first scan is ``reversed(wild)``.
    """

    __slots__ = ("exact", "wild")

    def __init__(self) -> None:
        self.exact: dict = {}  # value tuple -> FlowEntry
        self.wild: List[FlowEntry] = []

    def __len__(self) -> int:
        return len(self.exact) + len(self.wild)


class FlowTable:
    """A single priority-ordered flow table.

    ``capacity`` bounds the table; insertion into a full table raises
    :class:`TableFullError` unless an ``eviction_policy`` is set.
    ``on_change`` (when set) fires after any mutation that adds or
    removes entries or rewrites an entry in place — the datapath uses it
    to invalidate its microflow cache, including for direct table
    manipulation that bypasses the datapath API.
    """

    def __init__(
        self,
        table_id: int = 0,
        capacity: int = 0,
        eviction_policy: Optional[str] = None,
    ) -> None:
        self.table_id = table_id
        self.capacity = capacity  # 0 means unbounded
        self.eviction_policy = eviction_policy  # None or "lru"
        self._buckets: dict = {}  # priority -> _Bucket
        self._neg_prios: List[int] = []  # -priority, ascending
        self._live: set = set()  # identity set of resident entries
        self._count = 0
        self._timeout_count = 0
        # Items are (deadline, push_id, entry_seq, entry): push_id makes
        # comparisons unique (entry seqs are reused on replacement), and
        # entry_seq lets expire() drop items for replaced entries.
        self._deadline_heap: List[Tuple[float, int, int, FlowEntry]] = []
        self._push_id = 0
        self._seq = 0
        self.lookup_count = 0
        self.matched_count = 0
        self.on_change: Optional[Callable[[], None]] = None
        # Telemetry children; bound by attach_metrics(), else free no-ops.
        self._m_lookups = None
        self._m_matches = None

    def attach_metrics(self, registry, dpid: int) -> None:
        """Bind per-table lookup/match counters labelled by (dpid, table)."""
        labels = (str(dpid), str(self.table_id))
        self._m_lookups = registry.counter(
            "table_lookups_total", "Flow-table lookups",
            ("dpid", "table"),
        ).labels(*labels)
        self._m_matches = registry.counter(
            "table_matches_total", "Flow-table lookup hits",
            ("dpid", "table"),
        ).labels(*labels)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _changed(self) -> None:
        if self.on_change is not None:
            self.on_change()

    def _bucket(self, priority: int) -> _Bucket:
        bucket = self._buckets.get(priority)
        if bucket is None:
            bucket = self._buckets[priority] = _Bucket()
            insort(self._neg_prios, -priority)
        return bucket

    def _add(self, entry: FlowEntry) -> None:
        bucket = self._bucket(entry.priority)
        ek = _exact_key(entry.match)
        if ek is not None:
            bucket.exact[ek] = entry
        else:
            wild = bucket.wild
            if wild and wild[-1]._seq > entry._seq:
                # A replacement keeps its original sequence number, so
                # bisect it back into recency order instead of appending.
                lo, hi = 0, len(wild)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if wild[mid]._seq < entry._seq:
                        lo = mid + 1
                    else:
                        hi = mid
                wild.insert(lo, entry)
            else:
                wild.append(entry)
        self._live.add(entry)
        self._count += 1
        if entry.idle_timeout or entry.hard_timeout:
            self._timeout_count += 1
            self._arm_deadline(entry)

    def _arm_deadline(self, entry: FlowEntry) -> None:
        self._push_id += 1
        heapq.heappush(
            self._deadline_heap,
            (entry.next_deadline(), self._push_id, entry._seq, entry),
        )

    def _remove(self, entry: FlowEntry) -> None:
        bucket = self._buckets[entry.priority]
        ek = _exact_key(entry.match)
        if ek is not None and bucket.exact.get(ek) is entry:
            del bucket.exact[ek]
        else:
            bucket.wild.remove(entry)
        if not bucket.exact and not bucket.wild:
            del self._buckets[entry.priority]
            self._neg_prios.remove(-entry.priority)
        self._live.discard(entry)
        self._count -= 1
        if entry.idle_timeout or entry.hard_timeout:
            self._timeout_count -= 1
        # Stale deadline-heap items are skipped lazily by expire().

    def insert(self, entry: FlowEntry, now: float = 0.0) -> List[FlowEntry]:
        """Add ``entry``; an existing entry with identical (match, priority)
        is replaced, per OpenFlow ADD semantics.

        Returns any entries evicted to make room (empty in the common
        case), so the datapath can notify the controller.
        """
        evicted: List[FlowEntry] = []
        existing = self._find_same(entry.match, entry.priority)
        if existing is not None:
            entry.install_time = now
            entry.last_used = now
            entry._seq = existing._seq
            self._remove(existing)
            self._add(entry)
            self._changed()
            return evicted
        if self.capacity and self._count >= self.capacity:
            if self.eviction_policy == "lru":
                victim = min(self._iter_entries(),
                             key=lambda e: (e.last_used, e._seq))
                self._remove(victim)
                evicted.append(victim)
            else:
                raise TableFullError(self.table_id, self.capacity)
        self._seq += 1
        entry._seq = self._seq
        entry.install_time = now
        entry.last_used = now
        self._add(entry)
        self._changed()
        return evicted

    def _find_same(self, match: Match,
                   priority: int) -> Optional[FlowEntry]:
        bucket = self._buckets.get(priority)
        if bucket is None:
            return None
        ek = _exact_key(match)
        if ek is not None:
            return bucket.exact.get(ek)
        for existing in bucket.wild:
            if existing.match == match:
                return existing
        return None

    def delete(
        self,
        match: Optional[Match] = None,
        priority: Optional[int] = None,
        cookie: Optional[int] = None,
        strict: bool = False,
    ) -> List[FlowEntry]:
        """Remove matching entries and return them.

        Non-strict delete removes every entry whose match is a subset of
        the given pattern (OpenFlow OFPFC_DELETE); strict delete requires
        the exact (match, priority) pair.
        """
        removed: List[FlowEntry] = []
        for entry in list(self._iter_entries()):
            doomed = True
            if cookie is not None and entry.cookie != cookie:
                doomed = False
            if doomed and match is not None:
                if strict:
                    doomed = entry.match == match and entry.priority == priority
                else:
                    doomed = entry.match.is_subset_of(match)
            elif doomed and strict and priority is not None:
                doomed = entry.priority == priority
            if doomed:
                removed.append(entry)
        for entry in removed:
            self._remove(entry)
        if removed:
            self._changed()
        return removed

    def expire(self, now: float) -> List[tuple]:
        """Pop due timeouts; returns ``[(entry, reason), ...]``.

        Deadlines live in a lazy min-heap: idle-timeout refreshes do not
        rewrite the heap, so a popped deadline may be stale — the entry
        is then re-armed at its true deadline instead of evicted.  Cost
        is O(k log n) for k due entries, not a sweep of every entry.
        """
        heap = self._deadline_heap
        expired: List[tuple] = []
        while heap and heap[0][0] <= now:
            _deadline, _push_id, seq, entry = heapq.heappop(heap)
            if entry not in self._live or entry._seq != seq:
                continue  # removed or replaced since the push; drop lazily
            reason = entry.is_expired(now)
            if reason is None:
                # The deadline moved (idle refresh); re-arm at the real one.
                self._arm_deadline(entry)
                continue
            expired.append((entry, reason))
            self._remove(entry)
        if expired:
            # Canonical (-priority, -seq) order, matching table iteration,
            # so flow-removed notification order is deterministic.
            expired.sort(key=lambda pair: (-pair[0].priority, -pair[0]._seq))
            self._changed()
        return expired

    def clear(self) -> int:
        count = self._count
        self._buckets.clear()
        self._neg_prios.clear()
        self._live.clear()
        self._deadline_heap.clear()
        self._count = 0
        self._timeout_count = 0
        if count:
            self._changed()
        return count

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, key: FlowKey) -> Optional[FlowEntry]:
        """The highest-priority entry matching ``key``, or ``None``."""
        self.lookup_count += 1
        if self._m_lookups is not None:
            self._m_lookups.inc()
        probe = None
        for neg_prio in self._neg_prios:
            bucket = self._buckets[-neg_prio]
            best = None
            if bucket.exact:
                if probe is None:
                    probe = _probe_key(key)
                best = bucket.exact.get(probe)
            if bucket.wild:
                # Newest-first; a wildcard entry older than the exact hit
                # cannot win the recency tie-break, so stop there.
                floor = best._seq if best is not None else -1
                for entry in reversed(bucket.wild):
                    if entry._seq < floor:
                        break
                    if entry.match.matches(key):
                        best = entry
                        break
            if best is not None:
                self.matched_count += 1
                if self._m_matches is not None:
                    self._m_matches.inc()
                return best
        return None

    def record_lookup(self, hit: bool) -> None:
        """Account a lookup served by a cache above this table.

        The datapath's microflow fast path resolves packets without
        touching the pipeline, but stats replies must stay bit-identical
        with the cache on or off — so cache hits replay the counter
        effects of the lookups they skipped.
        """
        self.lookup_count += 1
        if self._m_lookups is not None:
            self._m_lookups.inc()
        if hit:
            self.matched_count += 1
            if self._m_matches is not None:
                self._m_matches.inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _iter_entries(self) -> Iterator[FlowEntry]:
        """All entries in canonical (-priority, -seq) order."""
        for neg_prio in self._neg_prios:
            bucket = self._buckets[-neg_prio]
            if bucket.exact:
                merged = list(bucket.exact.values())
                merged.extend(bucket.wild)
                merged.sort(key=lambda e: -e._seq)
                yield from merged
            else:
                yield from reversed(bucket.wild)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[FlowEntry]:
        return self._iter_entries()

    def entries(
        self, predicate: Optional[Callable[[FlowEntry], bool]] = None
    ) -> List[FlowEntry]:
        if predicate is None:
            return list(self._iter_entries())
        return [e for e in self._iter_entries() if predicate(e)]

    @property
    def size(self) -> int:
        """Resident entry count (occupancy as an absolute number)."""
        return self._count

    @property
    def has_timeouts(self) -> bool:
        """True when some resident entry carries an idle/hard timeout."""
        return self._timeout_count > 0

    @property
    def occupancy(self) -> float:
        """Fill fraction in [0, 1]; 0.0 for unbounded tables (use
        :attr:`size` for the absolute count)."""
        if not self.capacity:
            return 0.0
        return self._count / self.capacity

    def __repr__(self) -> str:
        cap = self.capacity or "∞"
        return f"<FlowTable id={self.table_id} {self._count}/{cap}>"
