"""Priority flow tables with timeouts, counters, and capacity limits.

Lookup semantics follow OpenFlow: the highest-priority matching entry wins;
ties are broken by most-recent installation (deterministic in simulation).
Entries may carry idle and hard timeouts; :meth:`FlowTable.expire` sweeps
them, returning the evicted entries so the datapath can emit flow-removed
notifications.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

from repro.dataplane.actions import Action
from repro.dataplane.match import FlowKey, Match
from repro.errors import TableFullError

__all__ = ["FlowEntry", "FlowTable", "RemovalReason"]


class RemovalReason:
    """Why a flow entry left the table (mirrors OFPRR_*)."""

    IDLE_TIMEOUT = "idle_timeout"
    HARD_TIMEOUT = "hard_timeout"
    DELETE = "delete"
    EVICTION = "eviction"


class FlowEntry:
    """One match→actions rule resident in a flow table."""

    __slots__ = (
        "match",
        "priority",
        "actions",
        "goto_table",
        "idle_timeout",
        "hard_timeout",
        "cookie",
        "flags",
        "install_time",
        "last_used",
        "packet_count",
        "byte_count",
        "_seq",
    )

    def __init__(
        self,
        match: Match,
        actions: Iterable[Action] = (),
        priority: int = 0,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: int = 0,
        goto_table: Optional[int] = None,
        flags: int = 0,
    ) -> None:
        self.match = match
        self.actions: List[Action] = list(actions)
        self.priority = priority
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.cookie = cookie
        self.flags = flags
        self.goto_table = goto_table
        self.install_time = 0.0
        self.last_used = 0.0
        self.packet_count = 0
        self.byte_count = 0
        self._seq = 0

    def touch(self, now: float, nbytes: int) -> None:
        """Record a hit for counters and idle-timeout tracking."""
        self.last_used = now
        self.packet_count += 1
        self.byte_count += nbytes

    def is_expired(self, now: float) -> Optional[str]:
        """The removal reason if this entry has timed out, else ``None``."""
        if self.hard_timeout and now - self.install_time >= self.hard_timeout:
            return RemovalReason.HARD_TIMEOUT
        if self.idle_timeout and now - self.last_used >= self.idle_timeout:
            return RemovalReason.IDLE_TIMEOUT
        return None

    @property
    def age_fields(self) -> dict:
        return {
            "packets": self.packet_count,
            "bytes": self.byte_count,
            "installed": self.install_time,
            "last_used": self.last_used,
        }

    def __repr__(self) -> str:
        return (
            f"<FlowEntry prio={self.priority} {self.match!r} "
            f"actions={self.actions!r} hits={self.packet_count}>"
        )


class FlowTable:
    """A single priority-ordered flow table.

    Entries are kept sorted by ``(-priority, -seq)`` so lookup is a linear
    scan that stops at the first hit — the same observable semantics as a
    TCAM.  ``capacity`` bounds the table; insertion into a full table
    raises :class:`TableFullError` unless an ``eviction_policy`` is set.
    """

    def __init__(
        self,
        table_id: int = 0,
        capacity: int = 0,
        eviction_policy: Optional[str] = None,
    ) -> None:
        self.table_id = table_id
        self.capacity = capacity  # 0 means unbounded
        self.eviction_policy = eviction_policy  # None or "lru"
        self._entries: List[FlowEntry] = []
        self._seq = 0
        self.lookup_count = 0
        self.matched_count = 0
        # Telemetry children; bound by attach_metrics(), else free no-ops.
        self._m_lookups = None
        self._m_matches = None

    def attach_metrics(self, registry, dpid: int) -> None:
        """Bind per-table lookup/match counters labelled by (dpid, table)."""
        labels = (str(dpid), str(self.table_id))
        self._m_lookups = registry.counter(
            "table_lookups_total", "Flow-table lookups",
            ("dpid", "table"),
        ).labels(*labels)
        self._m_matches = registry.counter(
            "table_matches_total", "Flow-table lookup hits",
            ("dpid", "table"),
        ).labels(*labels)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, entry: FlowEntry, now: float = 0.0) -> List[FlowEntry]:
        """Add ``entry``; an existing entry with identical (match, priority)
        is replaced, per OpenFlow ADD semantics.

        Returns any entries evicted to make room (empty in the common
        case), so the datapath can notify the controller.
        """
        evicted: List[FlowEntry] = []
        for i, existing in enumerate(self._entries):
            if (existing.priority == entry.priority
                    and existing.match == entry.match):
                entry.install_time = now
                entry.last_used = now
                entry._seq = existing._seq
                self._entries[i] = entry
                return evicted
        if self.capacity and len(self._entries) >= self.capacity:
            if self.eviction_policy == "lru":
                victim = min(self._entries, key=lambda e: (e.last_used, e._seq))
                self._entries.remove(victim)
                evicted.append(victim)
            else:
                raise TableFullError(self.table_id, self.capacity)
        self._seq += 1
        entry._seq = self._seq
        entry.install_time = now
        entry.last_used = now
        self._entries.append(entry)
        self._entries.sort(key=lambda e: (-e.priority, -e._seq))
        return evicted

    def delete(
        self,
        match: Optional[Match] = None,
        priority: Optional[int] = None,
        cookie: Optional[int] = None,
        strict: bool = False,
    ) -> List[FlowEntry]:
        """Remove matching entries and return them.

        Non-strict delete removes every entry whose match is a subset of
        the given pattern (OpenFlow OFPFC_DELETE); strict delete requires
        the exact (match, priority) pair.
        """
        removed: List[FlowEntry] = []
        kept: List[FlowEntry] = []
        for entry in self._entries:
            doomed = True
            if cookie is not None and entry.cookie != cookie:
                doomed = False
            if doomed and match is not None:
                if strict:
                    doomed = entry.match == match and entry.priority == priority
                else:
                    doomed = entry.match.is_subset_of(match)
            elif doomed and strict and priority is not None:
                doomed = entry.priority == priority
            if doomed:
                removed.append(entry)
            else:
                kept.append(entry)
        self._entries = kept
        return removed

    def expire(self, now: float) -> List[tuple]:
        """Sweep timeouts; returns ``[(entry, reason), ...]`` for evictions."""
        expired: List[tuple] = []
        kept: List[FlowEntry] = []
        for entry in self._entries:
            reason = entry.is_expired(now)
            if reason is None:
                kept.append(entry)
            else:
                expired.append((entry, reason))
        if expired:
            self._entries = kept
        return expired

    def clear(self) -> int:
        count = len(self._entries)
        self._entries.clear()
        return count

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, key: FlowKey) -> Optional[FlowEntry]:
        """The highest-priority entry matching ``key``, or ``None``."""
        self.lookup_count += 1
        if self._m_lookups is not None:
            self._m_lookups.inc()
        for entry in self._entries:
            if entry.match.matches(key):
                self.matched_count += 1
                if self._m_matches is not None:
                    self._m_matches.inc()
                return entry
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(self._entries)

    def entries(
        self, predicate: Optional[Callable[[FlowEntry], bool]] = None
    ) -> List[FlowEntry]:
        if predicate is None:
            return list(self._entries)
        return [e for e in self._entries if predicate(e)]

    @property
    def occupancy(self) -> float:
        """Fill fraction in [0, 1]; 0 for unbounded tables when empty."""
        if not self.capacity:
            return 0.0 if not self._entries else float("nan")
        return len(self._entries) / self.capacity

    def __repr__(self) -> str:
        cap = self.capacity or "∞"
        return f"<FlowTable id={self.table_id} {len(self._entries)}/{cap}>"
