"""Group table: multicast, ECMP-style select, and fast-failover groups.

Groups give the dataplane local agency that a remote controller cannot
match in reaction time — most importantly FAST_FAILOVER, which re-routes
around a dead port in zero control-plane round trips.  Benchmark E4 leans
on exactly this property.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.dataplane.actions import Action
from repro.dataplane.match import FlowKey
from repro.errors import DataplaneError

__all__ = ["Bucket", "GroupEntry", "GroupTable", "GroupType"]


class GroupType:
    """Supported group semantics (mirrors OFPGT_*)."""

    ALL = "all"                # replicate to every bucket (multicast)
    SELECT = "select"          # hash one bucket (ECMP)
    INDIRECT = "indirect"      # single bucket indirection
    FAST_FAILOVER = "ff"       # first bucket whose watch port is live

    VALID = (ALL, SELECT, INDIRECT, FAST_FAILOVER)


class Bucket:
    """One action set inside a group.

    ``watch_port`` is only meaningful for FAST_FAILOVER groups: the bucket
    is live iff that port is up.  ``weight`` biases SELECT hashing.
    """

    __slots__ = ("actions", "watch_port", "weight")

    def __init__(
        self,
        actions: Iterable[Action],
        watch_port: Optional[int] = None,
        weight: int = 1,
    ) -> None:
        self.actions: List[Action] = list(actions)
        self.watch_port = watch_port
        if weight < 1:
            raise DataplaneError(f"bucket weight must be >= 1, got {weight}")
        self.weight = weight

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bucket):
            return NotImplemented
        return (self.actions, self.watch_port, self.weight) == (
            other.actions, other.watch_port, other.weight
        )

    def __repr__(self) -> str:
        extra = f" watch={self.watch_port}" if self.watch_port is not None else ""
        return f"<Bucket{extra} w={self.weight} {self.actions!r}>"


class GroupEntry:
    """A group id bound to a type and a bucket list."""

    __slots__ = ("group_id", "group_type", "buckets", "packet_count")

    def __init__(
        self,
        group_id: int,
        group_type: str,
        buckets: Iterable[Bucket],
    ) -> None:
        if group_type not in GroupType.VALID:
            raise DataplaneError(f"unknown group type {group_type!r}")
        self.group_id = group_id
        self.group_type = group_type
        self.buckets: List[Bucket] = list(buckets)
        if group_type == GroupType.INDIRECT and len(self.buckets) != 1:
            raise DataplaneError("INDIRECT group must have exactly one bucket")
        if not self.buckets:
            raise DataplaneError("group must have at least one bucket")
        self.packet_count = 0

    def select_buckets(
        self,
        key: FlowKey,
        port_is_live: Callable[[int], bool],
    ) -> List[Bucket]:
        """The buckets a packet with ``key`` should traverse.

        * ALL: every bucket.
        * SELECT: one bucket chosen by a deterministic hash of the flow key
          weighted by bucket weight — same 5-tuple, same path (flowlet-free
          ECMP, like hardware).
        * INDIRECT: the single bucket.
        * FAST_FAILOVER: the first bucket whose watch port is live; none if
          all are dead.
        """
        self.packet_count += 1
        if self.group_type == GroupType.ALL:
            return list(self.buckets)
        if self.group_type == GroupType.INDIRECT:
            return [self.buckets[0]]
        if self.group_type == GroupType.SELECT:
            total = sum(b.weight for b in self.buckets)
            slot = hash(key) % total
            upto = 0
            for bucket in self.buckets:
                upto += bucket.weight
                if slot < upto:
                    return [bucket]
            return [self.buckets[-1]]  # unreachable, defensive
        # FAST_FAILOVER
        for bucket in self.buckets:
            if bucket.watch_port is None or port_is_live(bucket.watch_port):
                return [bucket]
        return []

    def live_bucket_count(self, port_is_live: Callable[[int], bool]) -> int:
        return sum(
            1 for b in self.buckets
            if b.watch_port is None or port_is_live(b.watch_port)
        )

    def __repr__(self) -> str:
        return (
            f"<GroupEntry id={self.group_id} type={self.group_type} "
            f"buckets={len(self.buckets)}>"
        )


class GroupTable:
    """The switch's group id → entry mapping.

    ``on_change`` (when set) fires after any mutation; the owning
    datapath uses it to invalidate its microflow fast path.
    """

    def __init__(self) -> None:
        self._groups: Dict[int, GroupEntry] = {}
        self.on_change: Optional[Callable[[], None]] = None

    def _changed(self) -> None:
        if self.on_change is not None:
            self.on_change()

    def add(self, entry: GroupEntry) -> None:
        if entry.group_id in self._groups:
            raise DataplaneError(f"group {entry.group_id} already exists")
        self._groups[entry.group_id] = entry
        self._changed()

    def modify(self, entry: GroupEntry) -> None:
        if entry.group_id not in self._groups:
            raise DataplaneError(f"group {entry.group_id} does not exist")
        self._groups[entry.group_id] = entry
        self._changed()

    def delete(self, group_id: int) -> Optional[GroupEntry]:
        entry = self._groups.pop(group_id, None)
        if entry is not None:
            self._changed()
        return entry

    def clear(self) -> int:
        count = len(self._groups)
        self._groups.clear()
        if count:
            self._changed()
        return count

    def get(self, group_id: int) -> GroupEntry:
        entry = self._groups.get(group_id)
        if entry is None:
            raise DataplaneError(f"no such group: {group_id}")
        return entry

    def __contains__(self, group_id: int) -> bool:
        return group_id in self._groups

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self):
        return iter(self._groups.values())
