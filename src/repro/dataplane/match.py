"""Flow keys and match structures — the heart of match-action forwarding.

A :class:`FlowKey` is the concrete tuple of header fields extracted once
per packet at pipeline ingress.  A :class:`Match` is a pattern over those
fields: unset fields are wildcards, IP fields accept prefixes, and matches
are orderable by :attr:`specificity` so tests can reason about overlap.

The field set mirrors the OpenFlow 1.0 12-tuple (minus physical-layer
oddities), which is what the calibration band's reference systems (Ryu,
Open vSwitch) expose by default.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.errors import DataplaneError
from repro.packet import (
    ARP,
    ICMP,
    IPv4,
    IPv4Address,
    IPv4Network,
    MACAddress,
    Packet,
    TCP,
    UDP,
    VLAN,
    Ethernet,
)

__all__ = ["FlowKey", "Match", "VLAN_ABSENT", "MATCH_FIELDS"]

#: Sentinel for "the frame carries no 802.1Q tag" in the vlan_vid field.
VLAN_ABSENT = -1

#: Every field a Match may constrain, in canonical order.
MATCH_FIELDS: Tuple[str, ...] = (
    "in_port",
    "eth_src",
    "eth_dst",
    "eth_type",
    "vlan_vid",
    "ip_src",
    "ip_dst",
    "ip_proto",
    "ip_dscp",
    "l4_src",
    "l4_dst",
)


class FlowKey:
    """The concrete header fields of one packet, extracted at ingress.

    Fields that do not exist in the packet (e.g. ``l4_src`` of an ARP
    frame) are ``None``; a Match constraining such a field cannot match
    the packet.
    """

    __slots__ = MATCH_FIELDS

    def __init__(
        self,
        in_port: Optional[int] = None,
        eth_src: Optional[MACAddress] = None,
        eth_dst: Optional[MACAddress] = None,
        eth_type: Optional[int] = None,
        vlan_vid: int = VLAN_ABSENT,
        ip_src: Optional[IPv4Address] = None,
        ip_dst: Optional[IPv4Address] = None,
        ip_proto: Optional[int] = None,
        ip_dscp: Optional[int] = None,
        l4_src: Optional[int] = None,
        l4_dst: Optional[int] = None,
    ) -> None:
        self.in_port = in_port
        self.eth_src = eth_src
        self.eth_dst = eth_dst
        self.eth_type = eth_type
        self.vlan_vid = vlan_vid
        self.ip_src = ip_src
        self.ip_dst = ip_dst
        self.ip_proto = ip_proto
        self.ip_dscp = ip_dscp
        self.l4_src = l4_src
        self.l4_dst = l4_dst

    @classmethod
    def from_packet(cls, packet: Packet, in_port: Optional[int] = None) -> "FlowKey":
        """Extract the flow key of ``packet`` as received on ``in_port``."""
        from repro.packet.ethernet import _ethertype_of

        key = cls(in_port=in_port)
        headers = packet.headers
        eth = packet.get(Ethernet)
        if eth is not None:
            key.eth_src = eth.src
            key.eth_dst = eth.dst
            key.eth_type = eth.ethertype
            # The declared ethertype is only trustworthy after encode();
            # the actual next header is ground truth for in-memory
            # packets built with the / operator.
            idx = headers.index(eth)
            if idx + 1 < len(headers):
                derived = _ethertype_of(headers[idx + 1])
                if derived is not None:
                    key.eth_type = derived
        vlan = packet.get(VLAN)
        if vlan is not None:
            key.vlan_vid = vlan.vid
            key.eth_type = vlan.ethertype  # match on the inner protocol
            idx = headers.index(vlan)
            if idx + 1 < len(headers):
                derived = _ethertype_of(headers[idx + 1])
                if derived is not None:
                    key.eth_type = derived
        ip = packet.get(IPv4)
        if ip is not None:
            key.ip_src = ip.src
            key.ip_dst = ip.dst
            key.ip_proto = ip.proto
            key.ip_dscp = ip.dscp
            # As with eth_type: prefer the actual successor header over
            # the not-yet-linked proto field of in-memory packets.
            from repro.packet.ipv4 import _proto_of

            idx = headers.index(ip)
            if idx + 1 < len(headers):
                derived = _proto_of(headers[idx + 1])
                if derived is not None:
                    key.ip_proto = derived
        else:
            arp = packet.get(ARP)
            if arp is not None:
                # OpenFlow convention: ARP SPA/TPA ride the IP fields.
                key.ip_src = arp.sender_ip
                key.ip_dst = arp.target_ip
                key.ip_proto = arp.opcode
        tcp = packet.get(TCP)
        udp = packet.get(UDP)
        icmp = packet.get(ICMP)
        if tcp is not None:
            key.l4_src, key.l4_dst = tcp.src_port, tcp.dst_port
        elif udp is not None:
            key.l4_src, key.l4_dst = udp.src_port, udp.dst_port
        elif icmp is not None:
            # OpenFlow convention: ICMP type/code ride the L4 port fields.
            key.l4_src, key.l4_dst = icmp.icmp_type, icmp.code
        return key

    def as_dict(self) -> Dict[str, Any]:
        return {f: getattr(self, f) for f in MATCH_FIELDS}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowKey):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self) -> int:
        return hash(tuple(
            getattr(self, f).value if hasattr(getattr(self, f), "value")
            else getattr(self, f)
            for f in MATCH_FIELDS
        ))

    def __repr__(self) -> str:
        set_fields = ", ".join(
            f"{f}={v}" for f, v in self.as_dict().items()
            if v is not None and not (f == "vlan_vid" and v == VLAN_ABSENT)
        )
        return f"FlowKey({set_fields})"


_IPField = Union[str, IPv4Address, IPv4Network]


def _normalise_ip(value: _IPField) -> Union[IPv4Address, IPv4Network]:
    if isinstance(value, (IPv4Address, IPv4Network)):
        return value
    if isinstance(value, str) and "/" in value:
        return IPv4Network(value)
    return IPv4Address(value)


class Match:
    """An immutable pattern over :data:`MATCH_FIELDS`.

    Unset fields are wildcards.  ``ip_src``/``ip_dst`` may be exact
    addresses or :class:`IPv4Network` prefixes (given as ``"10.0.0.0/8"``).
    ``vlan_vid`` may be :data:`VLAN_ABSENT` to require an untagged frame.

    >>> m = Match(eth_type=0x0800, ip_dst="10.0.1.0/24")
    >>> m.matches(FlowKey(eth_type=0x0800, ip_dst=IPv4Address("10.0.1.7")))
    True
    """

    __slots__ = ("_fields", "_hash")

    def __init__(self, **fields: Any) -> None:
        unknown = set(fields) - set(MATCH_FIELDS)
        if unknown:
            raise DataplaneError(
                f"unknown match field(s): {', '.join(sorted(unknown))}"
            )
        normalised: Dict[str, Any] = {}
        for name, value in fields.items():
            if value is None:
                continue
            if name in ("eth_src", "eth_dst"):
                value = MACAddress(value)
            elif name in ("ip_src", "ip_dst"):
                value = _normalise_ip(value)
            normalised[name] = value
        self._fields = normalised
        self._hash = hash(tuple(
            sorted(normalised.items(), key=lambda kv: kv[0])
        ))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fields(self) -> Dict[str, Any]:
        """A copy of the constrained field mapping."""
        return dict(self._fields)

    def get(self, name: str) -> Any:
        return self._fields.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    @property
    def is_wildcard(self) -> bool:
        """True for the match-everything pattern."""
        return not self._fields

    @property
    def specificity(self) -> int:
        """How many field-bits this match pins down.

        Exact fields count 32; IP prefixes count their prefix length.
        Used for diagnostics and for deterministic tie-breaking in tests —
        the dataplane itself orders strictly by entry priority.
        """
        score = 0
        for name, value in self._fields.items():
            if isinstance(value, IPv4Network):
                score += value.prefix_len
            else:
                score += 32
        return score

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def matches(self, key: FlowKey) -> bool:
        """True when every constrained field agrees with ``key``."""
        for name, expected in self._fields.items():
            actual = getattr(key, name)
            if name == "vlan_vid":
                if actual != expected:
                    return False
                continue
            if actual is None:
                return False
            if isinstance(expected, IPv4Network):
                if not expected.contains(actual):
                    return False
            elif expected != actual:
                return False
        return True

    def matches_packet(self, packet: Packet,
                       in_port: Optional[int] = None) -> bool:
        """Convenience: extract the key and test it."""
        return self.matches(FlowKey.from_packet(packet, in_port))

    def is_subset_of(self, other: "Match") -> bool:
        """True when every key matched by ``self`` is matched by ``other``.

        Conservative for IP prefixes (exact containment check); used by
        flow-mod delete-with-wildcard semantics and by the policy compiler
        to prune shadowed rules.
        """
        for name, their in other._fields.items():
            ours = self._fields.get(name)
            if ours is None:
                return False  # we are wider on this field
            if isinstance(their, IPv4Network):
                if isinstance(ours, IPv4Network):
                    if ours.prefix_len < their.prefix_len:
                        return False
                    if not their.contains(ours.address):
                        return False
                elif not their.contains(ours):
                    return False
            elif isinstance(ours, IPv4Network):
                return False  # ours is a prefix, theirs exact: wider
            elif ours != their:
                return False
        return True

    def overlaps(self, other: "Match") -> bool:
        """True when some key could match both patterns."""
        for name in set(self._fields) & set(other._fields):
            a, b = self._fields[name], other._fields[name]
            a_net = isinstance(a, IPv4Network)
            b_net = isinstance(b, IPv4Network)
            if a_net and b_net:
                shorter, longer = (a, b) if a.prefix_len <= b.prefix_len else (b, a)
                if not shorter.contains(longer.address):
                    return False
            elif a_net:
                if not a.contains(b):
                    return False
            elif b_net:
                if not b.contains(a):
                    return False
            elif a != b:
                return False
        return True

    def intersect(self, other: "Match") -> Optional["Match"]:
        """The match accepting exactly the keys both accept.

        Returns ``None`` when the intersection is empty (conflicting
        constraints).  IP prefixes intersect to the longer prefix when
        one contains the other.
        """
        merged: Dict[str, Any] = dict(self._fields)
        for name, their in other._fields.items():
            ours = merged.get(name)
            if ours is None:
                merged[name] = their
                continue
            ours_net = isinstance(ours, IPv4Network)
            their_net = isinstance(their, IPv4Network)
            if ours_net and their_net:
                shorter, longer = (
                    (ours, their) if ours.prefix_len <= their.prefix_len
                    else (their, ours)
                )
                if not shorter.contains(longer.address):
                    return None
                merged[name] = longer
            elif ours_net:
                if not ours.contains(their):
                    return None
                merged[name] = their
            elif their_net:
                if not their.contains(ours):
                    return None
                # keep ours (the exact address)
            elif ours != their:
                return None
        return Match(**merged)

    @classmethod
    def exact(cls, key: FlowKey) -> "Match":
        """The exact-match pattern for a flow key (microflow rule).

        Fields the packet does not have stay wildcarded, matching how a
        reactive controller installs per-flow rules.
        """
        fields = {
            name: value
            for name, value in key.as_dict().items()
            if value is not None
        }
        return cls(**fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.is_wildcard:
            return "Match(*)"
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._fields.items()))
        return f"Match({inner})"
