"""Token-bucket meters for rate limiting (the slicing app's enforcement).

A meter owns a token bucket refilled at ``rate_bps``; packets that exceed
the bucket are dropped (the only band type implemented — DSCP-remark would
slot in the same way).  Meters are what make slice isolation (benchmark
E10) enforceable in the dataplane rather than by controller politeness.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import DataplaneError

__all__ = ["MeterEntry", "MeterTable"]


class MeterEntry:
    """A single-band drop meter implemented as a token bucket.

    Parameters
    ----------
    rate_bps:
        Sustained rate in bits per second.
    burst_bytes:
        Bucket depth; defaults to 1/10 s worth of tokens (a common
        hardware default) with a floor of one 1500-byte MTU.
    """

    __slots__ = (
        "meter_id",
        "rate_bps",
        "burst_bytes",
        "_tokens",
        "_last_refill",
        "passed_packets",
        "passed_bytes",
        "dropped_packets",
        "dropped_bytes",
    )

    def __init__(
        self,
        meter_id: int,
        rate_bps: float,
        burst_bytes: Optional[int] = None,
    ) -> None:
        if rate_bps <= 0:
            raise DataplaneError(f"meter rate must be positive: {rate_bps}")
        self.meter_id = meter_id
        self.rate_bps = rate_bps
        if burst_bytes is None:
            burst_bytes = max(int(rate_bps / 8 / 10), 1500)
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last_refill = 0.0
        self.passed_packets = 0
        self.passed_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0

    def allow(self, nbytes: int, now: float) -> bool:
        """True when a packet of ``nbytes`` conforms at time ``now``."""
        elapsed = max(now - self._last_refill, 0.0)
        self._last_refill = now
        self._tokens = min(
            self.burst_bytes, self._tokens + elapsed * self.rate_bps / 8
        )
        if self._tokens >= nbytes:
            self._tokens -= nbytes
            self.passed_packets += 1
            self.passed_bytes += nbytes
            return True
        self.dropped_packets += 1
        self.dropped_bytes += nbytes
        return False

    @property
    def drop_rate(self) -> float:
        total = self.passed_packets + self.dropped_packets
        return self.dropped_packets / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"<Meter id={self.meter_id} rate={self.rate_bps:.0f}bps "
            f"pass={self.passed_packets} drop={self.dropped_packets}>"
        )


class MeterTable:
    """The switch's meter id → entry mapping.

    ``on_change`` (when set) fires after any mutation; the owning
    datapath uses it to invalidate its microflow fast path.
    """

    def __init__(self) -> None:
        self._meters: Dict[int, MeterEntry] = {}
        self.on_change: Optional[Callable[[], None]] = None

    def _changed(self) -> None:
        if self.on_change is not None:
            self.on_change()

    def add(self, entry: MeterEntry) -> None:
        if entry.meter_id in self._meters:
            raise DataplaneError(f"meter {entry.meter_id} already exists")
        self._meters[entry.meter_id] = entry
        self._changed()

    def modify(self, entry: MeterEntry) -> None:
        if entry.meter_id not in self._meters:
            raise DataplaneError(f"meter {entry.meter_id} does not exist")
        self._meters[entry.meter_id] = entry
        self._changed()

    def delete(self, meter_id: int) -> Optional[MeterEntry]:
        entry = self._meters.pop(meter_id, None)
        if entry is not None:
            self._changed()
        return entry

    def clear(self) -> int:
        count = len(self._meters)
        self._meters.clear()
        if count:
            self._changed()
        return count

    def get(self, meter_id: int) -> MeterEntry:
        entry = self._meters.get(meter_id)
        if entry is None:
            raise DataplaneError(f"no such meter: {meter_id}")
        return entry

    def __contains__(self, meter_id: int) -> bool:
        return meter_id in self._meters

    def __len__(self) -> int:
        return len(self._meters)

    def __iter__(self):
        return iter(self._meters.values())
