"""The switch datapath: ports plus a multi-table match-action pipeline.

A :class:`Datapath` is deliberately controller-agnostic — it exposes plain
Python callbacks (``on_packet_in``, ``on_flow_removed``, ``on_port_status``)
and a ``transmit`` hook, and knows nothing about the southbound wire
protocol.  The ZOF agent (:mod:`repro.southbound.agent`) adapts those
callbacks onto the control channel; the emulator
(:mod:`repro.netem.network`) wires ``transmit`` to links.  This strict
layering is design principle #1 in DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.dataplane.actions import (
    PORT_ALL,
    PORT_CONTROLLER,
    PORT_FLOOD,
    PORT_IN_PORT,
    PORT_TABLE,
    Action,
    Group,
    TTLExpired,
    apply_actions,
)
from repro.dataplane.flowtable import (
    FlowEntry,
    FlowTable,
    RemovalReason,
    _probe_key,
)
from repro.dataplane.group import GroupTable
from repro.dataplane.match import FlowKey, Match
from repro.dataplane.meter import MeterTable
from repro.errors import DataplaneError
from repro.packet import MACAddress, Packet
from repro.sim import Simulator
from repro.telemetry import ensure

__all__ = ["Datapath", "Port", "PacketInReason", "TableMissBehaviour"]

#: Recursion guard for group→group action chains.
_MAX_GROUP_DEPTH = 4

#: Microflow cache entries before a generation bump also clears the dict
#: (bounds memory; correctness never depends on eager clearing).
_FP_CACHE_MAX = 8192


class _CachedPath:
    """One resolved walk through the table pipeline for a microflow.

    ``steps`` is the exact lookup sequence the slow path performed:
    ``(table_id, entry_or_None, needs_key)`` triples, where ``needs_key``
    records whether the entry's actions consult the flow key (group
    selection) so replay only re-extracts keys when semantics demand it.
    ``terminal`` is how the walk ended: ``"stop"`` (entry with no goto),
    ``"punt"`` (miss sent to the controller) or ``"drop"``.
    """

    __slots__ = ("gen", "steps", "terminal")

    def __init__(self, gen: int, steps: list, terminal: str) -> None:
        self.gen = gen
        self.steps = steps
        self.terminal = terminal


class PacketInReason:
    """Why a packet was punted to the controller."""

    NO_MATCH = "no_match"
    ACTION = "action"
    TTL = "ttl_expired"


class TableMissBehaviour:
    """What a table does with a packet no entry matches."""

    CONTROLLER = "controller"
    DROP = "drop"
    CONTINUE = "continue"  # fall through to the next table


class Port:
    """A switch port: identity, liveness, and counters."""

    __slots__ = (
        "number",
        "mac",
        "up",
        "no_flood",
        "rx_packets",
        "rx_bytes",
        "tx_packets",
        "tx_bytes",
        "tx_drops",
        "name",
    )

    def __init__(self, number: int, mac: MACAddress, name: str = "") -> None:
        self.number = number
        self.mac = mac
        self.name = name or f"port{number}"
        self.up = True
        #: When set, FLOOD/ALL skip this port (OpenFlow's NO_FLOOD bit);
        #: used by the spanning-tree baseline to break loops.
        self.no_flood = False
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.tx_drops = 0

    def stats(self) -> dict:
        return {
            "port": self.number,
            "rx_packets": self.rx_packets,
            "rx_bytes": self.rx_bytes,
            "tx_packets": self.tx_packets,
            "tx_bytes": self.tx_bytes,
            "tx_drops": self.tx_drops,
        }

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"<Port {self.number} ({self.name}) {state}>"


class Datapath:
    """A multi-table match-action switch.

    Parameters
    ----------
    dpid:
        Datapath id, unique in the network.
    sim:
        The simulation kernel (for timestamps and the expiry sweeper).
    num_tables:
        Pipeline depth; packets enter at table 0.
    table_capacity:
        Per-table entry limit (0 = unbounded).
    miss_behaviour:
        Default handling for table misses.  Reactive controllers want
        ``CONTROLLER``; proactive deployments often prefer ``DROP``.
    """

    def __init__(
        self,
        dpid: int,
        sim: Simulator,
        num_tables: int = 4,
        table_capacity: int = 0,
        eviction_policy: Optional[str] = None,
        miss_behaviour: str = TableMissBehaviour.CONTROLLER,
        expiry_interval: float = 1.0,
        telemetry=None,
        fast_path: bool = True,
    ) -> None:
        if num_tables < 1:
            raise DataplaneError("a datapath needs at least one table")
        self.dpid = dpid
        self.sim = sim
        self.tables: List[FlowTable] = [
            FlowTable(i, capacity=table_capacity,
                      eviction_policy=eviction_policy)
            for i in range(num_tables)
        ]
        tel = ensure(telemetry)
        self.telemetry = tel
        self._tracing = tel.tracing
        if tel.enabled:
            d = str(dpid)
            registry = tel.metrics
            self._m_rx = registry.counter(
                "switch_rx_packets_total", "Packets entering the pipeline",
                ("dpid",),
            ).labels(d)
            self._m_fwd = registry.counter(
                "switch_forwarded_total", "Packets emitted on a port",
                ("dpid",),
            ).labels(d)
            self._m_drop = registry.counter(
                "switch_dropped_total", "Packets dropped by the pipeline",
                ("dpid",),
            ).labels(d)
            self._m_punt = registry.counter(
                "switch_packet_ins_total", "Packets punted to the controller",
                ("dpid",),
            ).labels(d)
            for flow_table in self.tables:
                flow_table.attach_metrics(registry, dpid)
        else:
            self._m_rx = self._m_fwd = self._m_drop = self._m_punt = None
        self.groups = GroupTable()
        self.meters = MeterTable()
        self.ports: Dict[int, Port] = {}
        self.miss_behaviour = miss_behaviour

        # Microflow fast path: exact-match cache in front of the table
        # pipeline, keyed by the packet's flow-key value tuple.  Any
        # table/group/meter mutation or port flap bumps the generation,
        # orphaning every cached path at O(1) cost.  The cache is
        # semantically invisible: replay reproduces every counter, trace
        # span, and side effect the slow path would have produced.
        self._fp_enabled = fast_path
        self._fp_cache: Dict[tuple, _CachedPath] = {}
        self._fp_gen = 0
        self.fast_path_hits = 0
        self.fast_path_misses = 0
        for flow_table in self.tables:
            flow_table.on_change = self.invalidate_fast_path
        self.groups.on_change = self.invalidate_fast_path
        self.meters.on_change = self.invalidate_fast_path

        # Hooks — the emulator sets transmit; the southbound agent (or a
        # test) sets the on_* callbacks.  Defaults are safe no-ops.
        self.transmit: Callable[[int, Packet], None] = lambda port, pkt: None
        self.on_packet_in: Optional[
            Callable[[Packet, int, str], None]
        ] = None
        self.on_flow_removed: Optional[
            Callable[[int, FlowEntry, str], None]
        ] = None
        self.on_port_status: Optional[Callable[[Port, str], None]] = None

        # Aggregate counters.
        self.packets_received = 0
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self.packets_to_controller = 0

        self._expiry_interval = expiry_interval
        self._sweep_scheduled = False
        self._shutdown = False

    # ------------------------------------------------------------------
    # Port management
    # ------------------------------------------------------------------
    def add_port(self, number: int, mac: Optional[MACAddress] = None,
                 name: str = "") -> Port:
        if number in self.ports:
            raise DataplaneError(f"dpid {self.dpid}: port {number} exists")
        if number <= 0 or number >= PORT_IN_PORT:
            raise DataplaneError(f"physical port number invalid: {number}")
        if mac is None:
            mac = MACAddress.local((self.dpid << 16) | number)
        port = Port(number, mac, name=name)
        self.ports[number] = port
        return port

    def port(self, number: int) -> Port:
        port = self.ports.get(number)
        if port is None:
            raise DataplaneError(f"dpid {self.dpid}: no port {number}")
        return port

    def set_port_state(self, number: int, up: bool) -> None:
        """Administratively raise/lower a port, notifying the agent."""
        port = self.port(number)
        if port.up == up:
            return
        port.up = up
        self.invalidate_fast_path()
        if self.on_port_status is not None:
            reason = "up" if up else "down"
            self.on_port_status(port, reason)

    def port_is_live(self, number: int) -> bool:
        port = self.ports.get(number)
        return port is not None and port.up

    # ------------------------------------------------------------------
    # Table/group/meter programming (called by the southbound agent)
    # ------------------------------------------------------------------
    def table(self, table_id: int) -> FlowTable:
        if not 0 <= table_id < len(self.tables):
            raise DataplaneError(
                f"dpid {self.dpid}: no table {table_id} "
                f"(pipeline depth {len(self.tables)})"
            )
        return self.tables[table_id]

    def install_flow(self, entry: FlowEntry, table_id: int = 0) -> None:
        evicted = self.table(table_id).insert(entry, now=self.sim.now)
        for victim in evicted:
            self._notify_removed(table_id, victim, RemovalReason.EVICTION)
        if entry.idle_timeout or entry.hard_timeout:
            self._ensure_sweep()

    def remove_flows(
        self,
        table_id: int = 0,
        match: Optional[Match] = None,
        priority: Optional[int] = None,
        cookie: Optional[int] = None,
        strict: bool = False,
    ) -> int:
        removed = self.table(table_id).delete(
            match=match, priority=priority, cookie=cookie, strict=strict
        )
        for entry in removed:
            self._notify_removed(table_id, entry, RemovalReason.DELETE)
        return len(removed)

    def flow_count(self) -> int:
        return sum(len(t) for t in self.tables)

    # ------------------------------------------------------------------
    # The pipeline
    # ------------------------------------------------------------------
    def inject(self, packet: Packet, in_port: int) -> None:
        """A packet arrived on ``in_port``; run it through the pipeline."""
        port = self.ports.get(in_port)
        if port is None or not port.up:
            self._count_drop()
            return
        size = len(packet)
        port.rx_packets += 1
        port.rx_bytes += size
        self.packets_received += 1
        if self._m_rx is not None:
            self._m_rx.inc()
        if packet.trace_id is not None and self._tracing:
            self.telemetry.tracer.record(
                packet.trace_id, "switch.pipeline", "dataplane",
                dpid=self.dpid, in_port=in_port,
            )
        self._run_pipeline(packet, in_port, table_id=0)

    def invalidate_fast_path(self) -> None:
        """Orphan every cached microflow path (O(1) generation bump).

        Called automatically on any flow/group/meter table change and on
        port status flaps; callers that mutate installed entries in
        place (e.g. FlowMod MODIFY rewriting actions) must call it too.
        """
        self._fp_gen += 1
        if len(self._fp_cache) > _FP_CACHE_MAX:
            self._fp_cache.clear()

    def _run_pipeline(self, packet: Packet, in_port: int,
                      table_id: int) -> None:
        key = FlowKey.from_packet(packet, in_port)
        if table_id != 0 or not self._fp_enabled:
            self._walk(packet, in_port, table_id, key, None)
            return
        probe = _probe_key(key)
        path = self._fp_cache.get(probe)
        if path is not None and path.gen == self._fp_gen:
            self.fast_path_hits += 1
            self._replay(path, packet, in_port, key)
            return
        self.fast_path_misses += 1
        steps: list = []
        terminal = self._walk(packet, in_port, table_id, key, steps)
        if terminal is not None:
            # Walks where the packet died mid-pipeline (meter drop, TTL
            # expiry) are not cached: the truncated lookup sequence is
            # packet-state-dependent, not a property of the microflow.
            self._fp_cache[probe] = _CachedPath(self._fp_gen, steps,
                                               terminal)

    def _walk(self, packet: Packet, in_port: int, table_id: int,
              key: FlowKey, steps: Optional[list]) -> Optional[str]:
        """The slow path: walk the table pipeline, optionally recording
        each lookup into ``steps`` for the microflow cache.

        Returns the terminal kind (``"stop"``/``"punt"``/``"drop"``), or
        ``None`` when the packet died mid-walk and the recorded steps do
        not describe the full pipeline for this microflow.
        """
        size = len(packet)
        while True:
            entry = self.tables[table_id].lookup(key)
            if steps is not None:
                needs_key = entry is not None and any(
                    isinstance(a, Group) for a in entry.actions
                )
                steps.append((table_id, entry, needs_key))
            if packet.trace_id is not None and self._tracing:
                self.telemetry.tracer.record(
                    packet.trace_id, "table.lookup", "dataplane",
                    dpid=self.dpid, table=table_id,
                    hit=entry is not None,
                    priority=entry.priority if entry is not None else "-",
                )
            if entry is None:
                behaviour = self.miss_behaviour
                if behaviour == TableMissBehaviour.CONTINUE:
                    if table_id + 1 < len(self.tables):
                        table_id += 1
                        continue
                    self._count_drop()
                    return "drop"
                if behaviour == TableMissBehaviour.CONTROLLER:
                    self._punt(packet, in_port, PacketInReason.NO_MATCH)
                    return "punt"
                self._count_drop()
                return "drop"
            entry.touch(self.sim.now, size)
            packet = self._execute(entry.actions, packet, in_port, key,
                                   has_goto=entry.goto_table is not None)
            if packet is None:
                return None  # metered out or TTL-expired
            if entry.goto_table is None:
                return "stop"
            if entry.goto_table <= table_id:
                raise DataplaneError(
                    f"goto_table must move forward "
                    f"({table_id} -> {entry.goto_table})"
                )
            table_id = entry.goto_table
            key = FlowKey.from_packet(packet, in_port)

    def _replay(self, path: _CachedPath, packet: Packet,
                in_port: int, key: FlowKey) -> None:
        """Re-execute a cached pipeline walk without any table lookups.

        Every observable effect of the slow path is reproduced — entry
        counters, per-table lookup/match stats, trace spans, punts and
        drops — so a run is bit-identical with the cache on or off.
        Actions still execute against the live packet, and the packet
        can still die at a meter or TTL check exactly as it would have.
        """
        size = len(packet)
        now = self.sim.now
        tracing = packet.trace_id is not None and self._tracing
        tables = self.tables
        for table_id, entry, needs_key in path.steps:
            hit = entry is not None
            tables[table_id].record_lookup(hit)
            if tracing:
                self.telemetry.tracer.record(
                    packet.trace_id, "table.lookup", "dataplane",
                    dpid=self.dpid, table=table_id, hit=hit,
                    priority=entry.priority if hit else "-",
                )
            if not hit:
                continue
            entry.touch(now, size)
            if needs_key and key is None:
                key = FlowKey.from_packet(packet, in_port)
            packet = self._execute(entry.actions, packet, in_port, key,
                                   has_goto=entry.goto_table is not None)
            if packet is None:
                return  # metered out or TTL-expired, same as the walk
            # Actions may have rewritten header fields; re-extract the
            # key lazily if a later step needs it for group selection.
            key = None
        if path.terminal == "punt":
            self._punt(packet, in_port, PacketInReason.NO_MATCH)
        elif path.terminal == "drop":
            self._count_drop()

    def _execute(
        self,
        actions: Iterable[Action],
        packet: Packet,
        in_port: int,
        key: FlowKey,
        depth: int = 0,
        has_goto: bool = False,
    ) -> Optional[Packet]:
        """Apply an action list, resolving outputs/groups/meters.

        Returns the rewritten packet for goto_table continuation, or
        ``None`` when the packet died here (meter drop, TTL expiry).
        """
        try:
            rewritten, out_ports, group_ids, meter_ids = apply_actions(
                list(actions), packet, in_port
            )
        except TTLExpired:
            self._punt(packet, in_port, PacketInReason.TTL)
            return None
        size = len(rewritten)
        for meter_id in meter_ids:
            if not self.meters.get(meter_id).allow(size, self.sim.now):
                self._count_drop()
                return None
        for port_no in out_ports:
            self._emit(rewritten, in_port, port_no)
        for group_id in group_ids:
            self._run_group(rewritten, in_port, key, group_id, depth)
        if not out_ports and not group_ids and not meter_ids and not has_goto:
            # Empty action list with no continuation = explicit drop.
            self._count_drop()
        return rewritten

    def _run_group(self, packet: Packet, in_port: int, key: FlowKey,
                   group_id: int, depth: int) -> None:
        if depth >= _MAX_GROUP_DEPTH:
            raise DataplaneError(
                f"group recursion deeper than {_MAX_GROUP_DEPTH}"
            )
        group = self.groups.get(group_id)
        buckets = group.select_buckets(key, self.port_is_live)
        if not buckets:
            self._count_drop()
            return
        for bucket in buckets:
            self._execute(bucket.actions, packet, in_port, key, depth + 1)

    def _emit(self, packet: Packet, in_port: int, port_no: int) -> None:
        if port_no == PORT_CONTROLLER:
            self._punt(packet, in_port, PacketInReason.ACTION)
            return
        if port_no == PORT_TABLE:
            self._run_pipeline(packet, in_port, table_id=0)
            return
        if port_no == PORT_IN_PORT:
            self._transmit_one(packet, in_port)
            return
        if port_no in (PORT_FLOOD, PORT_ALL):
            for port in self.ports.values():
                if port.number == in_port and port_no == PORT_FLOOD:
                    continue
                if not port.up or (port.no_flood and port_no == PORT_FLOOD):
                    continue
                self._transmit_one(packet, port.number)
            return
        if port_no == in_port:
            # Per the OpenFlow spec, a packet is never emitted on its
            # ingress port unless IN_PORT is named explicitly.  Without
            # this guard a dst-rule whose learned port equals the
            # ingress hairpins the frame and poisons upstream learning.
            self._count_drop()
            return
        self._transmit_one(packet, port_no)

    def _transmit_one(self, packet: Packet, port_no: int) -> None:
        port = self.ports.get(port_no)
        if port is None or not port.up:
            self._count_drop()
            if port is not None:
                port.tx_drops += 1
            return
        size = len(packet)
        port.tx_packets += 1
        port.tx_bytes += size
        self.packets_forwarded += 1
        if self._m_fwd is not None:
            self._m_fwd.inc()
        if packet.trace_id is not None and self._tracing:
            self.telemetry.tracer.record(
                packet.trace_id, "switch.forward", "dataplane",
                dpid=self.dpid, port=port_no,
            )
        self.transmit(port_no, packet.copy())

    def send_packet_out(self, packet: Packet, actions: Iterable[Action],
                        in_port: int = 0) -> None:
        """Controller-originated transmission (ZOF packet-out)."""
        key = FlowKey.from_packet(packet, in_port)
        self._execute(actions, packet, in_port, key)

    def _punt(self, packet: Packet, in_port: int, reason: str) -> None:
        self.packets_to_controller += 1
        if self._m_punt is not None:
            self._m_punt.inc()
        if packet.trace_id is not None and self._tracing:
            self.telemetry.tracer.record(
                packet.trace_id, "switch.punt", "dataplane",
                dpid=self.dpid, reason=reason,
            )
        if self.on_packet_in is not None:
            self.on_packet_in(packet.copy(), in_port, reason)

    def _count_drop(self) -> None:
        self.packets_dropped += 1
        if self._m_drop is not None:
            self._m_drop.inc()

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def _ensure_sweep(self) -> None:
        """Arm the expiry sweeper if it is not already pending.

        The sweeper is demand-driven: it only stays scheduled while some
        entry carries a timeout, so an idle datapath leaves the event
        queue empty (letting ``run_until_idle`` terminate).
        """
        if self._sweep_scheduled or self._shutdown:
            return
        self._sweep_scheduled = True
        self.sim.schedule(self._expiry_interval, self._sweep)

    def _sweep(self) -> None:
        self._sweep_scheduled = False
        if self._shutdown:
            return
        rearm = False
        for table in self.tables:
            for entry, reason in table.expire(self.sim.now):
                self._notify_removed(table.table_id, entry, reason)
            if table.has_timeouts:
                rearm = True
        if rearm:
            self._ensure_sweep()

    def _notify_removed(self, table_id: int, entry: FlowEntry,
                        reason: str) -> None:
        # Export a flow record regardless of whether the controller asked
        # for a removal notification — NetFlow sees everything.
        self.telemetry.flows.record_removal(
            self.dpid, table_id, entry, reason, self.sim.now
        )
        if self.on_flow_removed is not None:
            self.on_flow_removed(table_id, entry, reason)

    def shutdown(self) -> None:
        """Stop periodic work; the datapath becomes inert."""
        self._shutdown = True

    def stats(self) -> dict:
        return {
            "dpid": self.dpid,
            "received": self.packets_received,
            "forwarded": self.packets_forwarded,
            "dropped": self.packets_dropped,
            "to_controller": self.packets_to_controller,
            "flows": self.flow_count(),
        }

    def fast_path_stats(self) -> dict:
        """Microflow cache effectiveness (perf diagnostics, not protocol
        state — deliberately separate from :meth:`stats`)."""
        total = self.fast_path_hits + self.fast_path_misses
        return {
            "enabled": self._fp_enabled,
            "hits": self.fast_path_hits,
            "misses": self.fast_path_misses,
            "hit_rate": self.fast_path_hits / total if total else 0.0,
            "cached_paths": len(self._fp_cache),
            "generation": self._fp_gen,
        }

    def __repr__(self) -> str:
        return (
            f"<Datapath dpid={self.dpid} ports={len(self.ports)} "
            f"flows={self.flow_count()}>"
        )
