"""Exception hierarchy shared by every ZenSDN subsystem.

All library errors derive from :class:`ZenError` so callers can catch the
whole family with a single ``except`` clause while still being able to
discriminate precise failure modes.
"""

from __future__ import annotations


class ZenError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SimulationError(ZenError):
    """The simulation kernel was used incorrectly (e.g. negative delay)."""


class PacketError(ZenError):
    """A packet could not be built, encoded, or decoded."""


class DecodeError(PacketError):
    """Raised when a byte buffer does not parse as the expected header."""


class AddressError(PacketError):
    """Raised for malformed MAC or IPv4 address literals."""


class DataplaneError(ZenError):
    """A switch pipeline operation failed (bad table id, port, group...)."""


class TableFullError(DataplaneError):
    """A flow table rejected an insertion because it reached capacity."""

    def __init__(self, table_id: int, capacity: int) -> None:
        super().__init__(
            f"flow table {table_id} is full (capacity {capacity})"
        )
        self.table_id = table_id
        self.capacity = capacity


class ProtocolError(ZenError):
    """A southbound message violated the ZOF protocol state machine."""


class ChannelClosedError(ProtocolError):
    """An operation was attempted on a closed control channel."""


class TopologyError(ZenError):
    """The emulated topology is malformed (unknown node, duplicate link)."""


class ControllerError(ZenError):
    """A controller-side invariant was violated."""


class IntentError(ControllerError):
    """An intent could not be compiled or installed."""


class PolicyError(ZenError):
    """A northbound policy expression is malformed or uncompilable."""
