"""repro.faults — deterministic fault injection for ZenSDN scenarios.

The keynote's argument for centralised control is only as strong as the
platform's behaviour when things break — links flap, switch agents
crash, and the control channel itself drops.  This package scripts those
failures against the simulation kernel so every run is reproducible:

* :class:`FaultSchedule` — a fluent scripting surface that arms link
  flaps, control-channel disconnect/reconnect cycles, and switch-agent
  crash/restart at exact simulated times.
* :class:`FaultEvent` — the per-injection log record (kind, time,
  target), so tests and benchmarks can assert exactly what happened.

Recovery machinery lives where the state lives — the reconnect
handshake and flow-table resync in ``controller.core``, request
timeout/retry in ``southbound.channel`` — this package only *drives*
it.  See PROTOCOL.md §9 for the failure semantics and benchmark E11 for
the headline measurement (blackholed packets and reconvergence time
versus flap frequency).
"""

from repro.faults.schedule import FaultEvent, FaultSchedule

__all__ = ["FaultEvent", "FaultSchedule"]
