"""Scripted fault injection driven by the simulation kernel.

A :class:`FaultSchedule` wraps a :class:`~repro.netem.network.Network`
and arms failures at absolute simulated times.  Every injection is an
ordinary kernel event, so fault scenarios replay bit-identically under a
fixed seed — the property benchmark E11 leans on to sweep flap
frequencies and compare runs.

The schedule injects; it never repairs state itself.  Recovery is the
platform's job: the controller resyncs flow tables on reconnect, the
channel fails pending requests explicitly, routing apps re-path around
a stale dpid.  What the schedule *does* keep is an execution log
(:class:`FaultEvent` per injection) and fault/recovery telemetry.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import TopologyError
from repro.netem.network import Network

__all__ = ["FaultEvent", "FaultSchedule"]


class FaultEvent:
    """One executed injection: what, when, to whom.

    ``trace_id``/``span_id`` point at the injection's root span when
    tracing is on — the anchor the cluster handover chain, the obs
    annotations, and SLO exemplars all hang off.
    """

    __slots__ = ("time", "kind", "target", "trace_id", "span_id")

    def __init__(self, time: float, kind: str, target: str,
                 trace_id: Optional[int] = None,
                 span_id: Optional[int] = None) -> None:
        self.time = time
        self.kind = kind
        self.target = target
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:
        return f"<FaultEvent t={self.time:.3f} {self.kind} {self.target}>"


class FaultSchedule:
    """Scripts failures against a network at simulated times.

    All ``at``/``start`` times are *absolute* simulated seconds (matching
    ``sim.schedule_at``), so a schedule composed before ``run()`` reads
    like a timeline.  Methods return ``self`` for chaining::

        FaultSchedule(net) \
            .link_flap(5.0, "s1", "s2", down_for=0.5, period=2.0, count=3) \
            .channel_flap(5.0, "s3", down_for=0.4, period=1.0, count=2) \
            .switch_crash(8.0, "s4", restart_after=1.0)

    Injections are armed immediately (kernel events); the ``log`` fills
    in as they fire.
    """

    def __init__(self, net: Network, telemetry=None) -> None:
        self.net = net
        self.sim = net.sim
        self.log: List[FaultEvent] = []
        self.injected = 0
        #: Controller cluster targeted by controller_* faults; set via
        #: :meth:`attach_cluster`.
        self.cluster = None
        #: Post-fire hook: called with the :class:`FaultEvent` after the
        #: injection's action ran.  The invariant monitor uses this to
        #: audit the dataplane at the exact injection instant — before
        #: any control-plane reaction has been processed.
        self.on_fire: Optional[Callable[[FaultEvent], None]] = None
        tel = telemetry if telemetry is not None else net.telemetry
        self._tracer = None
        self._m_faults = None
        if tel is not None and tel.enabled:
            self._m_faults = tel.metrics.counter(
                "faults_injected_total", "Scripted fault injections",
                ("kind",),
            )
            if tel.tracing:
                self._tracer = tel.tracer

    # ------------------------------------------------------------------
    # Link faults
    # ------------------------------------------------------------------
    def link_down(self, at: float, a: str, b: str) -> "FaultSchedule":
        """Cut the a--b link at time ``at``."""
        self.net.link(a, b)  # validate now, not at fire time
        self._arm(at, "link_down", f"{a}-{b}",
                  lambda: self.net.fail_link(a, b))
        return self

    def link_up(self, at: float, a: str, b: str) -> "FaultSchedule":
        """Restore the a--b link at time ``at``."""
        self.net.link(a, b)
        self._arm(at, "link_up", f"{a}-{b}",
                  lambda: self.net.recover_link(a, b))
        return self

    def link_flap(self, start: float, a: str, b: str, down_for: float,
                  period: float, count: int = 1) -> "FaultSchedule":
        """``count`` down/up cycles: down at ``start + k*period`` for
        ``down_for`` seconds each."""
        self._check_flap(down_for, period, count)
        for k in range(count):
            t = start + k * period
            self.link_down(t, a, b)
            self.link_up(t + down_for, a, b)
        return self

    # ------------------------------------------------------------------
    # Control-channel faults
    # ------------------------------------------------------------------
    def channel_down(self, at: float, switch: str) -> "FaultSchedule":
        """Drop the control channel of ``switch`` at time ``at``."""
        channel = self.net.channel(switch)
        self._arm(at, "channel_down", switch, channel.disconnect)
        return self

    def channel_up(self, at: float, switch: str) -> "FaultSchedule":
        """Reconnect the control channel of ``switch`` at time ``at``."""
        channel = self.net.channel(switch)
        self._arm(at, "channel_up", switch, channel.connect)
        return self

    def channel_flap(self, start: float, switch: str, down_for: float,
                     period: float, count: int = 1) -> "FaultSchedule":
        """``count`` disconnect/reconnect cycles on one control channel."""
        self._check_flap(down_for, period, count)
        for k in range(count):
            t = start + k * period
            self.channel_down(t, switch)
            self.channel_up(t + down_for, switch)
        return self

    # ------------------------------------------------------------------
    # Switch-agent faults
    # ------------------------------------------------------------------
    def switch_crash(self, at: float, switch: str,
                     restart_after: Optional[float] = None,
                     wipe_state: bool = True) -> "FaultSchedule":
        """Crash the ZOF agent(s) of ``switch`` (reboot semantics by
        default); optionally restart ``restart_after`` seconds later.

        In cluster mode a switch carries one agent per controller
        instance; a physical crash takes down every one of them.
        """
        agents = self.net.agents_of(switch)

        def crash_all() -> None:
            for i, agent in enumerate(agents):
                # State is shared per datapath: wipe it once.
                agent.crash(wipe_state=wipe_state and i == 0)

        self._arm(at, "switch_crash", switch, crash_all)
        if restart_after is not None:
            self.switch_restart(at + restart_after, switch)
        return self

    def switch_restart(self, at: float, switch: str) -> "FaultSchedule":
        """Bring a crashed agent back: reconnect and re-handshake."""
        agents = self.net.agents_of(switch)

        def restart_all() -> None:
            for agent in agents:
                agent.restart()

        self._arm(at, "switch_restart", switch, restart_all)
        return self

    # ------------------------------------------------------------------
    # Controller-cluster faults
    # ------------------------------------------------------------------
    def attach_cluster(self, cluster) -> "FaultSchedule":
        """Bind a :class:`~repro.cluster.node.ControllerCluster` so the
        ``controller_*`` fault kinds can target its nodes."""
        self.cluster = cluster
        return self

    def _require_cluster(self):
        if self.cluster is None:
            raise TopologyError(
                "no cluster attached; call attach_cluster() first"
            )
        return self.cluster

    def controller_crash(self, at: float, node: int,
                         restart_after: Optional[float] = None,
                         ) -> "FaultSchedule":
        """Fail-stop controller instance ``node``: its channels drop,
        its in-memory state is lost, and the survivors take over its
        switches after the detection delay.  Optionally restart it
        ``restart_after`` seconds later (it rejoins empty and resyncs
        from its peers before reclaiming any mastership).
        """
        cluster = self._require_cluster()
        cluster.node(node)  # validate now, not at fire time
        self._arm(at, "controller_crash", f"controller-{node}",
                  lambda: cluster.crash_node(node))
        if restart_after is not None:
            self.controller_restart(at + restart_after, node)
        return self

    def controller_restart(self, at: float, node: int) -> "FaultSchedule":
        """Restart a crashed controller instance at time ``at``."""
        cluster = self._require_cluster()
        self._arm(at, "controller_restart", f"controller-{node}",
                  lambda: cluster.restart_node(node))
        return self

    def controller_partition(self, at: float, groups,
                             heal_after: Optional[float] = None,
                             ) -> "FaultSchedule":
        """Split the east-west bus into ``groups`` (lists of node ids)
        at time ``at``; optionally heal ``heal_after`` seconds later.
        Minority-side nodes self-demote their masterships; the majority
        side adopts them, fenced by bumped terms.
        """
        cluster = self._require_cluster()
        frozen = [list(g) for g in groups]
        label = "|".join(",".join(str(n) for n in g) for g in frozen)
        self._arm(at, "controller_partition", label,
                  lambda: cluster.partition(frozen))
        if heal_after is not None:
            self.controller_heal(at + heal_after)
        return self

    def controller_heal(self, at: float) -> "FaultSchedule":
        """Reconnect all east-west partitions at time ``at``."""
        cluster = self._require_cluster()
        self._arm(at, "controller_heal", "cluster", cluster.heal)
        return self

    # ------------------------------------------------------------------
    # Machinery
    # ------------------------------------------------------------------
    def _check_flap(self, down_for: float, period: float,
                    count: int) -> None:
        if down_for <= 0:
            raise TopologyError(f"down_for must be positive: {down_for}")
        if period <= down_for:
            raise TopologyError(
                f"period ({period}) must exceed down_for ({down_for})"
            )
        if count < 1:
            raise TopologyError(f"count must be >= 1: {count}")

    def _arm(self, at: float, kind: str, target: str, action) -> None:
        if at < self.sim.now:
            raise TopologyError(
                f"cannot schedule {kind} at {at}; now is {self.sim.now}"
            )
        self.sim.schedule_at(at, self._fire, kind, target, action)

    def _fire(self, kind: str, target: str, action) -> None:
        event = FaultEvent(self.sim.now, kind, target)
        self.log.append(event)
        self.injected += 1
        if self._m_faults is not None:
            self._m_faults.labels(kind).inc()
        if self._tracer is not None:
            tid = self._tracer.start_trace(f"fault:{kind} {target}")
            sid = self._tracer.record(tid, f"fault.{kind}", "fault",
                                      target=target)
            event.trace_id = tid
            event.span_id = sid
            if (self.cluster is not None
                    and kind.startswith("controller")):
                # Hand the root span to the cluster: the asynchronous
                # handover chain (death detection -> election -> term
                # bump -> role grant -> resync) records under it.
                self.cluster.note_fault_trace(tid, sid, self.sim.now)
        action()
        if self.on_fire is not None:
            self.on_fire(event)

    def events(self, kind: Optional[str] = None) -> List[FaultEvent]:
        """Executed injections so far, optionally filtered by kind."""
        if kind is None:
            return list(self.log)
        return [e for e in self.log if e.kind == kind]

    def __repr__(self) -> str:
        return f"<FaultSchedule {self.injected} injected>"
