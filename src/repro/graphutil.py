"""Graph helpers shared by control planes (centralised and distributed).

The flagship function is :func:`canonical_tree_edges`: a spanning tree
computed so that *any* two parties with the same edge set derive the same
tree, regardless of the order their adjacency databases were populated.
Distributed tree-flooding is only loop-free if every switch agrees on the
tree — a plain ``networkx.bfs_tree`` depends on adjacency insertion order
and silently breaks that agreement.
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, Set

import networkx as nx

__all__ = ["canonical_tree_edges"]


def canonical_tree_edges(graph: nx.Graph) -> Set[FrozenSet]:
    """A BFS spanning tree rooted at the minimum node id.

    Neighbours are visited in sorted order, so the result is a pure
    function of the edge set.  Returns edges as ``frozenset({u, v})``;
    disconnected components each get their own tree (rooted at their
    minimum node).
    """
    edges: Set[FrozenSet] = set()
    seen: Set = set()
    for start in sorted(graph.nodes):
        if start in seen:
            continue
        seen.add(start)
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbour in sorted(graph.neighbors(node)):
                if neighbour in seen:
                    continue
                seen.add(neighbour)
                edges.add(frozenset((node, neighbour)))
                queue.append(neighbour)
    return edges
