"""Network emulation: links, hosts, topologies, and workloads."""

from repro.netem.host import Host, PingSession
from repro.netem.link import Attachment, Link, dscp_classifier
from repro.netem.network import Network
from repro.netem.reliable import ReliableReceiver, ReliableSender
from repro.netem.tap import Tap, TapRecord
from repro.netem.topology import LinkSpec, NodeSpec, Topology
from repro.netem.traffic import (
    FLOW_HEADER,
    CBRStream,
    FlowGenerator,
    FlowRecord,
    FlowSink,
    RequestLoad,
    pareto_sizes,
)

__all__ = [
    "Attachment",
    "CBRStream",
    "FLOW_HEADER",
    "FlowGenerator",
    "FlowRecord",
    "FlowSink",
    "Host",
    "Link",
    "LinkSpec",
    "Network",
    "NodeSpec",
    "PingSession",
    "ReliableReceiver",
    "ReliableSender",
    "RequestLoad",
    "Tap",
    "TapRecord",
    "Topology",
    "dscp_classifier",
    "pareto_sizes",
]
