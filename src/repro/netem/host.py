"""End hosts with a miniature ARP/IPv4/ICMP/UDP stack.

A host owns exactly one interface attached to a link.  The stack is small
but honest: IP delivery requires ARP resolution (with request retry and a
pending-packet queue), pings are real ICMP echo exchanges, and UDP demux
follows bound ports.  Every byte a host emits traverses the emulated
links and switch pipelines — nothing is short-circuited.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.errors import TopologyError
from repro.packet import (
    ARP,
    BROADCAST_MAC,
    Ethernet,
    ICMP,
    ICMPType,
    IPv4,
    IPv4Address,
    MACAddress,
    Packet,
    UDP,
)
from repro.sim import Signal, Simulator
from repro.telemetry import ensure

__all__ = ["Host", "PingSession"]

#: How long a pending ARP resolution waits before retrying.
_ARP_RETRY = 1.0
#: Retries before the queued packets are dropped.
_ARP_MAX_TRIES = 3


class PingSession:
    """Bookkeeping for one ``host.ping(...)`` invocation.

    ``rtts`` collects one float per received reply (seconds); ``done``
    fires when every probe has been answered or timed out.
    """

    def __init__(self, sim: Simulator, count: int, timeout: float) -> None:
        self._sim = sim
        self.count = count
        self.timeout = timeout
        self.rtts: List[float] = []
        self.lost = 0
        self.done = Signal(sim)
        self._outstanding: Dict[int, float] = {}  # seq -> send time

    @property
    def received(self) -> int:
        return len(self.rtts)

    @property
    def finished(self) -> bool:
        return self.received + self.lost >= self.count

    @property
    def min_rtt(self) -> float:
        return min(self.rtts) if self.rtts else float("nan")

    @property
    def avg_rtt(self) -> float:
        return sum(self.rtts) / len(self.rtts) if self.rtts else float("nan")

    @property
    def max_rtt(self) -> float:
        return max(self.rtts) if self.rtts else float("nan")

    def _sent(self, seq: int) -> None:
        self._outstanding[seq] = self._sim.now

    def _reply(self, seq: int) -> None:
        sent_at = self._outstanding.pop(seq, None)
        if sent_at is None:
            return  # duplicate or late reply
        self.rtts.append(self._sim.now - sent_at)
        self._maybe_finish()

    def _timeout(self, seq: int) -> None:
        if self._outstanding.pop(seq, None) is not None:
            self.lost += 1
            self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self.finished:
            self.done.fire(self)

    def __repr__(self) -> str:
        return (
            f"<PingSession {self.received}/{self.count} replies, "
            f"{self.lost} lost>"
        )


class Host:
    """A single-homed end host."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: MACAddress,
        ip: IPv4Address,
        telemetry=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self._tel = ensure(telemetry)
        self.mac = MACAddress(mac)
        self.ip = IPv4Address(ip)
        self._link = None  # set by attach()
        self.arp_table: Dict[IPv4Address, MACAddress] = {}
        self._arp_pending: Dict[IPv4Address, List[Packet]] = {}
        self._arp_tries: Dict[IPv4Address, int] = {}
        self._udp_handlers: Dict[
            int, Callable[[Packet, "Host"], None]
        ] = {}
        #: Fallback for UDP datagrams with no bound port.
        self.on_udp: Optional[Callable[[Packet, "Host"], None]] = None
        #: Observer invoked for every received frame (tests, sniffers).
        self.on_receive: Optional[Callable[[Packet], None]] = None
        self._ping_sessions: Dict[int, PingSession] = {}
        self._next_ping_ident = 1
        self._next_icmp_seq = 1
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_packets = 0
        self.tx_bytes = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, link) -> None:
        if self._link is not None:
            raise TopologyError(f"host {self.name} is already attached")
        self._link = link

    @property
    def attached(self) -> bool:
        return self._link is not None

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def send_frame(self, packet: Packet) -> None:
        """Emit a fully formed frame on the host's link."""
        if self._link is None:
            raise TopologyError(f"host {self.name} has no link")
        self.tx_packets += 1
        self.tx_bytes += len(packet)
        tel = self._tel
        if tel.tracing and packet.trace_id is None:
            # A trace begins where the packet does.  The label is built
            # from header class names (not summary()) to avoid an extra
            # encode on the transmit path.
            label = "/".join(type(h).__name__ for h in packet.headers)
            tid = tel.tracer.start_trace(f"{self.name} {label}")
            if tid is not None:
                packet.trace_id = tid
                tel.tracer.record(tid, "host.tx", "host", host=self.name)
        self._link.send_from(self.name, packet)

    def send_ip(self, dst_ip: Union[str, IPv4Address],
                transport: Packet) -> None:
        """Send an IP payload, resolving the destination MAC via ARP.

        ``transport`` is the stack *above* Ethernet (IPv4/...); the
        Ethernet header is prepended here once the MAC is known.
        """
        dst_ip = IPv4Address(dst_ip)
        dst_mac = self.arp_table.get(dst_ip)
        if dst_mac is not None:
            frame = Packet([Ethernet(dst=dst_mac, src=self.mac)]) / transport
            self.send_frame(frame)
            return
        self._arp_pending.setdefault(dst_ip, []).append(transport)
        if len(self._arp_pending[dst_ip]) == 1:
            self._arp_tries[dst_ip] = 0
            self._send_arp_request(dst_ip)

    def send_udp(self, dst_ip: Union[str, IPv4Address], src_port: int,
                 dst_port: int, payload: bytes = b"") -> None:
        dst_ip = IPv4Address(dst_ip)
        datagram = (
            IPv4(src=self.ip, dst=dst_ip)
            / UDP(src_port=src_port, dst_port=dst_port)
            / payload
        )
        self.send_ip(dst_ip, datagram)

    def ping(self, dst_ip: Union[str, IPv4Address], count: int = 1,
             interval: float = 1.0, timeout: float = 5.0) -> PingSession:
        """Start an ICMP echo exchange; returns the live session."""
        dst_ip = IPv4Address(dst_ip)
        ident = self._next_ping_ident
        self._next_ping_ident += 1
        session = PingSession(self.sim, count, timeout)
        self._ping_sessions[ident] = session

        def send_probe(i: int) -> None:
            seq = self._next_icmp_seq
            self._next_icmp_seq += 1
            session._sent(seq)
            probe = (
                IPv4(src=self.ip, dst=dst_ip)
                / ICMP(ICMPType.ECHO_REQUEST, ident=ident, seq=seq)
                / b"zen-ping"
            )
            self.send_ip(dst_ip, probe)
            self.sim.schedule(timeout, session._timeout, seq)

        for i in range(count):
            self.sim.schedule(i * interval, send_probe, i)
        return session

    def add_static_arp(self, ip: Union[str, IPv4Address],
                       mac: Union[str, MACAddress]) -> None:
        self.arp_table[IPv4Address(ip)] = MACAddress(mac)

    def bind_udp(self, port: int,
                 handler: Callable[[Packet, "Host"], None]) -> None:
        if port in self._udp_handlers:
            raise TopologyError(
                f"host {self.name}: UDP port {port} already bound"
            )
        self._udp_handlers[port] = handler

    def unbind_udp(self, port: int) -> None:
        self._udp_handlers.pop(port, None)

    # ------------------------------------------------------------------
    # ARP machinery
    # ------------------------------------------------------------------
    def _send_arp_request(self, dst_ip: IPv4Address) -> None:
        pending = self._arp_pending.get(dst_ip)
        if not pending:
            return
        tries = self._arp_tries.get(dst_ip, 0)
        if tries >= _ARP_MAX_TRIES:
            # Resolution failed; the queued traffic is dropped.
            self._arp_pending.pop(dst_ip, None)
            self._arp_tries.pop(dst_ip, None)
            return
        self._arp_tries[dst_ip] = tries + 1
        request = (
            Ethernet(dst=BROADCAST_MAC, src=self.mac)
            / ARP(
                opcode=ARP.REQUEST,
                sender_mac=self.mac,
                sender_ip=self.ip,
                target_ip=dst_ip,
            )
        )
        self.send_frame(request)
        self.sim.schedule(_ARP_RETRY, self._send_arp_request, dst_ip)

    def _learn_arp(self, ip: IPv4Address, mac: MACAddress) -> None:
        self.arp_table[ip] = mac
        pending = self._arp_pending.pop(ip, None)
        self._arp_tries.pop(ip, None)
        if pending:
            for transport in pending:
                frame = Packet([Ethernet(dst=mac, src=self.mac)]) / transport
                self.send_frame(frame)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Entry point wired to the host's link attachment."""
        self.rx_packets += 1
        self.rx_bytes += len(packet)
        if packet.trace_id is not None and self._tel.tracing:
            self._tel.tracer.record(packet.trace_id, "host.rx", "host",
                                    host=self.name)
        if self.on_receive is not None:
            self.on_receive(packet)
        eth = packet.get(Ethernet)
        if eth is None:
            return
        if (eth.dst != self.mac and not eth.dst.is_broadcast
                and not eth.dst.is_multicast):
            return  # not for us (promiscuous hosts use on_receive)
        arp = packet.get(ARP)
        if arp is not None:
            self._handle_arp(arp)
            return
        ip = packet.get(IPv4)
        if ip is None or ip.dst != self.ip:
            return
        icmp = packet.get(ICMP)
        if icmp is not None:
            self._handle_icmp(ip, icmp, packet)
            return
        udp = packet.get(UDP)
        if udp is not None:
            handler = self._udp_handlers.get(udp.dst_port, self.on_udp)
            if handler is not None:
                handler(packet, self)

    def _handle_arp(self, arp: ARP) -> None:
        # Learn from every ARP we see addressed to us (request or reply).
        self._learn_arp(arp.sender_ip, arp.sender_mac)
        if arp.is_request and arp.target_ip == self.ip:
            reply = (
                Ethernet(dst=arp.sender_mac, src=self.mac)
                / ARP(
                    opcode=ARP.REPLY,
                    sender_mac=self.mac,
                    sender_ip=self.ip,
                    target_mac=arp.sender_mac,
                    target_ip=arp.sender_ip,
                )
            )
            self.send_frame(reply)

    def _handle_icmp(self, ip: IPv4, icmp: ICMP, packet: Packet) -> None:
        if icmp.is_echo_request:
            # Mirror the request's DSCP so QoS treatment is symmetric
            # (per RFC 2474 practice for diagnostic traffic).
            reply = (
                IPv4(src=self.ip, dst=ip.src, dscp=ip.dscp)
                / ICMP(ICMPType.ECHO_REPLY, ident=icmp.ident, seq=icmp.seq)
                / packet.payload
            )
            self.send_ip(ip.src, reply)
            return
        if icmp.is_echo_reply:
            session = self._ping_sessions.get(icmp.ident)
            if session is not None:
                session._reply(icmp.seq)

    def __repr__(self) -> str:
        return f"<Host {self.name} {self.ip} ({self.mac})>"
