"""Point-to-point links with bandwidth, delay, loss, and a drop-tail queue.

Each direction of a link is an independent :class:`_Direction`: a
store-and-forward transmitter with a serialisation rate, a propagation
delay, an optional Bernoulli loss process, and a bounded FIFO backlog.
Utilisation is tracked by integrating busy time, which is what benchmark
E5 reads to compare traffic-engineering schemes.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.errors import TopologyError
from repro.packet import Packet
from repro.sim import Simulator

__all__ = ["Link", "Attachment", "dscp_classifier"]


def dscp_classifier(packet: Packet) -> int:
    """Default band classifier: expedited forwarding (DSCP >= 40, which
    covers EF = 46) rides band 0 (highest); everything else band 1."""
    from repro.packet import IPv4

    ip = packet.get(IPv4)
    if ip is not None and ip.dscp >= 40:
        return 0
    return 1


class Attachment:
    """One end of a link: a named node port with a delivery callback."""

    __slots__ = ("node_name", "port_no", "deliver")

    def __init__(self, node_name: str, port_no: int,
                 deliver: Callable[[Packet], None]) -> None:
        self.node_name = node_name
        self.port_no = port_no
        self.deliver = deliver

    def __repr__(self) -> str:
        return f"<Attachment {self.node_name}:{self.port_no}>"


class _Direction:
    """The unidirectional machinery of one link direction.

    Two transmit disciplines:

    * FIFO (``priority_bands == 1``) — a virtual queue: departures are
      computed from ``busy_until`` and scheduled up front.
    * Strict-priority (``priority_bands > 1``) — real per-band queues;
      the transmitter always serves the lowest-numbered non-empty band
      next.  Band selection comes from the link's ``classifier``.
    """

    __slots__ = (
        "sim",
        "bandwidth_bps",
        "delay",
        "loss_rate",
        "queue_capacity",
        "dst",
        "rng",
        "busy_until",
        "queued",
        "tx_packets",
        "tx_bytes",
        "dropped_queue",
        "dropped_loss",
        "busy_time",
        "_window_start",
        "_window_busy",
        "bands",
        "classifier",
        "_transmitting",
        "band_tx_packets",
        "band_dropped",
        "epoch",
        "dropped_cut",
        "name",
        "_tracer",
        "_m_tx_pkts",
        "_m_tx_bytes",
        "_m_drops",
        "key_base",
        "_key_seq",
    )

    def __init__(self, sim: Simulator, bandwidth_bps: float, delay: float,
                 loss_rate: float, queue_capacity: int, rng,
                 priority_bands: int = 1,
                 classifier=None) -> None:
        self.sim = sim
        # Telemetry is attached after construction by the owning Link
        # (it knows the endpoint names); until then everything is off.
        self.name = ""
        self._tracer = None
        self._m_tx_pkts = None
        self._m_tx_bytes = None
        self._m_drops = None
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.loss_rate = loss_rate
        self.queue_capacity = queue_capacity
        self.dst: Optional[Attachment] = None
        self.rng = rng
        self.busy_until = 0.0
        self.queued = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped_queue = 0
        self.dropped_loss = 0
        self.busy_time = 0.0
        self._window_start = 0.0
        self._window_busy = 0.0
        self.bands = ([[] for _ in range(priority_bands)]
                      if priority_bands > 1 else None)
        self.classifier = classifier
        self._transmitting = False
        self.band_tx_packets = [0] * priority_bands
        self.band_dropped = [0] * priority_bands
        #: Bumped when the link is cut, so packets already in flight are
        #: dropped on arrival instead of crossing a dead wire.
        self.epoch = 0
        self.dropped_cut = 0
        #: Stable-tie ordering base for arrival events (sharded kernel).
        #: When set, every arrival is scheduled with the partition-
        #: independent key ``(key_base, per-direction sequence)`` so a
        #: frame sorts identically whether its link is shard-local or a
        #: cross-shard boundary.  ``None`` keeps the legacy int keys.
        self.key_base: Optional[int] = None
        self._key_seq = 0

    def attach_telemetry(self, telemetry, name: str) -> None:
        """Bind metric children and the tracer; no-op when disabled."""
        self.name = name
        if not telemetry.enabled:
            return
        if telemetry.tracing:
            self._tracer = telemetry.tracer
        registry = telemetry.metrics
        self._m_tx_pkts = registry.counter(
            "link_tx_packets_total", "Packets transmitted per direction",
            ("link",),
        ).labels(name)
        self._m_tx_bytes = registry.counter(
            "link_tx_bytes_total", "Bytes transmitted per direction",
            ("link",),
        ).labels(name)
        self._m_drops = registry.counter(
            "link_dropped_total", "Packets dropped per direction",
            ("link", "reason"),
        )

    def _drop(self, packet: Packet, reason: str) -> None:
        if self._m_drops is not None:
            self._m_drops.labels(self.name, reason).inc()
        if self._tracer is not None and packet.trace_id is not None:
            self._tracer.record(packet.trace_id, "link.drop", "link",
                                link=self.name, reason=reason)

    def send(self, packet: Packet, up: bool) -> None:
        if not up or self.dst is None:
            return
        if self.bands is not None and self.bandwidth_bps:
            self._send_banded(packet)
            return
        size = len(packet)
        now = self.sim.now
        if self.bandwidth_bps:
            start = max(now, self.busy_until)
            # Drop-tail: if the backlog exceeds capacity, the packet dies.
            if self.queue_capacity and self.queued >= self.queue_capacity:
                self.dropped_queue += 1
                self._drop(packet, "queue")
                return
            tx_time = size * 8 / self.bandwidth_bps
            depart = start + tx_time
            self.busy_until = depart
            self.busy_time += tx_time
            self._window_busy += tx_time
            self.queued += 1
            self.sim.schedule_at(depart, self._dequeue)
        else:
            depart = now
        if self.loss_rate and self.rng.random() < self.loss_rate:
            self.dropped_loss += 1
            self._drop(packet, "loss")
            # The transmitter still burned the airtime; only delivery fails.
            return
        self.tx_packets += 1
        self.tx_bytes += size
        arrival = depart + self.delay
        if self._m_tx_pkts is not None:
            self._m_tx_pkts.inc()
            self._m_tx_bytes.inc(size)
        if self._tracer is not None and packet.trace_id is not None:
            self._tracer.record(packet.trace_id, "link.transit", "link",
                                start=now, end=arrival, link=self.name)
        self._schedule_arrival(arrival, packet)

    def _schedule_arrival(self, arrival: float, packet: Packet) -> None:
        """Queue the delivery event; the boundary stub overrides this to
        emit a cross-shard message instead."""
        if self.key_base is None:
            self.sim.schedule_at(arrival, self._arrive, packet, self.epoch)
        else:
            self._key_seq += 1
            self.sim.schedule_at(arrival, self._arrive, packet, self.epoch,
                                 key=(self.key_base, self._key_seq))

    def _dequeue(self) -> None:
        self.queued -= 1

    def _arrive(self, packet: Packet, epoch: int = 0) -> None:
        if epoch != self.epoch:
            # The link was cut while this packet was on the wire.
            self.dropped_cut += 1
            self._drop(packet, "cut")
            return
        if self.dst is not None:
            self.dst.deliver(packet)

    # -- strict-priority discipline --------------------------------
    def _band_of(self, packet: Packet) -> int:
        band = self.classifier(packet) if self.classifier else 0
        return max(0, min(band, len(self.bands) - 1))

    def _send_banded(self, packet: Packet) -> None:
        band = self._band_of(packet)
        # Per-band drop-tail with the shared capacity split evenly.
        per_band = (max(self.queue_capacity // len(self.bands), 1)
                    if self.queue_capacity else 0)
        if per_band and len(self.bands[band]) >= per_band:
            self.dropped_queue += 1
            self.band_dropped[band] += 1
            self._drop(packet, "queue")
            return
        self.bands[band].append(packet)
        if not self._transmitting:
            self._transmit_next()

    def _transmit_next(self) -> None:
        for band, queue in enumerate(self.bands):
            if queue:
                packet = queue.pop(0)
                break
        else:
            self._transmitting = False
            return
        self._transmitting = True
        size = len(packet)
        tx_time = size * 8 / self.bandwidth_bps
        self.busy_time += tx_time
        self._window_busy += tx_time
        if self.loss_rate and self.rng.random() < self.loss_rate:
            self.dropped_loss += 1
            self._drop(packet, "loss")
        else:
            self.tx_packets += 1
            self.tx_bytes += size
            self.band_tx_packets[band] += 1
            if self._m_tx_pkts is not None:
                self._m_tx_pkts.inc()
                self._m_tx_bytes.inc(size)
            if self._tracer is not None and packet.trace_id is not None:
                now = self.sim.now
                self._tracer.record(
                    packet.trace_id, "link.transit", "link",
                    start=now, end=now + tx_time + self.delay,
                    link=self.name, band=band,
                )
            self._schedule_arrival(self.sim.now + (tx_time + self.delay),
                                   packet)
        self.sim.schedule(tx_time, self._transmit_next)

    def utilisation_since_reset(self) -> float:
        """Busy fraction of this direction since the last window reset."""
        span = self.sim.now - self._window_start
        if span <= 0 or not self.bandwidth_bps:
            return 0.0
        return min(self._window_busy / span, 1.0)

    def reset_window(self) -> None:
        self._window_start = self.sim.now
        self._window_busy = 0.0


class Link:
    """A bidirectional link between two attachments.

    Parameters
    ----------
    bandwidth_bps:
        Serialisation rate per direction; 0 disables the bandwidth model
        (useful for control-only experiments).
    delay:
        One-way propagation delay in seconds.
    loss_rate:
        Independent per-packet loss probability.
    queue_capacity:
        Maximum packets in the transmit backlog per direction (drop-tail);
        0 means unbounded.
    """

    def __init__(
        self,
        sim: Simulator,
        a: Attachment,
        b: Attachment,
        bandwidth_bps: float = 0.0,
        delay: float = 0.0001,
        loss_rate: float = 0.0,
        queue_capacity: int = 100,
        priority_bands: int = 1,
        classifier=None,
        rng=None,
    ) -> None:
        if a is b:
            raise TopologyError("link endpoints must differ")
        if not 0.0 <= loss_rate < 1.0:
            raise TopologyError(f"loss rate out of range: {loss_rate}")
        if priority_bands < 1:
            raise TopologyError(
                f"priority_bands must be >= 1, got {priority_bands}"
            )
        if priority_bands > 1 and classifier is None:
            classifier = dscp_classifier
        self.sim = sim
        self.a = a
        self.b = b
        self.up = True
        self.priority_bands = priority_bands
        # Shard-mode networks pass an entity-keyed rng so the loss stream
        # is a function of the link name, not of construction order.
        if rng is None:
            rng = sim.fork_rng()
        self._ab = _Direction(sim, bandwidth_bps, delay, loss_rate,
                              queue_capacity, rng,
                              priority_bands=priority_bands,
                              classifier=classifier)
        self._ba = _Direction(sim, bandwidth_bps, delay, loss_rate,
                              queue_capacity, rng,
                              priority_bands=priority_bands,
                              classifier=classifier)
        self._ab.dst = b
        self._ba.dst = a

    def attach_telemetry(self, telemetry) -> None:
        """Name both directions and bind their metrics/tracer."""
        if telemetry is None or not telemetry.enabled:
            return
        a, b = self.a, self.b
        self._ab.attach_telemetry(
            telemetry, f"{a.node_name}:{a.port_no}->{b.node_name}:{b.port_no}"
        )
        self._ba.attach_telemetry(
            telemetry, f"{b.node_name}:{b.port_no}->{a.node_name}:{a.port_no}"
        )

    # ------------------------------------------------------------------
    # Data transfer
    # ------------------------------------------------------------------
    def send_from(self, node_name: str, packet: Packet) -> None:
        """Transmit ``packet`` from the named endpoint toward the other."""
        if node_name == self.a.node_name:
            self._ab.send(packet, self.up)
        elif node_name == self.b.node_name:
            self._ba.send(packet, self.up)
        else:
            raise TopologyError(
                f"{node_name} is not an endpoint of {self!r}"
            )

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Cut the link: everything in flight and future is lost."""
        self.up = False
        # Invalidate in-flight arrivals; "everything in flight is lost"
        # must hold even if the link recovers before they land.
        self._ab.epoch += 1
        self._ba.epoch += 1

    def recover(self) -> None:
        self.up = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def other_end(self, node_name: str) -> Attachment:
        if node_name == self.a.node_name:
            return self.b
        if node_name == self.b.node_name:
            return self.a
        raise TopologyError(f"{node_name} is not an endpoint of {self!r}")

    def direction_stats(self) -> Tuple[dict, dict]:
        """Per-direction counters as ``(a->b, b->a)`` dicts."""
        def snap(d: _Direction) -> dict:
            return {
                "tx_packets": d.tx_packets,
                "tx_bytes": d.tx_bytes,
                "dropped_queue": d.dropped_queue,
                "dropped_loss": d.dropped_loss,
                "dropped_cut": d.dropped_cut,
                "utilisation": d.utilisation_since_reset(),
                "band_tx_packets": list(d.band_tx_packets),
                "band_dropped": list(d.band_dropped),
            }

        return snap(self._ab), snap(self._ba)

    @property
    def max_utilisation(self) -> float:
        """The busier direction's utilisation since the last reset."""
        return max(
            self._ab.utilisation_since_reset(),
            self._ba.utilisation_since_reset(),
        )

    def reset_utilisation_window(self) -> None:
        self._ab.reset_window()
        self._ba.reset_window()

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return (
            f"<Link {self.a.node_name}:{self.a.port_no} <-> "
            f"{self.b.node_name}:{self.b.port_no} {state}>"
        )
