"""The emulated network: topologies brought to life on the sim kernel.

:class:`Network` instantiates datapaths, hosts, and links from a
:class:`~repro.netem.topology.Topology`, wires every transmit/deliver
callback, and offers failure injection.  It deliberately knows nothing
about controllers — it can mint a :class:`ControlChannel` + switch agent
per datapath, and whoever owns the controller end plugs in at that
boundary (see :mod:`repro.core.platform`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dataplane.switch import Datapath
from repro.errors import TopologyError
from repro.netem.host import Host
from repro.netem.link import Attachment, Link
from repro.netem.topology import Topology
from repro.packet import Packet
from repro.sim import Simulator
from repro.southbound.agent import SwitchAgent
from repro.southbound.channel import ControlChannel

__all__ = ["Network"]


class Network:
    """A running instance of a topology.

    Parameters
    ----------
    topology:
        The validated description to instantiate.
    sim:
        An existing kernel, or ``None`` to create one from ``seed``.
    num_tables / table_capacity / miss_behaviour / eviction_policy:
        Forwarded to every :class:`Datapath`.
    local_nodes:
        When given, only these nodes are instantiated; links with
        exactly one local endpoint become boundary stubs minted by
        ``boundary_factory`` and links with no local endpoint are
        skipped entirely.  This is how one shard of a partitioned
        simulation builds just its slice of the topology — per-switch
        port numbers still match the unsharded build, because links are
        walked in global ``topology.links`` order either way.
    link_keys:
        Assign each link direction the partition-independent arrival
        tie key base (``link id * 2 + direction``) and an entity-keyed
        loss RNG, the sharded kernel's determinism contract.
    boundary_factory:
        ``callable(index, spec, local_attachment, local_is_a)`` that
        returns a link-like boundary stub (see ``repro.sim.shard``).
        Required when ``local_nodes`` leaves boundary links.
    """

    def __init__(
        self,
        topology: Topology,
        sim: Optional[Simulator] = None,
        seed: int = 0,
        num_tables: int = 4,
        table_capacity: int = 0,
        eviction_policy: Optional[str] = None,
        miss_behaviour: str = "controller",
        telemetry=None,
        fast_path: bool = True,
        local_nodes=None,
        link_keys: bool = False,
        boundary_factory=None,
    ) -> None:
        topology.validate()
        self.topology = topology
        if sim is not None:
            self.sim = sim
            # An existing kernel brings its own telemetry plane along.
            if telemetry is None:
                telemetry = sim.telemetry
        else:
            self.sim = Simulator(seed=seed, telemetry=telemetry)
            telemetry = self.sim.telemetry
        self.telemetry = telemetry
        self.switches: Dict[str, Datapath] = {}
        self.hosts: Dict[str, Host] = {}
        self.links: List[Link] = []
        self._link_index: Dict[Tuple[str, str], Link] = {}
        #: switch name -> {neighbour name -> local port number}
        self._port_map: Dict[str, Dict[str, int]] = {}
        self._next_port: Dict[str, int] = {}
        self._agents: Dict[str, SwitchAgent] = {}
        self._channels: Dict[str, ControlChannel] = {}
        #: switch name -> every agent bound to it (one per controller
        #: instance in cluster mode; a singleton list otherwise).
        self._agents_by_switch: Dict[str, List[SwitchAgent]] = {}
        self._local = set(local_nodes) if local_nodes is not None else None
        self._link_keys = link_keys
        self._boundary_factory = boundary_factory

        for spec in topology.switches:
            if self._local is not None and spec.name not in self._local:
                continue
            dp = Datapath(
                spec.dpid,
                self.sim,
                num_tables=num_tables,
                table_capacity=table_capacity,
                eviction_policy=eviction_policy,
                miss_behaviour=miss_behaviour,
                telemetry=telemetry,
                fast_path=fast_path,
            )
            self.switches[spec.name] = dp
            self._port_map[spec.name] = {}
            self._next_port[spec.name] = 1
        for spec in topology.hosts:
            if self._local is not None and spec.name not in self._local:
                continue
            self.hosts[spec.name] = Host(
                self.sim, spec.name, spec.mac, spec.ip,
                telemetry=telemetry,
            )
        for index, link_spec in enumerate(topology.links):
            self._build_link(link_spec, index)

    # ------------------------------------------------------------------
    # Construction plumbing
    # ------------------------------------------------------------------
    def _attachment_for(self, name: str) -> Attachment:
        if name in self.switches:
            dp = self.switches[name]
            port_no = self._next_port[name]
            self._next_port[name] += 1
            dp.add_port(port_no)
            return Attachment(
                name, port_no,
                lambda pkt, dp=dp, p=port_no: dp.inject(pkt, p),
            )
        host = self.hosts[name]
        return Attachment(name, 0, host.receive)

    def _build_link(self, spec, index: int = 0) -> None:
        local = self._local
        if local is not None and spec.a not in local and spec.b not in local:
            return  # another shard's link entirely
        if local is not None and (spec.a in local) != (spec.b in local):
            self._build_boundary(spec, index)
            return
        att_a = self._attachment_for(spec.a)
        att_b = self._attachment_for(spec.b)
        link = Link(
            self.sim, att_a, att_b,
            bandwidth_bps=spec.bandwidth_bps,
            delay=spec.delay,
            loss_rate=spec.loss_rate,
            queue_capacity=spec.queue_capacity,
            priority_bands=spec.priority_bands,
        )
        if self._link_keys:
            # Determinism contract: arrival ordering keyed by link id,
            # loss draws keyed by (link id, direction) — both invariant
            # under any partitioning of the topology.
            link._ab.key_base = index * 2
            link._ba.key_base = index * 2 + 1
            link._ab.rng = self.sim.fork_rng(name=f"linkdir:{index}:0")
            link._ba.rng = self.sim.fork_rng(name=f"linkdir:{index}:1")
        link.attach_telemetry(self.telemetry)
        self.links.append(link)
        self._link_index[(spec.a, spec.b)] = link
        self._link_index[(spec.b, spec.a)] = link
        for name, att in ((spec.a, att_a), (spec.b, att_b)):
            other = spec.b if name == spec.a else spec.a
            if name in self.switches:
                self._port_map[name][other] = att.port_no
        # Wire switch transmit hooks (idempotent re-assignment).
        for name in (spec.a, spec.b):
            if name in self.switches:
                self._wire_switch_tx(name)
            else:
                self.hosts[name].attach(link)

    def _build_boundary(self, spec, index: int) -> None:
        if self._boundary_factory is None:
            raise TopologyError(
                f"link {spec.a} -- {spec.b} crosses the shard boundary "
                f"but no boundary_factory was supplied"
            )
        local_is_a = spec.a in self._local
        local_name = spec.a if local_is_a else spec.b
        att = self._attachment_for(local_name)
        link = self._boundary_factory(index, spec, att, local_is_a)
        link.attach_telemetry(self.telemetry)
        self.links.append(link)
        self._link_index[(spec.a, spec.b)] = link
        self._link_index[(spec.b, spec.a)] = link
        other = spec.b if local_is_a else spec.a
        if local_name in self.switches:
            self._port_map[local_name][other] = att.port_no
            self._wire_switch_tx(local_name)
        else:
            self.hosts[local_name].attach(link)

    def _wire_switch_tx(self, name: str) -> None:
        dp = self.switches[name]
        links_by_port: Dict[int, Link] = {}
        for (a, b), link in self._link_index.items():
            if a == name:
                port = self._port_map[name].get(b)
                if port is not None:
                    links_by_port[port] = link

        def transmit(port_no: int, packet: Packet,
                     table: Dict[int, Link] = links_by_port) -> None:
            link = table.get(port_no)
            if link is not None:
                link.send_from(name, packet)

        dp.transmit = transmit

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def host(self, name: str) -> Host:
        if name not in self.hosts:
            raise TopologyError(f"unknown host {name!r}")
        return self.hosts[name]

    def switch(self, name: str) -> Datapath:
        if name not in self.switches:
            raise TopologyError(f"unknown switch {name!r}")
        return self.switches[name]

    def switch_name(self, dpid: int) -> str:
        for name, dp in self.switches.items():
            if dp.dpid == dpid:
                return name
        raise TopologyError(f"unknown dpid {dpid}")

    def link(self, a: str, b: str) -> Link:
        link = self._link_index.get((a, b))
        if link is None:
            raise TopologyError(f"no link {a} -- {b}")
        return link

    def port_of(self, switch: str, neighbour: str) -> int:
        """The local port on ``switch`` that faces ``neighbour``."""
        ports = self._port_map.get(switch)
        if ports is None or neighbour not in ports:
            raise TopologyError(f"no port on {switch} toward {neighbour}")
        return ports[neighbour]

    # ------------------------------------------------------------------
    # Control plane attachment
    # ------------------------------------------------------------------
    def make_channel(
        self,
        switch_name: str,
        latency: float = 0.001,
        bandwidth_bps: float = 0.0,
        flowmod_delay: float = 0.0,
        instance: Optional[int] = None,
    ) -> ControlChannel:
        """Create a control channel + agent for one switch.

        The controller side of the returned channel is unclaimed; the
        platform (or a test) hooks its ``controller_end``.  With
        ``instance`` (cluster mode) a switch carries one channel per
        controller instance, registered as ``"<switch>#<instance>"``.
        """
        key = (switch_name if instance is None
               else f"{switch_name}#{instance}")
        if key in self._channels:
            raise TopologyError(
                f"switch {key} already has a control channel"
            )
        channel = ControlChannel(self.sim, latency=latency,
                                 bandwidth_bps=bandwidth_bps,
                                 telemetry=self.telemetry,
                                 name=key)
        agent = SwitchAgent(self.switches[switch_name], channel,
                            flowmod_delay=flowmod_delay)
        self._channels[key] = channel
        self._agents[key] = agent
        self._agents_by_switch.setdefault(switch_name, []).append(agent)
        return channel

    def channel(self, switch_name: str) -> ControlChannel:
        """A switch's channel; in cluster mode, instance 0's unless the
        ``"<switch>#<instance>"`` form names another."""
        found = self._channels.get(switch_name)
        if found is None:
            found = self._channels.get(f"{switch_name}#0")
        if found is None:
            raise TopologyError(f"switch {switch_name} has no channel")
        return found

    def agent(self, switch_name: str) -> SwitchAgent:
        """The ZOF agent created by :meth:`make_channel` for a switch."""
        found = self._agents.get(switch_name)
        if found is None:
            found = self._agents.get(f"{switch_name}#0")
        if found is None:
            raise TopologyError(f"switch {switch_name} has no agent")
        return found

    def agents_of(self, switch_name: str) -> List[SwitchAgent]:
        """Every agent bound to ``switch_name`` (all instances)."""
        agents = self._agents_by_switch.get(switch_name)
        if not agents:
            raise TopologyError(f"switch {switch_name} has no agent")
        return list(agents)

    @property
    def channels(self) -> Dict[str, ControlChannel]:
        return dict(self._channels)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail_link(self, a: str, b: str) -> None:
        """Cut the a--b link and lower the corresponding switch ports."""
        link = self.link(a, b)
        link.fail()
        self._set_link_ports(a, b, up=False)

    def recover_link(self, a: str, b: str) -> None:
        link = self.link(a, b)
        link.recover()
        self._set_link_ports(a, b, up=True)

    def _set_link_ports(self, a: str, b: str, up: bool) -> None:
        if a in self.switches:
            self.switches[a].set_port_state(self.port_of(a, b), up)
        if b in self.switches:
            self.switches[b].set_port_state(self.port_of(b, a), up)

    def fail_switch(self, name: str) -> None:
        """Take a whole switch down: every adjacent link is cut."""
        for neighbour in self.topology.neighbours(name):
            if self.link(name, neighbour).up:
                self.fail_link(name, neighbour)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.sim.run(until=self.sim.now + duration)

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        return self.sim.run_until_idle(max_events=max_events)

    def ping_all(self, count: int = 1, timeout: float = 5.0,
                 settle: float = 10.0) -> float:
        """All-pairs ping; returns the delivery ratio in [0, 1].

        The network runs for ``settle`` simulated seconds after the last
        probe is sent, which must cover ARP resolution and reactive flow
        setup.
        """
        sessions = []
        hosts = list(self.hosts.values())
        for src in hosts:
            for dst in hosts:
                if src is dst:
                    continue
                sessions.append(src.ping(dst.ip, count=count,
                                         timeout=timeout))
        self.run((count - 1) * 1.0 + timeout + settle)
        expected = sum(s.count for s in sessions)
        received = sum(s.received for s in sessions)
        return received / expected if expected else 1.0

    def reset_utilisation_windows(self) -> None:
        for link in self.links:
            link.reset_utilisation_window()

    def __repr__(self) -> str:
        return (
            f"<Network {self.topology.name!r}: "
            f"{len(self.switches)} switches, {len(self.hosts)} hosts>"
        )
