"""A go-back-N reliable transport over the UDP mini-stack.

The emulator's links can drop packets (Bernoulli loss, queue overflow);
CBR and flow generators simply lose that data.  ``ReliableSender`` /
``ReliableReceiver`` implement the classic go-back-N ARQ — cumulative
ACKs, a retransmission timer, sender-side windowing — so transfers
complete over lossy paths, and experiments can study the cost of
recovery (ablation A3).

This is deliberately go-back-N rather than full TCP: the paper's scope
needs a *reliable byte mover with measurable retransmission behaviour*,
not congestion control research.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional

from repro.errors import TopologyError
from repro.netem.host import Host
from repro.packet import IPv4, Packet, UDP
from repro.sim import Signal

__all__ = ["ReliableSender", "ReliableReceiver"]

#: Data segment header: transfer id, sequence number, total segments.
_DATA_HEADER = struct.Struct("!III")
#: ACK payload: transfer id, next expected sequence number.
_ACK_HEADER = struct.Struct("!II")


class ReliableReceiver:
    """Receives go-back-N transfers on a UDP port.

    In-order segments are appended to the transfer buffer; anything out
    of order is dropped and re-ACKed (pure go-back-N).  When the last
    segment lands, ``on_complete(transfer_id, data)`` fires.

    Finished transfers are pruned ``reack_grace`` seconds after
    completion (a TIME_WAIT analogue): within the grace window straggler
    duplicates are still re-ACKed with the final cumulative ACK; after
    it, all per-transfer state — ``_next_expected`` and ``completed`` —
    is dropped, so a long-lived receiver serving many transfers stays
    bounded.  Read results from ``on_complete``, not ``completed``, if
    the run outlives the grace window.
    """

    def __init__(self, host: Host, port: int,
                 on_complete: Optional[
                     Callable[[int, bytes], None]] = None,
                 reack_grace: float = 2.0) -> None:
        self.host = host
        self.port = port
        self.on_complete = on_complete
        self.reack_grace = reack_grace
        #: transfer id -> next expected sequence number.
        self._next_expected: Dict[int, int] = {}
        self._buffers: Dict[int, bytearray] = {}
        self.completed: Dict[int, bytes] = {}
        self.segments_received = 0
        self.segments_discarded = 0
        self.transfers_pruned = 0
        host.bind_udp(port, self._receive)

    def _receive(self, packet: Packet, host: Host) -> None:
        payload = packet.payload
        if len(payload) < _DATA_HEADER.size:
            return
        xfer, seq, total = _DATA_HEADER.unpack_from(payload)
        body = payload[_DATA_HEADER.size:]
        expected = self._next_expected.get(xfer)
        if expected is None and seq != 0:
            # A straggler for a pruned (or never-started) transfer must
            # not create state, or churn would regrow what pruning frees.
            self.segments_discarded += 1
            self._ack(packet, host, xfer, 0)
            return
        if expected is None:
            expected = 0
        if seq == expected and xfer not in self.completed:
            self.segments_received += 1
            self._buffers.setdefault(xfer, bytearray()).extend(body)
            expected += 1
            self._next_expected[xfer] = expected
            if expected >= total:
                data = bytes(self._buffers.pop(xfer))
                self.completed[xfer] = data
                if self.on_complete is not None:
                    self.on_complete(xfer, data)
                self.host.sim.schedule(self.reack_grace, self._prune, xfer)
        else:
            self.segments_discarded += 1
            self._next_expected[xfer] = expected
        # Cumulative ACK either way (also re-ACKs duplicates).
        self._ack(packet, host, xfer, self._next_expected[xfer])

    def _ack(self, packet: Packet, host: Host, xfer: int,
             next_expected: int) -> None:
        udp = packet[UDP]
        ip = packet[IPv4]
        host.send_udp(ip.src, self.port, udp.src_port,
                      _ACK_HEADER.pack(xfer, next_expected))

    def _prune(self, xfer: int) -> None:
        if self.completed.pop(xfer, None) is not None:
            self._next_expected.pop(xfer, None)
            self.transfers_pruned += 1

    @property
    def tracked_transfers(self) -> int:
        """Transfers the receiver currently holds state for."""
        return len(self._next_expected)

    def close(self) -> None:
        self.host.unbind_udp(self.port)


class ReliableSender:
    """Transfers a byte string with go-back-N ARQ.

    Parameters
    ----------
    window:
        Segments in flight before waiting for ACKs.
    timeout:
        Retransmission timer; on expiry the whole window resends from
        the base (go-back-N).
    mss:
        Payload bytes per segment.
    """

    _next_transfer_id = 1

    def __init__(
        self,
        host: Host,
        dst_ip,
        dst_port: int,
        data: bytes,
        window: int = 8,
        timeout: float = 0.2,
        mss: int = 1000,
        src_port: int = 0,
        max_retries: int = 50,
    ) -> None:
        if not data:
            raise TopologyError("cannot send an empty transfer")
        if window < 1:
            raise TopologyError(f"window must be >= 1, got {window}")
        self.host = host
        self.sim = host.sim
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.window = window
        self.timeout = timeout
        self.mss = mss
        self.max_retries = max_retries
        self.transfer_id = ReliableSender._next_transfer_id
        ReliableSender._next_transfer_id += 1
        self.src_port = src_port or (50000 + self.transfer_id % 10000)
        self.segments = [data[i:i + mss]
                         for i in range(0, len(data), mss)]
        self.total = len(self.segments)
        self.base = 0            # lowest unACKed sequence
        self.next_to_send = 0
        self.retransmissions = 0
        self.retries = 0
        self.failed = False
        self.start_time = self.sim.now
        self.end_time: Optional[float] = None
        self.done = Signal(self.sim)
        self._timer = None
        host.bind_udp(self.src_port, self._on_ack)
        self._fill_window()

    # ------------------------------------------------------------------
    # Sending machinery
    # ------------------------------------------------------------------
    def _fill_window(self) -> None:
        while (self.next_to_send < self.total
               and self.next_to_send < self.base + self.window):
            self._send_segment(self.next_to_send)
            self.next_to_send += 1
        self._arm_timer()

    def _send_segment(self, seq: int) -> None:
        header = _DATA_HEADER.pack(self.transfer_id, seq, self.total)
        self.host.send_udp(self.dst_ip, self.src_port, self.dst_port,
                           header + self.segments[seq])

    def _arm_timer(self) -> None:
        self._cancel_timer()
        if self.base < self.total:
            self._timer = self.sim.schedule(self.timeout, self._on_timeout)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        if self.complete or self.failed:
            return
        self.retries += 1
        if self.retries > self.max_retries:
            self.failed = True
            self._finish()
            return
        # Go-back-N: resend everything in flight.
        for seq in range(self.base, self.next_to_send):
            self._send_segment(seq)
            self.retransmissions += 1
        self._arm_timer()

    def _on_ack(self, packet: Packet, host: Host) -> None:
        payload = packet.payload
        if len(payload) < _ACK_HEADER.size:
            return
        xfer, next_expected = _ACK_HEADER.unpack_from(payload)
        if xfer != self.transfer_id:
            return
        if next_expected > self.base:
            self.base = next_expected
            self.retries = 0  # progress resets the give-up counter
            if self.base >= self.total:
                self._finish()
                return
            self._fill_window()

    def _finish(self) -> None:
        self._cancel_timer()
        if self.end_time is None:
            self.end_time = self.sim.now
        self.host.unbind_udp(self.src_port)
        self.done.fire(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self.base >= self.total and not self.failed

    @property
    def transfer_time(self) -> float:
        if self.end_time is None:
            return float("nan")
        return self.end_time - self.start_time

    @property
    def goodput_bps(self) -> float:
        time = self.transfer_time
        if time != time or time <= 0:  # NaN or instant
            return float("nan")
        return sum(len(s) for s in self.segments) * 8 / time

    def __repr__(self) -> str:
        state = ("done" if self.complete
                 else "failed" if self.failed else "running")
        return (
            f"<ReliableSender xfer={self.transfer_id} {state} "
            f"{self.base}/{self.total} retx={self.retransmissions}>"
        )
