"""Link taps: passive packet capture on emulated links.

A :class:`Tap` wraps both delivery callbacks of a link and records every
packet that crosses it (with timestamps and direction), optionally
filtered.  It is the tcpdump of the platform — tests assert on captures
and the examples use it to show what actually went over the wire.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.netem.link import Link
from repro.packet import Packet

__all__ = ["Tap", "TapRecord"]


class TapRecord:
    """One captured packet."""

    __slots__ = ("time", "src_node", "dst_node", "packet")

    def __init__(self, time: float, src_node: str, dst_node: str,
                 packet: Packet) -> None:
        self.time = time
        self.src_node = src_node
        self.dst_node = dst_node
        self.packet = packet

    def __repr__(self) -> str:
        return (
            f"<TapRecord t={self.time:.6f} {self.src_node}->"
            f"{self.dst_node} {self.packet.summary()}>"
        )


class Tap:
    """Capture traffic crossing one link.

    Parameters
    ----------
    link:
        The link to observe.
    predicate:
        Only packets for which this returns True are recorded
        (default: everything).
    keep_packets:
        Store full packet objects (default) or just metadata with
        ``packet=None`` to keep big captures cheap.
    max_records:
        Stop recording beyond this many entries (0 = unbounded).
    """

    def __init__(self, link: Link,
                 predicate: Optional[Callable[[Packet], bool]] = None,
                 keep_packets: bool = True,
                 max_records: int = 0) -> None:
        self.link = link
        self.predicate = predicate
        self.keep_packets = keep_packets
        self.max_records = max_records
        self.records: List[TapRecord] = []
        self.dropped_by_filter = 0
        self._sim = link.sim
        self._original_a = link.a.deliver
        self._original_b = link.b.deliver
        self._attached = True
        link.a.deliver = self._wrap(link.b.node_name, link.a.node_name,
                                    self._original_a)
        link.b.deliver = self._wrap(link.a.node_name, link.b.node_name,
                                    self._original_b)

    def _wrap(self, src_node: str, dst_node: str,
              original: Callable[[Packet], None]):
        def deliver(packet: Packet) -> None:
            self._record(src_node, dst_node, packet)
            original(packet)

        return deliver

    def _record(self, src_node: str, dst_node: str,
                packet: Packet) -> None:
        if not self._attached:
            return
        if self.max_records and len(self.records) >= self.max_records:
            return
        if self.predicate is not None and not self.predicate(packet):
            self.dropped_by_filter += 1
            return
        self.records.append(TapRecord(
            self._sim.now, src_node, dst_node,
            packet if self.keep_packets else None,
        ))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def between(self, start: float, end: float) -> List[TapRecord]:
        return [r for r in self.records if start <= r.time < end]

    def count(self, predicate: Callable[[TapRecord], bool]) -> int:
        return sum(1 for r in self.records if predicate(r))

    def summary_lines(self, limit: int = 20) -> List[str]:
        """Human-readable capture, tcpdump-style."""
        lines = []
        for record in self.records[:limit]:
            what = (record.packet.summary() if record.packet is not None
                    else "(metadata only)")
            lines.append(
                f"{record.time:10.6f}  {record.src_node} > "
                f"{record.dst_node}  {what}"
            )
        if len(self.records) > limit:
            lines.append(f"... {len(self.records) - limit} more")
        return lines

    def detach(self) -> None:
        """Stop capturing and restore the link's callbacks."""
        if not self._attached:
            return
        self.link.a.deliver = self._original_a
        self.link.b.deliver = self._original_b
        self._attached = False

    def __repr__(self) -> str:
        state = "live" if self._attached else "detached"
        return f"<Tap on {self.link!r} {state}, {len(self.records)} pkts>"
