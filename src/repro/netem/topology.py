"""Declarative topology descriptions and standard builders.

A :class:`Topology` is a pure description — names, roles, link parameters —
with no simulation state, so it can be built, inspected, and validated
before :class:`~repro.netem.network.Network` breathes life into it.

Builders cover the canonical evaluation shapes: linear, ring, star, tree,
fat-tree (the data-centre staple), full mesh, and Waxman random graphs.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.errors import TopologyError
from repro.packet import IPv4Address, MACAddress

__all__ = ["Topology", "NodeSpec", "LinkSpec"]


class NodeSpec:
    """A node in the description: either a switch or a host."""

    __slots__ = ("name", "kind", "dpid", "ip", "mac")

    def __init__(self, name: str, kind: str, dpid: Optional[int] = None,
                 ip: Optional[IPv4Address] = None,
                 mac: Optional[MACAddress] = None) -> None:
        self.name = name
        self.kind = kind
        self.dpid = dpid
        self.ip = ip
        self.mac = mac

    @property
    def is_switch(self) -> bool:
        return self.kind == "switch"

    def __repr__(self) -> str:
        ident = f"dpid={self.dpid}" if self.is_switch else f"ip={self.ip}"
        return f"<NodeSpec {self.name} ({self.kind}, {ident})>"


class LinkSpec:
    """A link in the description, with its emulation parameters."""

    __slots__ = ("a", "b", "bandwidth_bps", "delay", "loss_rate",
                 "queue_capacity", "priority_bands")

    def __init__(self, a: str, b: str, bandwidth_bps: float = 0.0,
                 delay: float = 0.0001, loss_rate: float = 0.0,
                 queue_capacity: int = 100,
                 priority_bands: int = 1) -> None:
        self.a = a
        self.b = b
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.loss_rate = loss_rate
        self.queue_capacity = queue_capacity
        self.priority_bands = priority_bands

    def endpoints(self) -> Tuple[str, str]:
        return self.a, self.b

    def __repr__(self) -> str:
        return f"<LinkSpec {self.a} -- {self.b}>"


class Topology:
    """A named graph of switches, hosts, and links."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self.nodes: Dict[str, NodeSpec] = {}
        self.links: List[LinkSpec] = []
        self._next_dpid = 1
        self._next_host = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_switch(self, name: Optional[str] = None,
                   dpid: Optional[int] = None) -> str:
        if dpid is None:
            dpid = self._next_dpid
        self._next_dpid = max(self._next_dpid, dpid + 1)
        if name is None:
            name = f"s{dpid}"
        if name in self.nodes:
            raise TopologyError(f"duplicate node name {name!r}")
        if any(n.is_switch and n.dpid == dpid for n in self.nodes.values()):
            raise TopologyError(f"duplicate dpid {dpid}")
        self.nodes[name] = NodeSpec(name, "switch", dpid=dpid)
        return name

    def add_host(self, name: Optional[str] = None,
                 ip: Optional[str] = None,
                 mac: Optional[str] = None) -> str:
        index = self._next_host
        self._next_host += 1
        if name is None:
            name = f"h{index}"
        if name in self.nodes:
            raise TopologyError(f"duplicate node name {name!r}")
        if ip is None:
            # 10.x.y.z pool, skipping .0 and .255 octet edge cases.
            ip = IPv4Address(
                (10 << 24) | ((index >> 16) << 16)
                | (((index >> 8) & 0xFF) << 8) | ((index & 0xFF) or 1)
            )
        else:
            ip = IPv4Address(ip)
        if any(not n.is_switch and n.ip == ip for n in self.nodes.values()):
            raise TopologyError(f"duplicate host IP {ip}")
        host_mac = (MACAddress(mac) if mac is not None
                    else MACAddress.local(0x800000 + index))
        self.nodes[name] = NodeSpec(name, "host", ip=ip, mac=host_mac)
        return name

    def add_link(self, a: str, b: str, **params) -> LinkSpec:
        for end in (a, b):
            if end not in self.nodes:
                raise TopologyError(f"unknown node {end!r}")
        if a == b:
            raise TopologyError("self-links are not allowed")
        if self.find_link(a, b) is not None:
            raise TopologyError(f"duplicate link {a} -- {b}")
        if not self.nodes[a].is_switch and not self.nodes[b].is_switch:
            raise TopologyError("host-to-host links are not supported")
        spec = LinkSpec(a, b, **params)
        self.links.append(spec)
        return spec

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def switches(self) -> List[NodeSpec]:
        return [n for n in self.nodes.values() if n.is_switch]

    @property
    def hosts(self) -> List[NodeSpec]:
        return [n for n in self.nodes.values() if not n.is_switch]

    def find_link(self, a: str, b: str) -> Optional[LinkSpec]:
        for link in self.links:
            if {link.a, link.b} == {a, b}:
                return link
        return None

    def link_ids(self) -> Dict[Tuple[str, str], int]:
        """Stable integer id per link — its index in :attr:`links` —
        keyed by both endpoint orders.

        The sharded kernel uses ``id * 2 + direction`` as the
        partition-independent tie-break base for arrival events, so the
        id of a link must never depend on which shard looks at it.
        """
        out: Dict[Tuple[str, str], int] = {}
        for index, link in enumerate(self.links):
            out[(link.a, link.b)] = index
            out[(link.b, link.a)] = index
        return out

    def switch_adjacency(self) -> Dict[str, List[str]]:
        """Switch name -> sorted neighbouring switch names (hosts
        excluded).  Sorted so every consumer — the shard partitioner,
        shortest-path routing — walks the graph in one canonical order."""
        adj: Dict[str, List[str]] = {s.name: [] for s in self.switches}
        for link in self.links:
            if link.a in adj and link.b in adj:
                adj[link.a].append(link.b)
                adj[link.b].append(link.a)
        for name in adj:
            adj[name].sort()
        return adj

    def host_attachment(self) -> Dict[str, str]:
        """Host name -> the switch it hangs off.

        Only meaningful after :meth:`validate` (which guarantees exactly
        one link per host); with multiple links the first one wins.
        """
        out: Dict[str, str] = {}
        for link in self.links:
            a_switch = self.nodes[link.a].is_switch
            b_switch = self.nodes[link.b].is_switch
            if a_switch and not b_switch and link.b not in out:
                out[link.b] = link.a
            elif b_switch and not a_switch and link.a not in out:
                out[link.a] = link.b
        return out

    def neighbours(self, name: str) -> List[str]:
        out = []
        for link in self.links:
            if link.a == name:
                out.append(link.b)
            elif link.b == name:
                out.append(link.a)
        return out

    def validate(self) -> None:
        """Raise :class:`TopologyError` on structural problems."""
        for host in self.hosts:
            degree = len(self.neighbours(host.name))
            if degree != 1:
                raise TopologyError(
                    f"host {host.name} must have exactly one link, "
                    f"has {degree}"
                )
        # Connectivity check over the undirected graph.
        if not self.nodes:
            return
        seen = set()
        stack = [next(iter(self.nodes))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(n for n in self.neighbours(node) if n not in seen)
        missing = set(self.nodes) - seen
        if missing:
            raise TopologyError(
                f"topology is disconnected; unreachable: {sorted(missing)}"
            )

    def __repr__(self) -> str:
        return (
            f"<Topology {self.name!r}: {len(self.switches)} switches, "
            f"{len(self.hosts)} hosts, {len(self.links)} links>"
        )

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def linear(cls, num_switches: int, hosts_per_switch: int = 1,
               **link_opts) -> "Topology":
        """A chain of switches, each with its own hosts."""
        topo = cls(f"linear-{num_switches}")
        switches = [topo.add_switch() for _ in range(num_switches)]
        for left, right in zip(switches, switches[1:]):
            topo.add_link(left, right, **link_opts)
        for switch in switches:
            for _ in range(hosts_per_switch):
                topo.add_link(topo.add_host(), switch, **link_opts)
        return topo

    @classmethod
    def single(cls, num_hosts: int, **link_opts) -> "Topology":
        """One switch with ``num_hosts`` hosts (Mininet's default)."""
        topo = cls(f"single-{num_hosts}")
        switch = topo.add_switch()
        for _ in range(num_hosts):
            topo.add_link(topo.add_host(), switch, **link_opts)
        return topo

    @classmethod
    def ring(cls, num_switches: int, hosts_per_switch: int = 1,
             **link_opts) -> "Topology":
        """A cycle of switches — the minimal redundant topology."""
        if num_switches < 3:
            raise TopologyError("a ring needs at least 3 switches")
        topo = cls(f"ring-{num_switches}")
        switches = [topo.add_switch() for _ in range(num_switches)]
        for i, switch in enumerate(switches):
            topo.add_link(switch, switches[(i + 1) % num_switches],
                          **link_opts)
        for switch in switches:
            for _ in range(hosts_per_switch):
                topo.add_link(topo.add_host(), switch, **link_opts)
        return topo

    @classmethod
    def star(cls, num_leaves: int, hosts_per_leaf: int = 1,
             **link_opts) -> "Topology":
        """A hub switch with ``num_leaves`` leaf switches."""
        topo = cls(f"star-{num_leaves}")
        hub = topo.add_switch("hub", dpid=1)
        for _ in range(num_leaves):
            leaf = topo.add_switch()
            topo.add_link(hub, leaf, **link_opts)
            for _ in range(hosts_per_leaf):
                topo.add_link(topo.add_host(), leaf, **link_opts)
        return topo

    @classmethod
    def tree(cls, depth: int, fanout: int = 2, **link_opts) -> "Topology":
        """A complete ``fanout``-ary switch tree with hosts at the leaves."""
        if depth < 1:
            raise TopologyError("tree depth must be >= 1")
        topo = cls(f"tree-d{depth}-f{fanout}")

        def build(level: int) -> str:
            node = topo.add_switch()
            for _ in range(fanout):
                if level + 1 < depth:
                    child = build(level + 1)
                else:
                    child = topo.add_host()
                topo.add_link(node, child, **link_opts)
            return node

        build(0)
        return topo

    @classmethod
    def fat_tree(cls, k: int = 4, **link_opts) -> "Topology":
        """The classic three-tier fat-tree with parameter ``k``.

        ``k`` pods, each with ``k/2`` edge and ``k/2`` aggregation
        switches; ``(k/2)^2`` core switches; ``k^3/4`` hosts.  All links
        identical — the full bisection bandwidth comes from multipath,
        which is exactly what the TE experiments stress.
        """
        if k < 2 or k % 2:
            raise TopologyError("fat-tree k must be even and >= 2")
        half = k // 2
        topo = cls(f"fattree-{k}")
        cores = [topo.add_switch(f"c{i}") for i in range(half * half)]
        for pod in range(k):
            aggs = [topo.add_switch(f"p{pod}a{i}") for i in range(half)]
            edges = [topo.add_switch(f"p{pod}e{i}") for i in range(half)]
            for agg in aggs:
                for edge in edges:
                    topo.add_link(agg, edge, **link_opts)
            for i, agg in enumerate(aggs):
                for j in range(half):
                    topo.add_link(agg, cores[i * half + j], **link_opts)
            for e, edge in enumerate(edges):
                for h in range(half):
                    host = topo.add_host(f"p{pod}e{e}h{h}")
                    topo.add_link(host, edge, **link_opts)
        return topo

    @classmethod
    def mesh(cls, num_switches: int, hosts_per_switch: int = 1,
             **link_opts) -> "Topology":
        """A full mesh of switches."""
        topo = cls(f"mesh-{num_switches}")
        switches = [topo.add_switch() for _ in range(num_switches)]
        for i, a in enumerate(switches):
            for b in switches[i + 1:]:
                topo.add_link(a, b, **link_opts)
        for switch in switches:
            for _ in range(hosts_per_switch):
                topo.add_link(topo.add_host(), switch, **link_opts)
        return topo

    @classmethod
    def carrier_wan(cls, cores: int = 4, metros_per_core: int = 2,
                    access_per_metro: int = 2, hosts_per_access: int = 2,
                    core_delay: float = 0.005, metro_delay: float = 0.001,
                    access_delay: float = 0.0002,
                    **link_opts) -> "Topology":
        """A three-tier carrier/WAN topology (SplitArchitecture's
        operator domain): a core ring with a cross-chord, dual-homed
        metro switches, and access switches fanning out to subscribers.

        Each metro attaches to its own core *and* the next core around
        the ring, so every access subtree survives a single core or
        core-link failure.  Per-tier propagation delays default to
        WAN-ish numbers (5 ms core, 1 ms metro, 0.2 ms access) — the
        long-haul asymmetry datacenter fabrics don't have.
        """
        if cores < 3:
            raise TopologyError("carrier WAN needs at least 3 cores")
        if metros_per_core < 1 or access_per_metro < 1:
            raise TopologyError("carrier WAN tiers must be >= 1 wide")
        topo = cls(f"carrier-{cores}x{metros_per_core}x{access_per_metro}")
        core = [topo.add_switch(f"core{i}") for i in range(cores)]
        for i, sw in enumerate(core):
            topo.add_link(sw, core[(i + 1) % cores], delay=core_delay,
                          **link_opts)
        if cores >= 5:
            # One chord across the ring keeps worst-case core paths
            # from growing linearly with the ring size.
            topo.add_link(core[0], core[cores // 2], delay=core_delay,
                          **link_opts)
        for i in range(cores):
            for m in range(metros_per_core):
                metro = topo.add_switch(f"m{i}_{m}")
                topo.add_link(metro, core[i], delay=metro_delay,
                              **link_opts)
                topo.add_link(metro, core[(i + 1) % cores],
                              delay=metro_delay, **link_opts)
                for a in range(access_per_metro):
                    access = topo.add_switch(f"a{i}_{m}_{a}")
                    topo.add_link(access, metro, delay=access_delay,
                                  **link_opts)
                    for h in range(hosts_per_access):
                        host = topo.add_host(f"u{i}_{m}_{a}h{h}")
                        topo.add_link(host, access, delay=access_delay,
                                      **link_opts)
        return topo

    @classmethod
    def waxman(cls, num_switches: int, hosts_per_switch: int = 1,
               alpha: float = 0.6, beta: float = 0.4, seed: int = 7,
               **link_opts) -> "Topology":
        """A Waxman random graph over switches, forced connected.

        Nodes get random plane coordinates; an edge (u, v) exists with
        probability ``alpha * exp(-d(u, v) / (beta * L))``.  A spanning
        chain is added first so the result is always connected.
        """
        rng = random.Random(seed)
        topo = cls(f"waxman-{num_switches}-s{seed}")
        switches = [topo.add_switch() for _ in range(num_switches)]
        coords = {s: (rng.random(), rng.random()) for s in switches}
        # Spanning chain for guaranteed connectivity.
        order = switches[:]
        rng.shuffle(order)
        for a, b in zip(order, order[1:]):
            topo.add_link(a, b, **link_opts)
        max_dist = 2 ** 0.5
        for i, a in enumerate(switches):
            for b in switches[i + 1:]:
                if topo.find_link(a, b) is not None:
                    continue
                (x1, y1), (x2, y2) = coords[a], coords[b]
                dist = ((x1 - x2) ** 2 + (y1 - y2) ** 2) ** 0.5
                if rng.random() < alpha * math.exp(
                    -dist / (beta * max_dist)
                ):
                    topo.add_link(a, b, **link_opts)
        for switch in switches:
            for _ in range(hosts_per_switch):
                topo.add_link(topo.add_host(), switch, **link_opts)
        return topo
