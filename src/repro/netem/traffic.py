"""Workload generators and measurement sinks.

Flows are UDP byte streams whose payload carries a tiny framing header
(flow id + total size) so sinks can detect completion without any
out-of-band channel.  Three generator families cover the evaluation
suite's needs:

* :class:`CBRStream` — constant bit rate, for utilisation and isolation
  experiments (E5, E10).
* :class:`FlowGenerator` — Poisson arrivals with configurable size
  distributions, for occupancy and FCT experiments (E2).
* :class:`RequestLoad` — open-loop request/response against a VIP, for
  the load-balancer experiment (E6).
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TopologyError
from repro.netem.host import Host
from repro.packet import IPv4, Packet, UDP
from repro.sim import Simulator

__all__ = [
    "FlowRecord",
    "FlowSink",
    "CBRStream",
    "FlowGenerator",
    "RequestLoad",
    "allocate_flow_id",
    "pareto_sizes",
    "send_framed_flow",
    "FLOW_HEADER",
]

#: Payload framing: flow id (u32), sequence (u32), total size (u64).
FLOW_HEADER = struct.Struct("!IIQ")


def allocate_flow_id(sim: Simulator) -> int:
    """Next flow id from the per-simulator counter.

    Every generator family draws from the same namespace, so two
    generators feeding one sink can never collide, and ids depend only
    on allocation order within the run — re-running a seeded simulation
    in the same process yields the same ids (a class-level counter,
    which this replaced, leaked process history into the stream).
    """
    return sim.next_id("flow")


class FlowRecord:
    """Sender- and receiver-side view of one flow."""

    __slots__ = ("flow_id", "src", "dst", "size", "start_time",
                 "end_time", "bytes_received", "packets_received")

    def __init__(self, flow_id: int, src: str, dst: str, size: int,
                 start_time: float) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.bytes_received = 0
        self.packets_received = 0

    @property
    def completed(self) -> bool:
        return self.end_time is not None

    @property
    def fct(self) -> float:
        """Flow completion time; NaN until the flow completes."""
        if self.end_time is None:
            return float("nan")
        return self.end_time - self.start_time

    def __repr__(self) -> str:
        state = f"fct={self.fct:.4f}" if self.completed else "running"
        return (
            f"<Flow {self.flow_id} {self.src}->{self.dst} "
            f"{self.size}B {state}>"
        )


class FlowSink:
    """A UDP sink that reassembles framed flows and records completions."""

    def __init__(self, host: Host, port: int) -> None:
        self.host = host
        self.port = port
        self.flows: Dict[int, FlowRecord] = {}
        self.on_flow_complete: Optional[Callable[[FlowRecord], None]] = None
        self.total_bytes = 0
        host.bind_udp(port, self._receive)

    def _receive(self, packet: Packet, host: Host) -> None:
        payload = packet.payload
        if len(payload) < FLOW_HEADER.size:
            return
        flow_id, _seq, total = FLOW_HEADER.unpack_from(payload)
        record = self.flows.get(flow_id)
        if record is None:
            ip = packet[IPv4]
            record = FlowRecord(flow_id, str(ip.src), host.name, total,
                                host.sim.now)
            self.flows[flow_id] = record
        size = len(payload)
        # Completion compares goodput against the advertised flow size;
        # counting the 16 framing bytes per packet used to trip
        # ``bytes_received >= size`` one or more packets early and
        # silently shrink every measured FCT.
        record.bytes_received += size - FLOW_HEADER.size
        record.packets_received += 1
        self.total_bytes += size
        if (record.bytes_received >= record.size
                and record.end_time is None):
            record.end_time = host.sim.now
            if self.on_flow_complete is not None:
                self.on_flow_complete(record)

    def completed_flows(self) -> List[FlowRecord]:
        return [f for f in self.flows.values() if f.completed]

    def throughput_bps(self, window: float) -> float:
        """Average receive rate over the last ``window`` seconds assumes
        the caller resets ``total_bytes`` at the window start."""
        if window <= 0:
            return 0.0
        return self.total_bytes * 8 / window


class CBRStream:
    """A constant-bit-rate UDP stream between two hosts.

    The stream paces fixed-size packets at ``rate_bps`` from ``start``
    until ``start + duration``.  Packets carry flow framing so any
    :class:`FlowSink` can account them.
    """

    def __init__(
        self,
        src: Host,
        dst_ip,
        rate_bps: float,
        packet_size: int = 1000,
        start: float = 0.0,
        duration: float = 10.0,
        src_port: int = 20000,
        dst_port: int = 9000,
        flow_id: Optional[int] = None,
    ) -> None:
        if rate_bps <= 0:
            raise TopologyError(f"CBR rate must be positive: {rate_bps}")
        if packet_size <= FLOW_HEADER.size:
            raise TopologyError(
                f"packet size must exceed framing ({FLOW_HEADER.size}B)"
            )
        self.src = src
        self.dst_ip = dst_ip
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.duration = duration
        self.src_port = src_port
        self.dst_port = dst_port
        # A caller-supplied id bypasses the per-simulator counter: the
        # sharded engine precomputes flow ids so they cannot depend on
        # which shard allocates them.
        self.flow_id = (allocate_flow_id(src.sim) if flow_id is None
                        else flow_id)
        self.packets_sent = 0
        self.bytes_sent = 0
        self._stopped = False
        self._seq = 0
        sim = src.sim
        self._interval = packet_size * 8 / rate_bps
        # ``start`` is relative to creation, like every sim.schedule().
        self._end_at = sim.now + start + duration
        sim.schedule(start, self._tick)

    def _tick(self) -> None:
        sim = self.src.sim
        # Strict comparison: a tick landing exactly on the end instant
        # must not send, or the stream ships one packet more than
        # rate * duration accounts for.
        if self._stopped or sim.now >= self._end_at:
            return
        payload = FLOW_HEADER.pack(self.flow_id, self._seq, 0)
        payload += b"\x00" * (self.packet_size - len(payload))
        self._seq += 1
        self.src.send_udp(self.dst_ip, self.src_port, self.dst_port,
                          payload)
        self.packets_sent += 1
        self.bytes_sent += self.packet_size
        sim.schedule(self._interval, self._tick)

    def stop(self) -> None:
        self._stopped = True

    def __repr__(self) -> str:
        return (
            f"<CBRStream {self.src.name}->{self.dst_ip} "
            f"{self.rate_bps / 1e6:.1f}Mbps>"
        )


def pareto_sizes(rng, mean: float, shape: float = 1.2):
    """An infinite generator of Pareto-distributed flow sizes.

    Heavy-tailed sizes are the canonical data-centre workload shape
    (most flows tiny, most bytes in elephants).
    """
    if shape <= 1.0:
        raise TopologyError("pareto shape must be > 1 for a finite mean")
    scale = mean * (shape - 1) / shape
    while True:
        # random() is uniform on [0, 1): an exact 0.0 draw is rare but
        # legal and used to raise ZeroDivisionError mid-experiment.
        u = rng.random()
        while u <= 0.0:
            u = rng.random()
        yield max(int(scale / (u ** (1.0 / shape))), 64)


def send_framed_flow(sim: Simulator, src: Host, dst_ip, flow_id: int,
                     size: int, src_port: int, dst_port: int,
                     flow_rate_bps: float = 10e6,
                     packet_size: int = 1000) -> int:
    """Pace one framed flow of ``size`` goodput bytes; returns the
    number of packets it will take.

    Shared by every generator family (Poisson, incast, scenario specs):
    the flow is chunked into ``packet_size``-byte UDP datagrams whose
    16-byte header carries (flow id, sequence, total size) so any
    :class:`FlowSink` can detect the exact completion packet.
    """
    interval = packet_size * 8 / flow_rate_bps
    payload_room = packet_size - FLOW_HEADER.size
    if payload_room <= 0:
        raise TopologyError(
            f"packet size must exceed framing ({FLOW_HEADER.size}B)"
        )
    chunks: List[int] = []
    remaining = size
    while remaining > 0:
        chunk = min(remaining, payload_room)
        chunks.append(chunk)
        remaining -= chunk

    def send_chunk(index: int) -> None:
        header = FLOW_HEADER.pack(flow_id, index, size)
        payload = header + b"\x00" * chunks[index]
        src.send_udp(dst_ip, src_port, dst_port, payload)
        if index + 1 < len(chunks):
            sim.schedule(interval, send_chunk, index + 1)

    send_chunk(0)
    return len(chunks)


class FlowGenerator:
    """Poisson flow arrivals between random host pairs.

    Each flow is a framed UDP transfer paced at ``flow_rate_bps``.  Flow
    sizes come from ``size_source`` (an iterator of ints); destinations
    are uniform unless a ``pair_picker`` is supplied (hotspot matrices).
    """

    def __init__(
        self,
        sim: Simulator,
        hosts: List[Host],
        arrival_rate: float,
        size_source,
        flow_rate_bps: float = 10e6,
        packet_size: int = 1000,
        dst_port: int = 9000,
        pair_picker: Optional[Callable[[], Tuple[Host, Host]]] = None,
        start: float = 0.0,
        duration: float = 10.0,
    ) -> None:
        if arrival_rate <= 0:
            raise TopologyError("arrival rate must be positive")
        if len(hosts) < 2:
            raise TopologyError("flow generation needs >= 2 hosts")
        self.sim = sim
        self.hosts = hosts
        self.arrival_rate = arrival_rate
        self.size_source = size_source
        self.flow_rate_bps = flow_rate_bps
        self.packet_size = packet_size
        self.dst_port = dst_port
        self.pair_picker = pair_picker
        self.rng = sim.fork_rng()
        self._end_at = sim.now + start + duration
        self.flows_started: List[FlowRecord] = []
        self._next_src_port = 30000
        sim.schedule(start + self.rng.expovariate(arrival_rate),
                     self._arrival)

    def _pick_pair(self) -> Tuple[Host, Host]:
        if self.pair_picker is not None:
            return self.pair_picker()
        src, dst = self.rng.sample(self.hosts, 2)
        return src, dst

    def _spawn_flow(self) -> FlowRecord:
        """Start one flow now (subclasses reuse this from custom
        arrival processes)."""
        src, dst = self._pick_pair()
        size = next(self.size_source)
        flow_id = allocate_flow_id(self.sim)
        src_port = self._next_src_port
        self._next_src_port += 1
        if self._next_src_port > 60000:
            self._next_src_port = 30000
        record = FlowRecord(flow_id, src.name, dst.name, size, self.sim.now)
        self.flows_started.append(record)
        send_framed_flow(self.sim, src, dst.ip, flow_id, size, src_port,
                         self.dst_port, self.flow_rate_bps,
                         self.packet_size)
        return record

    def _arrival(self) -> None:
        if self.sim.now > self._end_at:
            return
        self._spawn_flow()
        self.sim.schedule(self.rng.expovariate(self.arrival_rate),
                          self._arrival)


class RequestLoad:
    """Open-loop request generator against a virtual IP (VIP).

    Clients send single-packet "requests" at Poisson intervals from
    ephemeral source ports; whoever terminates the VIP replies with one
    packet.  Response times are recorded per request.
    """

    REQUEST_PORT = 8080

    def __init__(
        self,
        sim: Simulator,
        clients: List[Host],
        vip,
        request_rate: float,
        start: float = 0.0,
        duration: float = 10.0,
        timeout: float = 5.0,
    ) -> None:
        self.sim = sim
        self.clients = clients
        self.vip = vip
        self.request_rate = request_rate
        self.timeout = timeout
        self.rng = sim.fork_rng()
        self._end_at = sim.now + start + duration
        self.sent = 0
        self.response_times: List[float] = []
        self.timeouts = 0
        #: token -> send time.  Tokens are monotonically unique, so a
        #: stale timeout can only ever expire its own request — keying
        #: by (client, port) let a late ``_expire`` pop the *fresh*
        #: request after the ephemeral port range wrapped, inflating
        #: ``timeouts`` and eating a real response.
        self._pending: Dict[int, float] = {}
        #: (client name, ephemeral port) -> token of the latest request
        #: in flight on that port (how responses find their token).
        self._inflight: Dict[Tuple[str, int], int] = {}
        self._next_token = 0
        self._next_port = 40000
        for client in clients:
            if client.on_udp is not None:
                raise TopologyError(
                    f"host {client.name} already has an on_udp handler; "
                    f"attaching a second RequestLoad would silently "
                    f"break the first — give each load its own clients"
                )
            client.on_udp = self._on_response
        sim.schedule(start + self.rng.expovariate(request_rate),
                     self._arrival)

    def _arrival(self) -> None:
        if self.sim.now > self._end_at:
            return
        self._send_one(self.rng.choice(self.clients))
        self.sim.schedule(self.rng.expovariate(self.request_rate),
                          self._arrival)

    def _send_one(self, client: Host) -> None:
        port = self._next_port
        self._next_port += 1
        if self._next_port > 60000:
            self._next_port = 40000
        token = self._next_token
        self._next_token += 1
        key = (client.name, port)
        self._pending[token] = self.sim.now
        self._inflight[key] = token
        self.sent += 1
        client.send_udp(self.vip, port, self.REQUEST_PORT, b"request")
        self.sim.schedule(self.timeout, self._expire, token, key)

    def _on_response(self, packet: Packet, host: Host) -> None:
        udp = packet[UDP]
        key = (host.name, udp.dst_port)
        token = self._inflight.get(key)
        if token is None:
            return
        sent_at = self._pending.pop(token, None)
        if sent_at is not None:
            del self._inflight[key]
            self.response_times.append(self.sim.now - sent_at)

    def _expire(self, token: int, key: Tuple[str, int]) -> None:
        if self._pending.pop(token, None) is not None:
            self.timeouts += 1
            if self._inflight.get(key) == token:
                del self._inflight[key]

    @property
    def completed(self) -> int:
        return len(self.response_times)
