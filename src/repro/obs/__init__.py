"""repro.obs — sim-time metrics history, health/SLO plane, run diffing.

The third observability layer, built on ``repro.telemetry``:

* :class:`~repro.obs.scraper.MetricsScraper` — a sim-clock-driven
  scraper riding the kernel's read-only observer side-channel
  (:meth:`~repro.sim.kernel.Simulator.observe_every`): every interval
  it samples the :class:`~repro.telemetry.registry.MetricsRegistry`
  into per-series ring buffers (:class:`~repro.obs.series.Series`) with
  rollup storage and mergeable per-scrape quantile sketches;
* :class:`~repro.obs.slo.SLOEvaluator` — declarative SLOs
  (:func:`~repro.obs.slo.default_slos`) evaluated online each tick
  with burn-rate alerting, producing a
  :class:`~repro.obs.slo.HealthReport`;
* :class:`~repro.obs.artifact.RunArtifact` — the run serialised to one
  JSON file, rendered by :func:`~repro.obs.render.render_dashboard`
  and A/B-compared by :func:`~repro.obs.diff.diff_runs`.

:class:`ObsPlane` assembles all of it around a
:class:`~repro.core.platform.ZenPlatform` in one call::

    plane = ObsPlane(platform, interval=0.1).watch_faults(schedule)
    platform.run(30.0)
    report = plane.finish()
    plane.artifact(seed=7).save("run.json")

The plane inherits the telemetry doctrine and strengthens it: scrapes
fire between kernel events on the observer side-channel, which forbids
scheduling and never draws randomness, so a seeded run is bit-identical
with the plane attached or absent (``tests/test_obs.py`` proves it
across the fuzz corpus).
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.artifact import RunArtifact, load_artifact, save_artifact
from repro.obs.diff import DiffEntry, DiffReport, diff_runs, render_diff
from repro.obs.render import (
    render_dashboard,
    render_health,
    render_openmetrics,
    sparkline,
)
from repro.obs.scraper import (
    Annotation,
    FaultWindow,
    MetricsScraper,
    fault_windows,
    series_id,
)
from repro.obs.series import Point, Rollup, Series
from repro.obs.slo import (
    Alert,
    ConvergenceSLO,
    HealthReport,
    SLO,
    SLOEvaluator,
    SeriesSLO,
    default_slos,
    handover_slo,
    slo_from_spec,
)

__all__ = [
    "Alert",
    "Annotation",
    "ConvergenceSLO",
    "DiffEntry",
    "DiffReport",
    "FaultWindow",
    "HealthReport",
    "MetricsScraper",
    "ObsPlane",
    "Point",
    "Rollup",
    "RunArtifact",
    "SLO",
    "SLOEvaluator",
    "Series",
    "SeriesSLO",
    "default_slos",
    "diff_runs",
    "fault_windows",
    "handover_slo",
    "load_artifact",
    "render_dashboard",
    "render_diff",
    "render_health",
    "render_openmetrics",
    "save_artifact",
    "series_id",
    "slo_from_spec",
    "sparkline",
]


class ObsPlane:
    """Scraper + SLO evaluator wired into one platform.

    Attaching never perturbs the run: the scraper rides the observer
    side-channel, the controller subscriptions only append annotations,
    and the channel probes are pure reads of serialisation state.

    Parameters
    ----------
    platform:
        The :class:`~repro.core.platform.ZenPlatform` to watch (its
        telemetry plane must be enabled).
    interval:
        Scrape period in simulated seconds.
    slos:
        Objectives to evaluate online; defaults to
        :func:`~repro.obs.slo.default_slos`.  Pass ``[]`` to scrape
        without health evaluation.
    """

    def __init__(self, platform, interval: float = 0.1,
                 slos: Optional[List[SLO]] = None,
                 capacity: int = 4096, rollup_factor: int = 8,
                 watch: bool = True) -> None:
        telemetry = platform.telemetry
        if telemetry is None or not telemetry.enabled:
            raise ValueError(
                "ObsPlane needs an enabled telemetry plane; build the "
                "platform with telemetry=Telemetry()"
            )
        self.platform = platform
        self.scraper = MetricsScraper(
            telemetry, interval=interval, capacity=capacity,
            rollup_factor=rollup_factor,
        ).attach(platform.sim)
        self.health = SLOEvaluator(
            default_slos(interval) if slos is None else slos,
            self.scraper,
        ).attach()
        self._report: Optional[HealthReport] = None
        if watch:
            self.watch_controller(platform.controller)
            self.watch_channels(platform.net)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def watch_controller(self, controller) -> "ObsPlane":
        """Annotate ``SwitchEnter``/``ResyncDone`` on the timeline.

        Labels use the switch *name* (via the dpid map of the attached
        network) so convergence annotations pair with fault-injection
        annotations, which target names.
        """
        from repro.controller.events import ResyncDone, SwitchEnter

        names = {
            dp.dpid: name
            for name, dp in self.platform.net.switches.items()
        }

        def label(event) -> str:
            return names.get(event.switch.dpid, str(event.switch.dpid))

        controller.subscribe(
            SwitchEnter,
            lambda ev: self.scraper.annotate("switch_enter", label(ev)),
            owner="obs",
        )
        controller.subscribe(
            ResyncDone,
            lambda ev: self.scraper.annotate("resync_done", label(ev)),
            owner="obs",
        )
        return self

    def watch_channels(self, net) -> "ObsPlane":
        """Probe per-channel serialisation backlog depth as gauges."""
        sim = net.sim
        for name in sorted(net.channels):
            channel = net.channels[name]

            def backlog(ch=channel) -> float:
                if not ch.connected:
                    return 0.0
                return max(
                    0.0,
                    max(ch._busy_until.values(), default=0.0) - sim.now,
                )

            self.scraper.probe(
                f'obs_channel_backlog_seconds{{channel="{name}"}}',
                backlog,
            )
        return self

    def watch_cluster(self, cluster) -> "ObsPlane":
        """Annotate mastership handovers of a
        :class:`~repro.cluster.node.ControllerCluster`.

        Every :class:`~repro.cluster.node.HandoverRecord` lands as a
        ``handover`` annotation labelled by switch dpid, and each
        completed failover emits ``handover_done`` labelled
        ``controller-<node>`` — the label a ``controller_crash`` fault
        annotation carries, so :func:`~repro.obs.slo.handover_slo`
        measures crash-to-full-ownership latency out of the box.
        """
        cluster.on_handover.append(
            lambda rec: self.scraper.annotate(
                "handover", f"dpid-{rec.dpid}", time=rec.time)
        )
        cluster.on_failover_complete.append(
            lambda node_id, elapsed: self.scraper.annotate(
                "handover_done", f"controller-{node_id}")
        )
        return self

    def watch_faults(self, schedule) -> "ObsPlane":
        """Annotate every injection of a
        :class:`~repro.faults.FaultSchedule` (chains ``on_fire``)."""
        previous = schedule.on_fire

        def hook(event) -> None:
            if previous is not None:
                previous(event)
            # The fault's root trace rides along as an exemplar, so
            # convergence measurements opened by this annotation can
            # point back at the causal span tree.
            self.scraper.annotate(event.kind, event.target,
                                  time=event.time,
                                  trace_id=getattr(event, "trace_id",
                                                   None))

        schedule.on_fire = hook
        return self

    def watch_monitor(self, monitor) -> "ObsPlane":
        """Annotate invariant violations found by an
        :class:`~repro.check.monitor.InvariantMonitor`."""
        previous = monitor.on_record

        def hook(record) -> None:
            if previous is not None:
                previous(record)
            if not record.result.ok:
                for violation in record.result.violations:
                    self.scraper.annotate(
                        "violation",
                        f"{violation.invariant}:{record.trigger}",
                        time=record.time,
                    )

        monitor.on_record = hook
        return self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finish(self) -> HealthReport:
        """Take one final aligned sample and close the health report."""
        self.scraper.scrape_now()
        self._report = self.health.finish(self.platform.sim.now)
        return self._report

    @property
    def report(self) -> HealthReport:
        return self._report if self._report is not None \
            else self.health.finish()

    def artifact(self, **meta) -> RunArtifact:
        """Freeze the run into a :class:`RunArtifact` (finishes the
        health report first if :meth:`finish` was not called)."""
        if self._report is None:
            self.finish()
        return RunArtifact(
            dict(self.scraper.series),
            list(self.scraper.annotations),
            health=self._report,
            interval=self.scraper.interval,
            horizon=self.platform.sim.now,
            scrapes=self.scraper.scrapes,
            meta=meta,
        )

    def dashboard(self, width: int = 60, **kwargs) -> str:
        return render_dashboard(self.scraper, width=width, **kwargs)

    def __repr__(self) -> str:
        return (f"<ObsPlane {len(self.scraper.series)} series, "
                f"{len(self.health.slos)} SLOs>")
