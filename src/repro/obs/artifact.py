"""Run artifacts: one JSON file per run, diffable and replottable.

A :class:`RunArtifact` freezes everything the obs plane learned about a
run — per-series sample history (with rollups and the cumulative
histogram sketches), the annotation timeline, derived fault windows,
and the health report — into plain data.  Artifacts are deterministic
for a seeded run (no wall-clock anywhere), so a committed baseline
artifact diffs bit-for-bit against a CI re-run of the same scenario;
that is what the ``obs diff`` CI gate leans on.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.scraper import Annotation, FaultWindow, fault_windows
from repro.obs.series import Series
from repro.obs.slo import HealthReport

__all__ = ["FORMAT", "RunArtifact", "load_artifact", "save_artifact"]

#: Format tag; bump on incompatible layout changes.
FORMAT = "repro.obs/1"


class RunArtifact:
    """A finished run's observability record, as plain data."""

    def __init__(self, series: Dict[str, Series],
                 annotations: List[Annotation],
                 health: Optional[HealthReport] = None,
                 interval: float = 0.0, horizon: float = 0.0,
                 scrapes: int = 0,
                 meta: Optional[dict] = None) -> None:
        self.series = series
        self.annotations = annotations
        self.health = health
        self.interval = interval
        self.horizon = horizon
        self.scrapes = scrapes
        self.meta = dict(meta or {})

    # -- queries -------------------------------------------------------
    def get(self, sid: str) -> Optional[Series]:
        return self.series.get(sid)

    def match(self, prefix: str) -> List[Series]:
        return [self.series[sid] for sid in sorted(self.series)
                if sid.startswith(prefix)]

    def windows(self) -> List[FaultWindow]:
        return fault_windows(self.annotations)

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": FORMAT,
            "meta": self.meta,
            "interval": self.interval,
            "horizon": self.horizon,
            "scrapes": self.scrapes,
            "series": {sid: self.series[sid].to_dict()
                       for sid in sorted(self.series)},
            "annotations": [a.to_dict() for a in self.annotations],
            "health": (self.health.to_dict()
                       if self.health is not None else None),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunArtifact":
        tag = data.get("format")
        if tag != FORMAT:
            raise ValueError(
                f"not a {FORMAT} artifact (format={tag!r})"
            )
        series = {
            sid: Series.from_dict(sid, doc)
            for sid, doc in data.get("series", {}).items()
        }
        annotations = [
            Annotation(a["time"], a["kind"], a["label"],
                       trace_id=a.get("trace_id"))
            for a in data.get("annotations", ())
        ]
        health = data.get("health")
        return cls(
            series, annotations,
            health=HealthReport.from_dict(health)
            if health is not None else None,
            interval=data.get("interval", 0.0),
            horizon=data.get("horizon", 0.0),
            scrapes=data.get("scrapes", 0),
            meta=data.get("meta", {}),
        )

    def save(self, path: str) -> None:
        save_artifact(self, path)

    def __repr__(self) -> str:
        return (f"<RunArtifact {len(self.series)} series, "
                f"{len(self.annotations)} annotations, "
                f"horizon {self.horizon:.3f}s>")


def save_artifact(artifact: RunArtifact, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(artifact.to_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_artifact(path: str) -> RunArtifact:
    with open(path) as fh:
        return RunArtifact.from_dict(json.load(fh))
