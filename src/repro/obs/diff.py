"""Statistical A/B diff of two run artifacts — the CI gate.

:func:`diff_runs` compares a *baseline* and a *current*
:class:`~repro.obs.artifact.RunArtifact` series by series and SLO by
SLO, and classifies every delta:

* direction-aware **regressions** — series matching the badness
  patterns (drops, failures, violations, retries, latency quantiles,
  alert time) that got significantly *worse*;
* **improvements** — the same signals moving the right way;
* neutral **changes** — significant movement on signals with no
  inherent direction (e.g. total messages), reported but never fatal.

"Significant" combines a relative-delta floor with a z-like score
(delta over the pooled per-scrape spread), so a 3% wiggle on a noisy
series does not fail a build while a clean 10x jump in drops does.
Artifacts of the *same seeded run* always diff empty — the property
the CI baseline gate depends on.
"""

from __future__ import annotations

import fnmatch
import math
from typing import List, Optional, Tuple

from repro.analysis.report import Table
from repro.obs.artifact import RunArtifact
from repro.obs.series import Series

__all__ = ["DiffEntry", "DiffReport", "diff_runs", "render_diff"]

#: Series where a higher end value is *worse*.  Matched with
#: :mod:`fnmatch` against the full series id.
WORSE_WHEN_HIGHER = (
    "*violations*", "*dropped*", "*drops*", "*failures*", "*failed*",
    "*retries*", "*overflow*", "*stale*", "*blackhole*",
    "*delay*", "*latency*", "*backlog*", "*queue*",
)

#: Series that are pure volume/progress — changes are reported as
#: neutral, never as regressions (more packets is not a bug).
NEUTRAL = (
    "sim_*", "*messages_total*", "*bytes_total*", "*packet_ins*",
    "*events_total*", "*packets_*", "check_runs_total*",
    "faults_injected*", "*transitions*", "*resyncs_total*",
    "*resync_flows*",
)


def _direction(sid: str) -> int:
    """+1 when higher is worse, 0 when neutral, -1 when higher is
    better (nothing ships with -1 semantics yet, but the hook is
    here)."""
    for pattern in NEUTRAL:
        if fnmatch.fnmatch(sid, pattern):
            return 0
    for pattern in WORSE_WHEN_HIGHER:
        if fnmatch.fnmatch(sid, pattern):
            return 1
    return 0


class DiffEntry:
    """One compared signal."""

    __slots__ = ("signal", "kind", "base", "cur", "delta", "rel",
                 "zscore", "flag")

    def __init__(self, signal: str, kind: str, base: Optional[float],
                 cur: Optional[float], delta: float, rel: float,
                 zscore: float, flag: str) -> None:
        self.signal = signal
        self.kind = kind
        self.base = base
        self.cur = cur
        self.delta = delta
        self.rel = rel
        self.zscore = zscore
        self.flag = flag  # same | changed | improvement | REGRESSION

    def to_dict(self) -> dict:
        return {
            "signal": self.signal, "kind": self.kind,
            "base": self.base, "cur": self.cur, "delta": self.delta,
            "rel": self.rel, "zscore": self.zscore, "flag": self.flag,
        }

    def __repr__(self) -> str:
        return f"<DiffEntry {self.signal} {self.flag} Δ={self.delta:+.6g}>"


class DiffReport:
    """Every compared signal plus the regression verdict."""

    def __init__(self, entries: List[DiffEntry],
                 only_base: List[str], only_cur: List[str]) -> None:
        self.entries = entries
        self.only_base = only_base
        self.only_cur = only_cur

    @property
    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.flag == "REGRESSION"]

    @property
    def improvements(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.flag == "improvement"]

    @property
    def changed(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.flag != "same"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "regressions": len(self.regressions),
            "entries": [e.to_dict() for e in self.changed],
            "only_base": self.only_base,
            "only_cur": self.only_cur,
        }

    def __repr__(self) -> str:
        return (f"<DiffReport {len(self.entries)} signals, "
                f"{len(self.regressions)} regressions>")


# ----------------------------------------------------------------------
# Per-series summary statistics
# ----------------------------------------------------------------------
def _summary(series: Series) -> Tuple[float, float]:
    """(headline value, per-scrape spread) for one series.

    Counters and histogram sample counts are cumulative, so the
    headline is the total increase over the run and the spread is the
    standard deviation of per-scrape increments; gauges use the mean
    and standard deviation of the raw samples.
    """
    values = series.values()
    if not values:
        return 0.0, 0.0
    if series.kind == "gauge":
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        return mean, math.sqrt(var)
    increments = [b - a for a, b in zip(values, values[1:])]
    total = values[-1] - values[0]
    if not increments:
        return total, 0.0
    mean = sum(increments) / len(increments)
    var = sum((v - mean) ** 2 for v in increments) / len(increments)
    return total, math.sqrt(var)


def _entry(signal: str, kind: str, base: float, cur: float,
           spread: float, direction: int, tolerance: float,
           z_floor: float) -> DiffEntry:
    delta = cur - base
    scale = max(abs(base), abs(cur), 1e-12)
    rel = delta / scale
    zscore = delta / spread if spread > 0 else (
        math.inf if delta > 0 else -math.inf if delta < 0 else 0.0
    )
    significant = abs(rel) > tolerance and (
        spread == 0 or abs(zscore) >= z_floor
    )
    if not significant:
        flag = "same"
    elif direction == 0:
        flag = "changed"
    elif delta * direction > 0:
        flag = "REGRESSION"
    else:
        flag = "improvement"
    return DiffEntry(signal, kind, base, cur, delta, rel, zscore, flag)


# ----------------------------------------------------------------------
# The diff
# ----------------------------------------------------------------------
def diff_runs(base: RunArtifact, cur: RunArtifact,
              tolerance: float = 0.10,
              z_floor: float = 3.0) -> DiffReport:
    """Compare two artifacts; see the module docstring for semantics.

    ``tolerance`` is the relative-delta floor below which a signal is
    "same"; ``z_floor`` additionally requires the delta to exceed that
    many pooled per-scrape standard deviations when the series has any
    spread at all.
    """
    entries: List[DiffEntry] = []
    shared = sorted(set(base.series) & set(cur.series))
    for sid in shared:
        b, c = base.series[sid], cur.series[sid]
        b_head, b_spread = _summary(b)
        c_head, c_spread = _summary(c)
        spread = math.sqrt((b_spread ** 2 + c_spread ** 2) / 2)
        # A histogram's headline is its observation *count* — volume,
        # not badness; direction applies to its quantiles below.
        direction = 0 if b.kind == "histogram" else _direction(sid)
        entries.append(_entry(sid, b.kind, b_head, c_head, spread,
                              direction, tolerance, z_floor))
        if b.kind == "histogram":
            for q, tag in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                bq = b.quantile(q)
                cq = c.quantile(q)
                if bq is None and cq is None:
                    continue
                entries.append(_entry(
                    f"{sid}:{tag}", "quantile", bq or 0.0, cq or 0.0,
                    0.0, 1, tolerance, z_floor,
                ))

    # Health plane: alert counts and total firing time per SLO.
    if base.health is not None and cur.health is not None:
        base_slos = {s["name"]: s for s in base.health.slos}
        cur_slos = {s["name"]: s for s in cur.health.slos}
        for name in sorted(set(base_slos) & set(cur_slos)):
            bs, cs = base_slos[name], cur_slos[name]
            entries.append(_entry(
                f"slo:{name}:alerts", "health",
                float(len(bs["alerts"])), float(len(cs["alerts"])),
                0.0, 1, tolerance, z_floor,
            ))
            entries.append(_entry(
                f"slo:{name}:firing_s", "health",
                _firing_seconds(bs, base.horizon),
                _firing_seconds(cs, cur.horizon),
                0.0, 1, tolerance, z_floor,
            ))

    only_base = sorted(set(base.series) - set(cur.series))
    only_cur = sorted(set(cur.series) - set(base.series))
    return DiffReport(entries, only_base, only_cur)


def _firing_seconds(slo_doc: dict, horizon: float) -> float:
    total = 0.0
    for alert in slo_doc["alerts"]:
        end = alert.get("resolved_at")
        total += (end if end is not None else horizon) - alert["fired_at"]
    return total


def render_diff(report: DiffReport, base_name: str = "baseline",
                cur_name: str = "current") -> str:
    """The diff as a table of changed signals plus the verdict line."""
    table = Table(
        f"Run diff: {base_name} → {cur_name}",
        ["signal", "kind", base_name, cur_name, "Δ", "rel", "flag"],
    )
    shown = report.changed
    for entry in sorted(shown, key=lambda e: (e.flag != "REGRESSION",
                                              -abs(e.rel))):
        table.add_row(
            entry.signal, entry.kind,
            f"{entry.base:.6g}" if entry.base is not None else "—",
            f"{entry.cur:.6g}" if entry.cur is not None else "—",
            f"{entry.delta:+.6g}", f"{entry.rel:+.1%}", entry.flag,
        )
    lines = []
    if shown:
        lines.append(table.render())
    else:
        lines.append(f"Run diff: {base_name} → {cur_name}: "
                     f"no significant changes "
                     f"({len(report.entries)} signals compared)")
    if report.only_base:
        lines.append(f"only in {base_name}: "
                     f"{', '.join(report.only_base[:8])}"
                     + (" …" if len(report.only_base) > 8 else ""))
    if report.only_cur:
        lines.append(f"only in {cur_name}: "
                     f"{', '.join(report.only_cur[:8])}"
                     + (" …" if len(report.only_cur) > 8 else ""))
    verdict = ("OK — no regressions flagged" if report.ok
               else f"FAIL — {len(report.regressions)} regression(s)")
    lines.append(verdict + f" ({len(report.improvements)} improvement(s),"
                 f" {len(report.changed)} changed signal(s))")
    return "\n".join(lines)
