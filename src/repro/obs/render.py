"""Rendering: ASCII sparkline dashboards and Prometheus exposition.

Everything here is pure presentation over a :class:`RunArtifact` (or a
live scraper/registry) — no simulation state is touched.  The
dashboard draws every selected series against one shared sim-time
axis, with fault windows from the annotation timeline rendered as a
ruler row (``▓`` where a window is open) so "what was happening at
t=3.2s when the link was cut" is answerable at a glance.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.report import Table
from repro.obs.series import Series

__all__ = [
    "render_dashboard",
    "render_health",
    "render_openmetrics",
    "sparkline",
]

#: Sparkline glyph ramp, lowest to highest.
_TICKS = " ▁▂▃▄▅▆▇█"

#: Default dashboard row cap; the footer notes anything dropped.
DEFAULT_MAX_SERIES = 24


# ----------------------------------------------------------------------
# Sparklines
# ----------------------------------------------------------------------
def sparkline(values: Sequence[Optional[float]], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Render ``values`` as one glyph each; ``None`` renders as ``·``."""
    present = [v for v in values if v is not None]
    if not present:
        return "·" * len(values)
    lo = min(present) if lo is None else lo
    hi = max(present) if hi is None else hi
    span = hi - lo
    out = []
    for v in values:
        if v is None:
            out.append("·")
        elif span <= 0:
            out.append(_TICKS[1])
        else:
            idx = int((v - lo) / span * (len(_TICKS) - 1))
            out.append(_TICKS[max(1, min(idx, len(_TICKS) - 1))])
    return "".join(out)


def _resample(series: Series, t0: float, t1: float,
              width: int) -> List[Optional[float]]:
    """Bucket the series into ``width`` equal time slots.

    Gauges show the bucket mean; counters (and histogram sample counts,
    which are cumulative) show the per-bucket *increase*, so a flat
    line means idle rather than "large total".
    """
    if t1 <= t0:
        t1 = t0 + 1e-9
    dt = (t1 - t0) / width
    buckets: List[List[float]] = [[] for _ in range(width)]
    for t, v in series.points(t0, t1):
        slot = min(int((t - t0) / dt), width - 1)
        buckets[slot].append(v)
    if series.kind == "gauge":
        return [sum(b) / len(b) if b else None for b in buckets]
    # Cumulative kinds: difference the bucket maxima.
    out: List[Optional[float]] = []
    prev: Optional[float] = None
    first = series.first
    if first is not None and first[0] < t0 + dt:
        prev = None  # first bucket shows its own span's growth only
    for b in buckets:
        if not b:
            out.append(None)
            continue
        top = max(b)
        out.append(max(0.0, top - prev) if prev is not None else 0.0)
        prev = top
    return out


def _fault_ruler(windows, annotations, t0: float, t1: float,
                 width: int) -> str:
    """One row marking open fault windows (▓) and point events (╵)."""
    if t1 <= t0:
        t1 = t0 + 1e-9
    dt = (t1 - t0) / width
    row = [" "] * width
    for window in windows:
        end = window.end if window.end is not None else t1
        a = max(0, min(int((window.start - t0) / dt), width - 1))
        b = max(0, min(int((end - t0) / dt), width - 1))
        for i in range(a, b + 1):
            row[i] = "▓"
    for ann in annotations:
        if ann.kind in ("resync_done", "switch_enter"):
            i = max(0, min(int((ann.time - t0) / dt), width - 1))
            if row[i] == " ":
                row[i] = "╵"
    return "".join(row)


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------
def render_dashboard(artifact, width: int = 60,
                     select: Optional[Iterable[str]] = None,
                     max_series: int = DEFAULT_MAX_SERIES) -> str:
    """The run as aligned sim-time sparklines plus fault annotations.

    ``artifact`` is anything with ``series``/``annotations``/
    ``windows()`` (a :class:`~repro.obs.artifact.RunArtifact` or a live
    :class:`~repro.obs.scraper.MetricsScraper`).  ``select`` filters
    series by name prefix; by default every series is eligible, capped
    at ``max_series`` rows (the footer counts what was dropped).
    """
    all_sids = sorted(artifact.series)
    if select is not None:
        prefixes = tuple(select)
        all_sids = [s for s in all_sids if s.startswith(prefixes)]
    sids = all_sids[:max_series]

    t0 = t1 = None
    for sid in sids:
        series = artifact.series[sid]
        if series.first is not None:
            first, last = series.first[0], series.last[0]
            t0 = first if t0 is None else min(t0, first)
            t1 = last if t1 is None else max(t1, last)
    if t0 is None:
        return "(no samples)"

    label_w = min(44, max((len(s) for s in sids), default=10))
    pad = " " * (label_w + 2)
    lines = [
        f"time axis: {t0:.3f}s .. {t1:.3f}s "
        f"({width} columns, {(t1 - t0) / width * 1e3:.1f} ms each)",
    ]
    annotations = list(artifact.annotations)
    windows = artifact.windows()
    if windows or annotations:
        lines.append(pad + _fault_ruler(windows, annotations, t0, t1,
                                        width)
                     + "  faults (▓ window, ╵ convergence)")
    for sid in sids:
        series = artifact.series[sid]
        cells = _resample(series, t0, t1, width)
        last = series.last[1] if series.last is not None else 0.0
        present = [v for v in cells if v is not None]
        hi = max(present) if present else 0.0
        unit = "Δ/slot" if series.kind != "gauge" else "value"
        name = sid if len(sid) <= label_w else sid[:label_w - 1] + "…"
        lines.append(f"{name:<{label_w}}  {sparkline(cells)}  "
                     f"last={last:.6g} peak {unit}={hi:.6g}")
    for window in windows:
        end = (f"{window.end:.3f}s" if window.end is not None
               else "unresolved")
        lines.append(f"  fault window: {window.kind} {window.label} "
                     f"{window.start:.3f}s → {end}")
    dropped = len(all_sids) - len(sids)
    if dropped > 0:
        lines.append(f"  … {dropped} more series (raise --max-series "
                     f"or filter with --series)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Health report
# ----------------------------------------------------------------------
def render_health(report) -> str:
    """A health report as a table plus the alert timeline."""
    table = Table(
        f"Health @ {report.horizon:.3f}s — "
        + ("OK" if report.ok else "ALERTS FIRED"),
        ["slo", "objective", "ticks", "bad", "worst", "alerts",
         "verdict"],
    )
    for slo in report.slos:
        worst = slo.get("worst")
        alerts = slo["alerts"]
        verdict = "ok"
        if alerts:
            verdict = "FIRING" if slo.get("firing") else "fired"
        table.add_row(
            slo["name"],
            f"{slo.get('signal', slo['kind'])} {slo['op']} "
            f"{slo['threshold']:g}",
            slo["ticks"],
            f"{slo['bad_ticks']} ({slo['bad_fraction']:.0%})",
            f"{worst:.6g}" if worst is not None else "—",
            len(alerts),
            verdict,
        )
    lines = [table.render()]
    for slo in report.slos:
        for alert in slo["alerts"]:
            resolved = (f"resolved {alert['resolved_at']:.3f}s"
                        if alert.get("resolved_at") is not None
                        else "still firing")
            worst = alert.get("worst")
            extra = f" (worst {worst:.6g})" if worst is not None else ""
            lines.append(f"  alert {alert['slo']}: fired "
                         f"{alert['fired_at']:.3f}s, {resolved}{extra}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus / OpenMetrics text exposition
# ----------------------------------------------------------------------
def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels_text(names: Tuple[str, ...], values: Tuple[str, ...],
                 extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [f'{k}="{_escape(v)}"' for k, v in zip(names, values)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _num(value) -> str:
    if isinstance(value, float) and value == int(value) \
            and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".10g") if isinstance(value, float) \
        else str(value)


def render_openmetrics(registry) -> str:
    """The registry in Prometheus text exposition format.

    Deterministic: families sorted by name, children by label values,
    ending with the OpenMetrics ``# EOF`` marker.  Histograms emit
    cumulative ``_bucket{le=...}`` series (including ``+Inf``), ``_sum``
    and ``_count``, exactly as a Prometheus scrape would expect.
    """
    lines: List[str] = []
    for name in sorted(registry._families):
        family = registry._families[name]
        kind = family.kind
        if family.help:
            lines.append(f"# HELP {name} {_escape(family.help)}")
        lines.append(f"# TYPE {name} {kind}")
        for key in sorted(family.children):
            child = family.children[key]
            if kind == "histogram":
                for bound, cumulative in zip(child.buckets,
                                             child.bucket_counts):
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels_text(family.labelnames, key, ('le', _num(float(bound))))}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_bucket"
                    f"{_labels_text(family.labelnames, key, ('le', '+Inf'))}"
                    f" {child.count}"
                )
                labels = _labels_text(family.labelnames, key)
                lines.append(f"{name}_sum{labels} {_num(child.sum)}")
                lines.append(f"{name}_count{labels} {child.count}")
            else:
                labels = _labels_text(family.labelnames, key)
                lines.append(f"{name}{labels} {_num(child.snapshot())}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
