"""Sim-clock-driven scraper: MetricsRegistry -> per-series history.

The scraper rides the kernel's observer side-channel
(:meth:`~repro.sim.kernel.Simulator.observe_every`): every ``interval``
simulated seconds it walks the registry and appends one sample per
metric child to that child's :class:`~repro.obs.series.Series` ring.
Observer ticks cannot schedule events or draw randomness, so a scraped
run is bit-identical to an unscraped one — the telemetry doctrine,
extended to history.

Beyond registry families the scraper supports:

* **probes** — named read-only callables sampled as gauges each tick
  (e.g. control-channel serialisation backlog, which is platform state
  rather than a pushed metric);
* **annotations** — timestamped marks (fault injections, ``SwitchEnter``
  / ``ResyncDone`` convergence events, invariant violations) that align
  timelines with what the run *did*; paired down/up annotations become
  first-class fault windows on every dashboard;
* **tick hooks** — called after each scrape with the tick time; the SLO
  evaluator uses this to run online.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.series import Series

__all__ = ["Annotation", "FaultWindow", "MetricsScraper",
           "fault_windows", "series_id"]

#: Annotation kinds that open a window, mapped to the kind closing it.
_WINDOW_PAIRS = {
    "link_down": "link_up",
    "channel_down": "channel_up",
    "switch_crash": "switch_restart",
}


def series_id(name: str, labelnames: Tuple[str, ...],
              labelvalues: Tuple[str, ...]) -> str:
    """Canonical series name: ``family{label="value",...}``."""
    if not labelnames:
        return name
    inner = ",".join(
        f'{k}="{v}"' for k, v in zip(labelnames, labelvalues)
    )
    return f"{name}{{{inner}}}"


class Annotation:
    """One timestamped mark on the run's shared timeline.

    ``trace_id`` is an optional exemplar: the causal trace explaining
    the event (a fault injection's root trace, say), so SLO
    measurements can link a latency number back to its span tree.
    """

    __slots__ = ("time", "kind", "label", "trace_id")

    def __init__(self, time: float, kind: str, label: str,
                 trace_id: Optional[int] = None) -> None:
        self.time = time
        self.kind = kind
        self.label = label
        self.trace_id = trace_id

    def to_dict(self) -> dict:
        doc = {"time": self.time, "kind": self.kind, "label": self.label}
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        return doc

    def __repr__(self) -> str:
        return f"<Annotation t={self.time:.3f} {self.kind} {self.label}>"


class FaultWindow:
    """A paired down/up annotation span (open-ended when never closed)."""

    __slots__ = ("kind", "label", "start", "end")

    def __init__(self, kind: str, label: str, start: float,
                 end: Optional[float]) -> None:
        self.kind = kind
        self.label = label
        self.start = start
        self.end = end

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def __repr__(self) -> str:
        end = f"{self.end:.3f}" if self.end is not None else "…"
        return f"<FaultWindow {self.kind} {self.label} [{self.start:.3f},{end}]>"


def fault_windows(annotations: List[Annotation]) -> List[FaultWindow]:
    """Pair opening/closing annotations per (kind, label) into windows."""
    windows: List[FaultWindow] = []
    open_by_key: Dict[Tuple[str, str], FaultWindow] = {}
    for ann in annotations:
        if ann.kind in _WINDOW_PAIRS:
            window = FaultWindow(ann.kind, ann.label, ann.time, None)
            windows.append(window)
            open_by_key[(_WINDOW_PAIRS[ann.kind], ann.label)] = window
        else:
            window = open_by_key.pop((ann.kind, ann.label), None)
            if window is not None:
                window.end = ann.time
    return windows


class MetricsScraper:
    """Periodic sampler over one telemetry plane."""

    def __init__(self, telemetry, interval: float = 0.1,
                 capacity: int = 4096, rollup_factor: int = 8) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.telemetry = telemetry
        self.interval = interval
        self.capacity = capacity
        self.rollup_factor = rollup_factor
        self.series: Dict[str, Series] = {}
        self.annotations: List[Annotation] = []
        self.scrapes = 0
        #: (family name, label values) -> Series, so the hot scrape
        #: loop never rebuilds series-id strings.
        self._bound: Dict[Tuple[str, Tuple[str, ...]], Series] = {}
        #: Memoised prefix -> matching series; cleared when a series
        #: appears, so SLO evaluation stops re-scanning every tick.
        self._match_cache: Dict[str, List[Series]] = {}
        #: Read-only callables sampled as gauges each tick.
        self._probes: List[Tuple[str, Callable[[], float]]] = []
        #: Post-scrape hooks (SLO evaluation), called with the tick time.
        self.on_tick: List[Callable[[float], None]] = []
        self.sim = None
        self._handle = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, sim) -> "MetricsScraper":
        """Start scraping ``sim``'s clock; idempotent per simulator."""
        if self._handle is not None:
            raise RuntimeError("scraper is already attached")
        self.sim = sim
        self._handle = sim.observe_every(self.interval, self.scrape_now)
        return self

    def detach(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register a pure-read callable sampled as a gauge each tick."""
        self._probes.append((name, fn))

    def annotate(self, kind: str, label: str,
                 time: Optional[float] = None,
                 trace_id: Optional[int] = None) -> Annotation:
        """Mark the shared timeline (defaults to the current sim time)."""
        if time is None:
            time = self.sim.now if self.sim is not None else 0.0
        ann = Annotation(time, kind, label, trace_id=trace_id)
        self.annotations.append(ann)
        return ann

    # ------------------------------------------------------------------
    # Scraping
    # ------------------------------------------------------------------
    def _series(self, sid: str, kind: str) -> Series:
        series = self.series.get(sid)
        if series is None:
            series = Series(sid, kind, capacity=self.capacity,
                            rollup_factor=self.rollup_factor)
            self.series[sid] = series
            self._match_cache.clear()
        return series

    def _bind(self, name: str, family, key: Tuple[str, ...]) -> Series:
        bound = self._bound.get((name, key))
        if bound is None:
            sid = series_id(name, family.labelnames, key)
            bound = self._series(sid, family.kind)
            self._bound[(name, key)] = bound
        return bound

    def scrape_now(self) -> None:
        """Take one sample of every family child and probe.

        Runs inside an observer tick (or may be called directly at run
        end for a final aligned sample).  Strictly read-only.
        """
        t = self.sim.now if self.sim is not None else 0.0
        registry = self.telemetry.metrics
        for name, family in registry._families.items():
            if family.kind == "histogram":
                for key, child in family.children.items():
                    self._bind(name, family, key).sample(
                        t, float(child.count), cum_sketch=child.sketch
                    )
            else:
                for key, child in family.children.items():
                    self._bind(name, family, key).sample(
                        t, float(child.value))
        for sid, fn in self._probes:
            self._series(sid, "gauge").sample(t, float(fn()))
        self.scrapes += 1
        for hook in self.on_tick:
            hook(t)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, sid: str) -> Optional[Series]:
        return self.series.get(sid)

    def match(self, prefix: str) -> List[Series]:
        """Every series whose name starts with ``prefix``, sorted."""
        cached = self._match_cache.get(prefix)
        if cached is None:
            cached = [self.series[sid] for sid in sorted(self.series)
                      if sid.startswith(prefix)]
            self._match_cache[prefix] = cached
        return cached

    def windows(self) -> List[FaultWindow]:
        return fault_windows(self.annotations)

    def __repr__(self) -> str:
        return (f"<MetricsScraper {len(self.series)} series, "
                f"{self.scrapes} scrapes @ {self.interval}s>")
