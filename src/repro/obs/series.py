"""Per-series ring buffers with rollup storage and windowed queries.

One :class:`Series` holds the sampled history of a single metric child
(one ``family{labels}`` pair) as ``(sim_time, value)`` points in a
bounded ring.  When the raw ring wraps, evicted points are folded into
*rollups* — coarse ``(t_start, t_end, count, sum, min, max)`` buckets,
each covering ``rollup_factor`` raw samples — so long runs keep a full-
horizon (if lower-resolution) history in bounded memory instead of
silently forgetting the past.

Counters are stored cumulatively exactly as scraped; :meth:`rate` and
:meth:`delta` difference them on demand, which is robust to missed
windows.  Histogram series carry per-scrape *delta sketches*
(:class:`~repro.telemetry.sketch.QuantileSketch`) alongside the count
points, so :meth:`quantile` can answer "p95 within this window" by
merging only the window's sketches.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.telemetry.sketch import QuantileSketch

__all__ = ["Point", "Rollup", "Series"]

#: A raw sample: (sim_time, value).
Point = Tuple[float, float]


class Rollup:
    """Aggregate of ``count`` raw samples evicted from the raw ring."""

    __slots__ = ("t_start", "t_end", "count", "sum", "min", "max")

    def __init__(self, t_start: float, t_end: float, count: int,
                 total: float, vmin: float, vmax: float) -> None:
        self.t_start = t_start
        self.t_end = t_end
        self.count = count
        self.sum = total
        self.min = vmin
        self.max = vmax

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_list(self) -> list:
        return [self.t_start, self.t_end, self.count, self.sum,
                self.min, self.max]

    def __repr__(self) -> str:
        return (f"<Rollup [{self.t_start:.3f},{self.t_end:.3f}] "
                f"n={self.count} mean={self.mean:.6g}>")


class Series:
    """Bounded sample history for one metric child."""

    __slots__ = ("name", "kind", "capacity", "rollup_factor", "_points",
                 "_rollups", "_pending", "_sketches", "_last_cum_sketch",
                 "samples_taken")

    def __init__(self, name: str, kind: str, capacity: int = 4096,
                 rollup_factor: int = 8) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2: {capacity}")
        if rollup_factor < 1:
            raise ValueError(f"rollup_factor must be >= 1: {rollup_factor}")
        self.name = name
        self.kind = kind  # counter | gauge | histogram
        self.capacity = capacity
        self.rollup_factor = rollup_factor
        self._points: Deque[Point] = deque()
        self._rollups: Deque[Rollup] = deque(maxlen=capacity)
        self._pending: List[Point] = []  # evicted, awaiting rollup fold
        #: Per-scrape delta sketches (histogram series only), aligned
        #: with ``_points``; ``None`` for scrapes with no observations.
        self._sketches: Optional[Deque[Optional[QuantileSketch]]] = (
            deque() if kind == "histogram" else None
        )
        self._last_cum_sketch: Optional[QuantileSketch] = None
        self.samples_taken = 0

    # ------------------------------------------------------------------
    # Ingest (called by the scraper on observer ticks)
    # ------------------------------------------------------------------
    def sample(self, t: float, value: float,
               cum_sketch: Optional[QuantileSketch] = None) -> None:
        """Record one scrape.  ``cum_sketch`` is the *cumulative* sketch
        of a histogram child; the series stores only its delta."""
        self._points.append((t, value))
        self.samples_taken += 1
        if self._sketches is not None:
            delta = None
            if cum_sketch is not None and cum_sketch.count:
                if self._last_cum_sketch is None:
                    delta = cum_sketch.copy()
                    self._last_cum_sketch = cum_sketch.copy()
                elif cum_sketch.count > self._last_cum_sketch.count:
                    delta = cum_sketch.delta_since(self._last_cum_sketch)
                    self._last_cum_sketch = cum_sketch.copy()
                # Unchanged count: keep the previous cumulative copy —
                # idle histograms cost nothing per scrape.
            self._sketches.append(delta)
        if len(self._points) > self.capacity:
            evicted = self._points.popleft()
            if self._sketches is not None:
                self._sketches.popleft()
            self._fold(evicted)

    def _fold(self, point: Point) -> None:
        self._pending.append(point)
        if len(self._pending) < self.rollup_factor:
            return
        batch, self._pending = self._pending, []
        values = [v for _, v in batch]
        self._rollups.append(Rollup(
            batch[0][0], batch[-1][0], len(batch), sum(values),
            min(values), max(values),
        ))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def points(self, t0: Optional[float] = None,
               t1: Optional[float] = None) -> List[Point]:
        """Raw samples within [t0, t1], in time order."""
        if t0 is None:
            return [
                (t, v) for t, v in self._points
                if t1 is None or t <= t1
            ]
        # Points are time-ordered: walk in from the right and stop at
        # t0, so trailing-window queries cost O(window) not O(history).
        out: List[Point] = []
        for t, v in reversed(self._points):
            if t < t0:
                break
            if t1 is None or t <= t1:
                out.append((t, v))
        out.reverse()
        return out

    def values(self, t0: Optional[float] = None,
               t1: Optional[float] = None) -> List[float]:
        return [v for _, v in self.points(t0, t1)]

    @property
    def last(self) -> Optional[Point]:
        return self._points[-1] if self._points else None

    @property
    def first(self) -> Optional[Point]:
        return self._points[0] if self._points else None

    def __len__(self) -> int:
        return len(self._points)

    def at(self, t: float) -> Optional[float]:
        """The most recent sampled value at or before ``t``."""
        for pt, pv in reversed(self._points):
            if pt <= t:
                return pv
        return None

    def delta(self, t0: float, t1: float) -> float:
        """value(t1) - value(t0) over the raw ring (counter series)."""
        a = self.at(t0)
        b = self.at(t1)
        if a is None:
            first = self.first
            a = first[1] if first is not None and first[0] <= t1 else 0.0
        if b is None:
            return 0.0
        return b - a

    def rate(self, window: float, at: Optional[float] = None) -> float:
        """Average per-second increase over the trailing ``window``."""
        end = at if at is not None else (
            self._points[-1][0] if self._points else 0.0
        )
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        return self.delta(end - window, end) / window

    def agg(self, fn: str, t0: Optional[float] = None,
            t1: Optional[float] = None) -> Optional[float]:
        """min/max/mean/sum/last over raw samples in the window."""
        values = self.values(t0, t1)
        if not values:
            return None
        if fn == "min":
            return min(values)
        if fn == "max":
            return max(values)
        if fn == "mean":
            return sum(values) / len(values)
        if fn == "sum":
            return sum(values)
        if fn == "last":
            return values[-1]
        raise ValueError(f"unknown aggregation {fn!r}")

    def quantile(self, q: float, t0: Optional[float] = None,
                 t1: Optional[float] = None) -> Optional[float]:
        """Sketch-backed quantile of the observations made in [t0, t1].

        Histogram series only: merges the per-scrape delta sketches
        whose scrape time falls in the window.
        """
        if self._sketches is None:
            raise ValueError(
                f"series {self.name!r} is a {self.kind}; quantiles "
                f"need a histogram series"
            )
        merged: Optional[QuantileSketch] = None
        for (t, _), sketch in zip(self._points, self._sketches):
            if sketch is None:
                continue
            if (t0 is not None and t < t0) or (t1 is not None and t > t1):
                continue
            if merged is None:
                merged = sketch.copy()
            else:
                merged.merge(sketch)
        return merged.quantile(q) if merged is not None else None

    def rollups(self) -> List[Rollup]:
        return list(self._rollups)

    # ------------------------------------------------------------------
    # Serialisation (run artifacts)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        doc = {
            "kind": self.kind,
            "samples": self.samples_taken,
            "points": [[t, v] for t, v in self._points],
            "rollups": [r.to_list() for r in self._rollups],
        }
        if self._sketches is not None:
            doc["sketch"] = (
                self._last_cum_sketch.to_dict()
                if self._last_cum_sketch is not None else None
            )
        return doc

    @classmethod
    def from_dict(cls, name: str, data: dict,
                  capacity: int = 4096) -> "Series":
        out = cls(name, data["kind"], capacity=capacity)
        for t, v in data["points"]:
            out._points.append((t, v))
        out.samples_taken = data.get("samples", len(out._points))
        for entry in data.get("rollups", ()):
            out._rollups.append(Rollup(*entry))
        sketch = data.get("sketch")
        if out._sketches is not None and sketch is not None:
            cum = QuantileSketch.from_dict(sketch)
            out._last_cum_sketch = cum
            # A loaded series keeps the whole-run sketch as one window.
            out._sketches.extend(
                [None] * (len(out._points) - 1) + [cum.copy()]
                if out._points else []
            )
        return out

    def __repr__(self) -> str:
        return (f"<Series {self.name} {self.kind} {len(self._points)} "
                f"pts, {len(self._rollups)} rollups>")
