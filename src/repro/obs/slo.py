"""Declarative SLOs evaluated online against the time-series plane.

An :class:`SLO` turns one signal — a windowed aggregate over scraped
series (:class:`SeriesSLO`) or the age of un-answered fault annotations
(:class:`ConvergenceSLO`) — into a per-tick good/bad verdict.  The
:class:`SLOEvaluator` runs every SLO on each scrape tick (it registers
as a scraper ``on_tick`` hook, so it executes inside the kernel's
read-only observer window and can never perturb the run) and drives a
small burn-rate alert state machine per SLO:

* with ``budget == 0`` an alert fires once the SLO has been bad for
  ``for_s`` consecutive seconds (Prometheus ``for:`` semantics);
* with ``budget > 0`` the evaluator tracks the bad-tick fraction over a
  trailing ``burn_window`` and fires when the *burn rate* — observed bad
  fraction divided by the budgeted fraction — sustains >= 1 for
  ``for_s`` seconds, which is the classic error-budget burn alert.

Alerts resolve after ``resolve_s`` clean seconds.  Every transition is
timestamped in sim time, so the fire/resolve timeline lines up exactly
with fault windows on the dashboard.  :meth:`SLOEvaluator.finish`
produces a :class:`HealthReport`, a plain-data summary that serialises
into run artifacts and diffs across runs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

__all__ = [
    "Alert",
    "ConvergenceSLO",
    "HealthReport",
    "SLO",
    "SLOEvaluator",
    "SeriesSLO",
    "default_slos",
    "handover_slo",
    "slo_from_spec",
]

_OPS = ("<=", ">=")


class Alert:
    """One firing interval of one SLO (open-ended until resolved)."""

    __slots__ = ("slo", "fired_at", "resolved_at", "worst")

    def __init__(self, slo: str, fired_at: float,
                 resolved_at: Optional[float] = None,
                 worst: Optional[float] = None) -> None:
        self.slo = slo
        self.fired_at = fired_at
        self.resolved_at = resolved_at
        self.worst = worst

    @property
    def duration(self) -> Optional[float]:
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.fired_at

    def to_dict(self) -> dict:
        return {"slo": self.slo, "fired_at": self.fired_at,
                "resolved_at": self.resolved_at, "worst": self.worst}

    @classmethod
    def from_dict(cls, data: dict) -> "Alert":
        return cls(data["slo"], data["fired_at"], data.get("resolved_at"),
                   data.get("worst"))

    def __repr__(self) -> str:
        end = (f"{self.resolved_at:.3f}"
               if self.resolved_at is not None else "firing")
        return f"<Alert {self.slo} [{self.fired_at:.3f},{end}]>"


class SLO:
    """Base objective: a measured signal compared against a threshold.

    Subclasses implement :meth:`measure`; everything else — breach
    detection, budget accounting, alert timing — is shared.
    """

    def __init__(self, name: str, threshold: float, op: str = "<=",
                 for_s: float = 0.0, resolve_s: Optional[float] = None,
                 budget: float = 0.0, burn_window: float = 1.0,
                 severity: str = "page",
                 description: str = "") -> None:
        if op not in _OPS:
            raise ValueError(f"op must be one of {_OPS}: {op!r}")
        if not 0.0 <= budget < 1.0:
            raise ValueError(f"budget must be in [0, 1): {budget}")
        self.name = name
        self.threshold = threshold
        self.op = op
        self.for_s = for_s
        self.resolve_s = resolve_s if resolve_s is not None else for_s
        self.budget = budget
        self.burn_window = burn_window
        self.severity = severity
        self.description = description

    # -- signal --------------------------------------------------------
    def measure(self, scraper, t: float) -> Optional[float]:
        """The signal value at tick ``t``; None when not yet measurable."""
        raise NotImplementedError

    def bad(self, value: float) -> bool:
        return value > self.threshold if self.op == "<=" \
            else value < self.threshold

    def spec(self) -> dict:
        return {
            "name": self.name, "kind": type(self).__name__,
            "threshold": self.threshold, "op": self.op,
            "for_s": self.for_s, "budget": self.budget,
            "severity": self.severity, "description": self.description,
        }

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name}: "
                f"signal {self.op} {self.threshold}>")


class SeriesSLO(SLO):
    """An SLO over scraped series.

    ``series`` selects by exact id or, with ``prefix=True``, every
    series whose id starts with it (the per-label children of a
    family).  ``signal`` picks the windowed aggregate:

    * ``last``/``min``/``max``/``mean``/``sum`` — over raw samples in
      the trailing ``window`` (or the latest sample when ``window`` is
      None and signal is ``last``);
    * ``rate`` — per-second counter increase over ``window``;
    * ``delta`` — counter increase over ``window``;
    * ``quantile`` — sketch-backed ``q`` over observations in
      ``window`` (histogram series only).

    With several matching series, per-series values fold with
    ``combine`` (``max``, the worst-case default, or ``sum``/``min``).
    """

    _COMBINE = {"max": max, "min": min, "sum": sum}

    def __init__(self, name: str, series: str, threshold: float,
                 signal: str = "last", window: Optional[float] = None,
                 q: float = 0.95, prefix: bool = False,
                 combine: str = "max", **kwargs) -> None:
        super().__init__(name, threshold, **kwargs)
        if combine not in self._COMBINE:
            raise ValueError(f"combine must be one of "
                             f"{sorted(self._COMBINE)}: {combine!r}")
        if signal in ("rate", "delta", "quantile") and window is None:
            raise ValueError(f"signal {signal!r} needs a window")
        self.series = series
        self.signal = signal
        self.window = window
        self.q = q
        self.prefix = prefix
        self.combine = combine

    def _matching(self, scraper) -> list:
        if self.prefix:
            return scraper.match(self.series)
        found = scraper.get(self.series)
        return [found] if found is not None else []

    def measure(self, scraper, t: float) -> Optional[float]:
        values: List[float] = []
        t0 = t - self.window if self.window is not None else None
        for series in self._matching(scraper):
            if self.signal == "rate":
                value: Optional[float] = series.rate(self.window, at=t)
            elif self.signal == "delta":
                value = series.delta(t - self.window, t)
            elif self.signal == "quantile":
                value = series.quantile(self.q, t0, t)
            elif self.signal == "last":
                point = series.last
                value = point[1] if point is not None and (
                    t0 is None or point[0] >= t0) else None
            else:
                value = series.agg(self.signal, t0, t)
            if value is not None:
                values.append(value)
        if not values:
            return None
        return self._COMBINE[self.combine](values)

    def spec(self) -> dict:
        doc = super().spec()
        doc.update({"series": self.series, "signal": self.signal,
                    "window": self.window, "prefix": self.prefix})
        if self.signal == "quantile":
            doc["q"] = self.q
        return doc


class ConvergenceSLO(SLO):
    """Time from a fault annotation to its convergence annotation.

    Watches the scraper's shared timeline: every annotation whose kind
    is in ``open_kinds`` (e.g. ``channel_down``) opens a convergence
    obligation for its label; an annotation in ``close_kinds`` with the
    same label (e.g. ``resync_done`` for the same switch) discharges it
    and records the elapsed time as a *measurement*.  The per-tick
    signal is the age of the oldest still-open obligation — so the SLO
    goes bad, and an alert eventually fires, exactly while the platform
    is taking longer than ``threshold`` seconds to re-converge.
    """

    def __init__(self, name: str, threshold: float,
                 open_kinds: Tuple[str, ...] = ("channel_down",
                                                "switch_crash"),
                 close_kinds: Tuple[str, ...] = ("resync_done",),
                 **kwargs) -> None:
        kwargs.setdefault("op", "<=")
        super().__init__(name, threshold, **kwargs)
        self.open_kinds = tuple(open_kinds)
        self.close_kinds = tuple(close_kinds)
        #: Completed (label, opened_at, elapsed) convergence measurements.
        self.measurements: List[Tuple[str, float, float]] = []
        #: Trace-id exemplar per measurement (same index), ``None``
        #: when the opening annotation carried no trace.
        self.exemplars: List[Optional[int]] = []
        self._open: Dict[str, float] = {}
        self._open_trace: Dict[str, Optional[int]] = {}
        self._cursor = 0  # annotations consumed so far

    def measure(self, scraper, t: float) -> Optional[float]:
        annotations = scraper.annotations
        while self._cursor < len(annotations):
            ann = annotations[self._cursor]
            self._cursor += 1
            if ann.kind in self.open_kinds:
                # Re-opening resets the clock; the older fault is
                # superseded by the newer one for the same target.
                self._open[ann.label] = ann.time
                self._open_trace[ann.label] = getattr(ann, "trace_id",
                                                      None)
            elif ann.kind in self.close_kinds:
                opened = self._open.pop(ann.label, None)
                if opened is not None:
                    self.measurements.append(
                        (ann.label, opened, ann.time - opened))
                    self.exemplars.append(
                        self._open_trace.pop(ann.label, None))
        if not self._open:
            return 0.0
        return max(t - opened for opened in self._open.values())

    def spec(self) -> dict:
        doc = super().spec()
        doc.update({"open_kinds": list(self.open_kinds),
                    "close_kinds": list(self.close_kinds)})
        return doc


class _SLOState:
    """Per-SLO alert state machine driven by the evaluator."""

    __slots__ = ("ticks", "bad_ticks", "worst", "bad_since", "good_since",
                 "firing", "alert", "recent")

    def __init__(self) -> None:
        self.ticks = 0
        self.bad_ticks = 0
        self.worst: Optional[float] = None
        self.bad_since: Optional[float] = None
        self.good_since: Optional[float] = None
        self.firing = False
        self.alert: Optional[Alert] = None
        #: Trailing (t, bad) outcomes for burn-rate accounting.
        self.recent: Deque[Tuple[float, bool]] = deque()


class SLOEvaluator:
    """Runs a set of SLOs against one scraper, tick by tick."""

    def __init__(self, slos: List[SLO], scraper) -> None:
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        self.slos = list(slos)
        self.scraper = scraper
        self.alerts: List[Alert] = []
        #: Called with each :class:`Alert` at the moment it fires (not
        #: at resolve).  The flight recorder dumps its rings here so a
        #: red SLO ships its causal history; hooks must be pure reads.
        self.on_alert: List[Callable[[Alert], None]] = []
        self._state: Dict[str, _SLOState] = {
            slo.name: _SLOState() for slo in self.slos
        }

    # -- wiring --------------------------------------------------------
    def attach(self) -> "SLOEvaluator":
        """Register as a scraper tick hook (online evaluation)."""
        self.scraper.on_tick.append(self.on_tick)
        return self

    # -- evaluation ----------------------------------------------------
    def on_tick(self, t: float) -> None:
        for slo in self.slos:
            value = slo.measure(self.scraper, t)
            if value is None:
                continue
            state = self._state[slo.name]
            state.ticks += 1
            bad = slo.bad(value)
            if state.worst is None or (value > state.worst
                                       if slo.op == "<="
                                       else value < state.worst):
                state.worst = value
            if bad:
                state.bad_ticks += 1
            self._update_alerting(slo, state, t, bad, value)

    def _burning(self, slo: SLO, state: _SLOState, t: float,
                 bad: bool) -> bool:
        """Is this tick part of an alert-worthy breach?"""
        if slo.budget <= 0.0:
            return bad
        state.recent.append((t, bad))
        horizon = t - slo.burn_window
        while state.recent and state.recent[0][0] < horizon:
            state.recent.popleft()
        bad_fraction = (sum(1 for _, b in state.recent if b)
                        / len(state.recent))
        return bad_fraction / slo.budget >= 1.0

    def _update_alerting(self, slo: SLO, state: _SLOState, t: float,
                         bad: bool, value: float) -> None:
        if self._burning(slo, state, t, bad):
            state.good_since = None
            if state.bad_since is None:
                state.bad_since = t
            if (not state.firing
                    and t - state.bad_since >= slo.for_s):
                state.firing = True
                state.alert = Alert(slo.name, fired_at=t, worst=value)
                self.alerts.append(state.alert)
                for hook in self.on_alert:
                    hook(state.alert)
            if state.firing and state.alert is not None:
                worse = (value > state.alert.worst if slo.op == "<="
                         else value < state.alert.worst)
                if state.alert.worst is None or worse:
                    state.alert.worst = value
        else:
            state.bad_since = None
            if state.firing:
                if state.good_since is None:
                    state.good_since = t
                if t - state.good_since >= slo.resolve_s:
                    state.firing = False
                    state.alert.resolved_at = t
                    state.alert = None
            else:
                state.good_since = t

    # -- reporting -----------------------------------------------------
    def finish(self, t: Optional[float] = None) -> "HealthReport":
        """Build the run's health report (alerts still firing stay
        open-ended; ``t`` stamps the report's horizon)."""
        if t is None:
            t = self.scraper.sim.now if self.scraper.sim is not None \
                else 0.0
        summaries = []
        for slo in self.slos:
            state = self._state[slo.name]
            doc = slo.spec()
            doc.update({
                "ticks": state.ticks,
                "bad_ticks": state.bad_ticks,
                "bad_fraction": (state.bad_ticks / state.ticks
                                 if state.ticks else 0.0),
                "worst": state.worst,
                "firing": state.firing,
                "alerts": [a.to_dict() for a in self.alerts
                           if a.slo == slo.name],
            })
            if isinstance(slo, ConvergenceSLO):
                exemplars = list(slo.exemplars)
                exemplars += [None] * (len(slo.measurements)
                                       - len(exemplars))
                doc["measurements"] = [
                    {"label": label, "opened_at": opened,
                     "elapsed": elapsed, "trace_id": exemplar}
                    for (label, opened, elapsed), exemplar
                    in zip(slo.measurements, exemplars)
                ]
            summaries.append(doc)
        return HealthReport(t, summaries)

    def __repr__(self) -> str:
        firing = sum(1 for s in self._state.values() if s.firing)
        return (f"<SLOEvaluator {len(self.slos)} SLOs, "
                f"{len(self.alerts)} alerts ({firing} firing)>")


class HealthReport:
    """Plain-data health summary: one entry per SLO, plus the alert
    timeline.  Serialises into run artifacts; diffable across runs."""

    def __init__(self, horizon: float, slos: List[dict]) -> None:
        self.horizon = horizon
        self.slos = slos

    @property
    def ok(self) -> bool:
        """True when no alert ever fired."""
        return not any(slo["alerts"] for slo in self.slos)

    @property
    def alerts(self) -> List[Alert]:
        return [Alert.from_dict(a) for slo in self.slos
                for a in slo["alerts"]]

    def slo(self, name: str) -> Optional[dict]:
        for doc in self.slos:
            if doc["name"] == name:
                return doc
        return None

    def to_dict(self) -> dict:
        return {"horizon": self.horizon, "ok": self.ok,
                "slos": self.slos}

    @classmethod
    def from_dict(cls, data: dict) -> "HealthReport":
        return cls(data["horizon"], data["slos"])

    def __repr__(self) -> str:
        verdict = "ok" if self.ok else "ALERTS"
        return (f"<HealthReport {len(self.slos)} SLOs {verdict} "
                f"@{self.horizon:.3f}s>")


def slo_from_spec(doc: dict) -> SLO:
    """Build an SLO from its declarative (JSON-friendly) form.

    The inverse of :meth:`SLO.spec` for the keys that matter, so
    workload specs can declare extra objectives::

        {"kind": "series", "name": "fct-p99", "series": "workload_...",
         "threshold": 0.5, "signal": "quantile", "q": 0.99,
         "window": 2.0, "prefix": true}

    ``kind`` is ``series`` (default) or ``convergence``; remaining keys
    mirror the constructor arguments of :class:`SeriesSLO` /
    :class:`ConvergenceSLO`.
    """
    doc = dict(doc)
    kind = doc.pop("kind", "series").replace("SLO", "").lower()
    common = {
        key: doc.pop(key)
        for key in ("op", "for_s", "resolve_s", "budget", "burn_window",
                    "severity", "description")
        if key in doc
    }
    if kind == "series":
        return SeriesSLO(
            doc.pop("name"), doc.pop("series"), doc.pop("threshold"),
            signal=doc.pop("signal", "last"),
            window=doc.pop("window", None),
            q=doc.pop("q", 0.95),
            prefix=doc.pop("prefix", False),
            combine=doc.pop("combine", "max"),
            **common,
        )
    if kind == "convergence":
        return ConvergenceSLO(
            doc.pop("name"), doc.pop("threshold"),
            open_kinds=tuple(doc.pop("open_kinds",
                                     ("channel_down", "switch_crash"))),
            close_kinds=tuple(doc.pop("close_kinds", ("resync_done",))),
            **common,
        )
    raise ValueError(f"unknown SLO kind {kind!r}")


def default_slos(interval: float = 0.1) -> List[SLO]:
    """The stock objective set for a ZenSDN platform run.

    Thresholds are tuned for the shipped demo topologies at the default
    1 ms control latency; scenario-specific runs can pass their own
    list.  ``interval`` is the scrape interval, used to size the
    windows that must span at least one tick.
    """
    tick = max(interval, 1e-6)
    return [
        # Transient blackholes (as seen by repro.check's monitor) must
        # clear within a second: bad while the violation counter still
        # climbs within the trailing window.
        SeriesSLO(
            "blackhole-freedom", "check_violations_total", 0.0,
            signal="delta", window=2 * tick, prefix=True, combine="sum",
            for_s=1.0, severity="page",
            description="invariant violations stopped accruing",
        ),
        # Reconnect reconciliation finishes within a second of the
        # fault that caused it.
        ConvergenceSLO(
            "convergence-after-fault", 1.0, for_s=0.0, severity="page",
            description="resync completes <= 1s after channel loss "
                        "or crash",
        ),
        # The control channel never serialises more than 50 ms deep.
        SeriesSLO(
            "channel-backlog", "obs_channel_backlog_seconds", 0.05,
            signal="max", window=2 * tick, prefix=True,
            for_s=2 * tick, severity="ticket",
            description="control-channel serialisation backlog depth",
        ),
        # Punted packets reach their app quickly (controller queue age).
        SeriesSLO(
            "punt-latency-p95",
            "controller_packet_in_delay_seconds", 0.01,
            signal="quantile", q=0.95, window=1.0, prefix=True,
            for_s=2 * tick, budget=0.05, burn_window=1.0,
            severity="ticket",
            description="p95 packet-in queueing delay",
        ),
        # Disconnected-but-remembered switches must re-enter promptly.
        SeriesSLO(
            "stale-switches", "controller_stale_switches", 0.0,
            signal="last", for_s=1.5, severity="page",
            description="switches awaiting reconnect",
        ),
    ]


def handover_slo(threshold: float = 0.5) -> ConvergenceSLO:
    """Mastership handover latency objective for controller clusters.

    Opens on every ``controller_crash`` fault annotation and closes on
    the matching ``handover_done`` annotation (same
    ``controller-<node>`` label, emitted by
    :meth:`~repro.obs.ObsPlane.watch_cluster` when the survivors have
    adopted every switch the crashed node mastered).  The measured
    elapsed time is the fault-to-full-ownership recovery window that
    experiment E15 sweeps against cluster size.
    """
    return ConvergenceSLO(
        "cluster-handover", threshold,
        open_kinds=("controller_crash",),
        close_kinds=("handover_done",),
        for_s=0.0, severity="page",
        description="mastership handover completes after a "
                    "controller crash",
    )
