"""Packet library: address types, protocol headers, and byte-exact codecs.

Importing this package registers every header's demux bindings (EtherType
and IP protocol registries), so ``Packet.decode`` works on any buffer built
from these headers.
"""

from repro.packet.addresses import (
    BROADCAST_MAC,
    IPv4Address,
    IPv4Network,
    MACAddress,
)
from repro.packet.arp import ARP
from repro.packet.base import Header, Packet, Raw
from repro.packet.checksum import internet_checksum, pseudo_header
from repro.packet.ethernet import VLAN, Ethernet, EtherType
from repro.packet.icmp import ICMP, ICMPType
from repro.packet.ipv4 import IPProto, IPv4
from repro.packet.lldp import LLDP, LLDP_MULTICAST
from repro.packet.tcp import TCP, TCPFlags
from repro.packet.udp import UDP

__all__ = [
    "ARP",
    "BROADCAST_MAC",
    "Ethernet",
    "EtherType",
    "Header",
    "ICMP",
    "ICMPType",
    "IPProto",
    "IPv4",
    "IPv4Address",
    "IPv4Network",
    "LLDP",
    "LLDP_MULTICAST",
    "MACAddress",
    "Packet",
    "Raw",
    "TCP",
    "TCPFlags",
    "UDP",
    "VLAN",
    "internet_checksum",
    "pseudo_header",
]
