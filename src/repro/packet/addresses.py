"""Hashable, immutable MAC and IPv4 address types.

Addresses are the identities that flow through every layer of the platform:
flow-table matches hash them, the host tracker keys on them, and the codecs
serialise them.  Both types are small value objects backed by an ``int`` so
that comparison, hashing, and masking are cheap.
"""

from __future__ import annotations

import re
from typing import Iterator, Union

from repro.errors import AddressError

__all__ = ["MACAddress", "IPv4Address", "IPv4Network", "BROADCAST_MAC"]

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")


class MACAddress:
    """A 48-bit Ethernet address.

    Accepts colon/dash separated strings, raw 6-byte buffers, integers, or
    another :class:`MACAddress`.

    >>> MACAddress("00:11:22:33:44:55").value == 0x001122334455
    True
    """

    __slots__ = ("value",)

    def __init__(self, address: Union[str, bytes, int, "MACAddress"]) -> None:
        if isinstance(address, MACAddress):
            self.value = address.value
        elif isinstance(address, int):
            if not 0 <= address < (1 << 48):
                raise AddressError(f"MAC integer out of range: {address:#x}")
            self.value = address
        elif isinstance(address, (bytes, bytearray)):
            if len(address) != 6:
                raise AddressError(
                    f"MAC bytes must be length 6, got {len(address)}"
                )
            self.value = int.from_bytes(address, "big")
        elif isinstance(address, str):
            if not _MAC_RE.match(address):
                raise AddressError(f"malformed MAC literal: {address!r}")
            self.value = int(address.replace("-", ":").replace(":", ""), 16)
        else:
            raise AddressError(f"cannot build MAC from {type(address).__name__}")

    @classmethod
    def from_int(cls, value: int) -> "MACAddress":
        return cls(value)

    @classmethod
    def local(cls, index: int) -> "MACAddress":
        """A locally-administered unicast MAC derived from an index.

        Used by the emulator to mint distinct host/switch port addresses:
        the locally-administered bit (0x02) is set so generated addresses
        can never collide with vendor space.
        """
        if not 0 <= index < (1 << 40):
            raise AddressError(f"local MAC index out of range: {index}")
        return cls((0x02 << 40) | index)

    def packed(self) -> bytes:
        """The 6-byte big-endian wire representation."""
        return self.value.to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        """True when the group bit (LSB of the first octet) is set."""
        return bool((self.value >> 40) & 0x01)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MACAddress):
            return self.value == other.value
        if isinstance(other, (str, bytes, int)):
            try:
                return self.value == MACAddress(other).value
            except AddressError:
                return False
        return NotImplemented

    def __lt__(self, other: "MACAddress") -> bool:
        return self.value < other.value

    def __hash__(self) -> int:
        return hash(("mac", self.value))

    def __str__(self) -> str:
        raw = self.packed()
        return ":".join(f"{b:02x}" for b in raw)

    def __repr__(self) -> str:
        return f"MACAddress('{self}')"


BROADCAST_MAC = MACAddress("ff:ff:ff:ff:ff:ff")


class IPv4Address:
    """A 32-bit IPv4 address."""

    __slots__ = ("value",)

    def __init__(self, address: Union[str, bytes, int, "IPv4Address"]) -> None:
        if isinstance(address, IPv4Address):
            self.value = address.value
        elif isinstance(address, int):
            if not 0 <= address < (1 << 32):
                raise AddressError(f"IPv4 integer out of range: {address:#x}")
            self.value = address
        elif isinstance(address, (bytes, bytearray)):
            if len(address) != 4:
                raise AddressError(
                    f"IPv4 bytes must be length 4, got {len(address)}"
                )
            self.value = int.from_bytes(address, "big")
        elif isinstance(address, str):
            parts = address.split(".")
            if len(parts) != 4:
                raise AddressError(f"malformed IPv4 literal: {address!r}")
            value = 0
            for part in parts:
                if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
                    raise AddressError(f"malformed IPv4 literal: {address!r}")
                octet = int(part)
                if octet > 255:
                    raise AddressError(f"IPv4 octet out of range: {address!r}")
                value = (value << 8) | octet
            self.value = value
        else:
            raise AddressError(
                f"cannot build IPv4 from {type(address).__name__}"
            )

    def packed(self) -> bytes:
        """The 4-byte big-endian wire representation."""
        return self.value.to_bytes(4, "big")

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << 32) - 1

    @property
    def is_multicast(self) -> bool:
        """True for 224.0.0.0/4."""
        return (self.value >> 28) == 0xE

    def in_network(self, network: "IPv4Network") -> bool:
        return network.contains(self)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self.value == other.value
        if isinstance(other, (str, bytes, int)):
            try:
                return self.value == IPv4Address(other).value
            except AddressError:
                return False
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < other.value

    def __hash__(self) -> int:
        return hash(("ip4", self.value))

    def __str__(self) -> str:
        v = self.value
        return f"{v >> 24 & 0xff}.{v >> 16 & 0xff}.{v >> 8 & 0xff}.{v & 0xff}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"


class IPv4Network:
    """An IPv4 prefix such as ``10.0.0.0/8``.

    The host bits of the supplied address are zeroed, mirroring how routers
    store prefixes.
    """

    __slots__ = ("address", "prefix_len")

    def __init__(self, spec: Union[str, "IPv4Network"],
                 prefix_len: int = None) -> None:
        if isinstance(spec, IPv4Network):
            self.address, self.prefix_len = spec.address, spec.prefix_len
            return
        if isinstance(spec, str) and "/" in spec:
            addr_part, _, len_part = spec.partition("/")
            if not len_part.isdigit():
                raise AddressError(f"malformed prefix length in {spec!r}")
            address, prefix_len = IPv4Address(addr_part), int(len_part)
        else:
            if prefix_len is None:
                raise AddressError(
                    f"prefix length required for network {spec!r}"
                )
            address = IPv4Address(spec)
        if not 0 <= prefix_len <= 32:
            raise AddressError(f"prefix length out of range: {prefix_len}")
        self.prefix_len = prefix_len
        self.address = IPv4Address(address.value & self.netmask_int())

    def netmask_int(self) -> int:
        if self.prefix_len == 0:
            return 0
        return ((1 << self.prefix_len) - 1) << (32 - self.prefix_len)

    @property
    def netmask(self) -> IPv4Address:
        return IPv4Address(self.netmask_int())

    @property
    def broadcast(self) -> IPv4Address:
        return IPv4Address(self.address.value | (~self.netmask_int() & 0xFFFFFFFF))

    @property
    def num_hosts(self) -> int:
        """Number of assignable host addresses (network/broadcast excluded)."""
        total = 1 << (32 - self.prefix_len)
        return max(total - 2, 0) if self.prefix_len < 31 else total

    def contains(self, address: Union[str, IPv4Address]) -> bool:
        addr = IPv4Address(address)
        return (addr.value & self.netmask_int()) == self.address.value

    def host(self, index: int) -> IPv4Address:
        """The ``index``-th assignable host address (1-based)."""
        if self.prefix_len >= 31:
            raise AddressError("prefix too small to enumerate hosts")
        if not 1 <= index <= self.num_hosts:
            raise AddressError(
                f"host index {index} out of range for /{self.prefix_len}"
            )
        return IPv4Address(self.address.value + index)

    def hosts(self) -> Iterator[IPv4Address]:
        for i in range(1, self.num_hosts + 1):
            yield self.host(i)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Network):
            return (self.address, self.prefix_len) == (
                other.address,
                other.prefix_len,
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("net4", self.address.value, self.prefix_len))

    def __str__(self) -> str:
        return f"{self.address}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"IPv4Network('{self}')"
