"""ARP (RFC 826) for Ethernet/IPv4."""

from __future__ import annotations

import struct
from typing import Tuple, Union

from repro.errors import DecodeError
from repro.packet.addresses import IPv4Address, MACAddress
from repro.packet.base import Header
from repro.packet.ethernet import EtherType, register_ethertype

__all__ = ["ARP"]


class ARP(Header):
    """An ARP request or reply for IPv4-over-Ethernet.

    ``opcode`` is 1 for a request, 2 for a reply; the :attr:`REQUEST` and
    :attr:`REPLY` constants are provided for readability.
    """

    name = "arp"
    __slots__ = ("opcode", "sender_mac", "sender_ip", "target_mac",
                 "target_ip")
    REQUEST = 1
    REPLY = 2
    _FMT = struct.Struct("!HHBBH6s4s6s4s")

    def __init__(
        self,
        opcode: int = REQUEST,
        sender_mac: Union[str, MACAddress] = "00:00:00:00:00:00",
        sender_ip: Union[str, IPv4Address] = "0.0.0.0",
        target_mac: Union[str, MACAddress] = "00:00:00:00:00:00",
        target_ip: Union[str, IPv4Address] = "0.0.0.0",
    ) -> None:
        self.opcode = opcode
        self.sender_mac = MACAddress(sender_mac)
        self.sender_ip = IPv4Address(sender_ip)
        self.target_mac = MACAddress(target_mac)
        self.target_ip = IPv4Address(target_ip)

    @property
    def is_request(self) -> bool:
        return self.opcode == self.REQUEST

    @property
    def is_reply(self) -> bool:
        return self.opcode == self.REPLY

    def encode(self, following: bytes) -> bytes:
        return (
            self._FMT.pack(
                1,  # hardware type: Ethernet
                EtherType.IPV4,
                6,  # hardware address length
                4,  # protocol address length
                self.opcode,
                self.sender_mac.packed(),
                self.sender_ip.packed(),
                self.target_mac.packed(),
                self.target_ip.packed(),
            )
            + following
        )

    @classmethod
    def decode(cls, data: bytes) -> Tuple["ARP", int]:
        if len(data) < cls._FMT.size:
            raise DecodeError(
                f"ARP needs {cls._FMT.size} bytes, got {len(data)}"
            )
        (htype, ptype, hlen, plen, opcode,
         smac, sip, tmac, tip) = cls._FMT.unpack_from(data)
        if (htype, ptype, hlen, plen) != (1, EtherType.IPV4, 6, 4):
            raise DecodeError(
                f"unsupported ARP variant htype={htype} ptype={ptype:#x}"
            )
        return (
            cls(opcode, MACAddress(smac), IPv4Address(sip),
                MACAddress(tmac), IPv4Address(tip)),
            cls._FMT.size,
        )


register_ethertype(EtherType.ARP, ARP)
