"""Header/packet framework: typed headers stacked into packets.

A :class:`Packet` is an ordered stack of :class:`Header` objects plus an
opaque payload.  Headers compose with the ``/`` operator in the style of
scapy::

    pkt = (Ethernet(src=h1.mac, dst=h2.mac)
           / IPv4(src=h1.ip, dst=h2.ip)
           / UDP(src_port=1234, dst_port=53)
           / b"payload")

On :meth:`Packet.encode` each header gets the chance to fix up linkage
fields (ethertype, IP protocol number, lengths, checksums) from its
successor, so callers rarely need to set them by hand.  :meth:`Packet.decode`
reverses the process byte-exactly.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Type, TypeVar, Union

from repro.errors import DecodeError, PacketError

__all__ = ["Header", "Packet", "Raw"]

H = TypeVar("H", bound="Header")


class Header:
    """Base class for every protocol header.

    Subclasses implement:

    * :meth:`encode` — serialise to bytes, given the already-encoded bytes
      of everything that follows (for length/checksum computation).
    * :meth:`decode` — parse from a buffer, returning the header and the
      number of bytes consumed.
    * :meth:`payload_class` — which header type follows, according to this
      header's demux field (ethertype, protocol number, ...); ``None`` means
      the rest of the buffer is raw payload.
    * :meth:`link_to` — fix up this header's demux field to point at a
      successor header before encoding.
    """

    name = "header"

    # No per-instance __dict__: headers are the highest-volume objects
    # on the hot path (every frame decode allocates a stack of them),
    # and slots cut both allocation time and per-instance memory.
    # Subclasses outside repro.packet may omit __slots__ and regain a
    # __dict__; fields() handles both layouts.
    __slots__ = ()

    def encode(self, following: bytes) -> bytes:
        raise NotImplementedError

    @classmethod
    def decode(cls: Type[H], data: bytes) -> Tuple[H, int]:
        raise NotImplementedError

    def payload_class(self) -> Optional[Type["Header"]]:
        return None

    def link_to(self, successor: Optional["Header"]) -> None:
        """Adjust demux fields for the header that follows; default no-op."""

    def __truediv__(self, other: Union["Header", bytes, "Packet"]) -> "Packet":
        return Packet([self]) / other

    def fields(self) -> dict:
        """A name→value mapping of the public fields, for repr/tests."""
        try:
            source = vars(self).items()
        except TypeError:  # slotted subclass: walk declared slots
            source = (
                (name, getattr(self, name))
                for klass in reversed(type(self).__mro__)
                for name in getattr(klass, "__slots__", ())
                if hasattr(self, name)
            )
        return {k: v for k, v in source if not k.startswith("_")}

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.fields() == other.fields()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields().items())
        return f"{type(self).__name__}({inner})"


class Raw(Header):
    """An opaque byte payload presented as a header for uniform stacking."""

    name = "raw"
    __slots__ = ("data",)

    def __init__(self, data: bytes = b"") -> None:
        self.data = bytes(data)

    def encode(self, following: bytes) -> bytes:
        return self.data + following

    @classmethod
    def decode(cls, data: bytes) -> Tuple["Raw", int]:
        return cls(data), len(data)

    def __len__(self) -> int:
        return len(self.data)


class Packet:
    """An ordered stack of headers plus trailing payload bytes."""

    __slots__ = ("headers", "trace_id")

    def __init__(self, headers: Optional[Sequence[Header]] = None) -> None:
        self.headers: List[Header] = list(headers or [])
        #: Telemetry trace id (``repro.telemetry``); ``None`` when the
        #: frame is untraced.  Out-of-band metadata: never serialised,
        #: never part of equality, but preserved across :meth:`copy` so
        #: flooded duplicates stay in their originator's trace.
        self.trace_id: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def __truediv__(self, other: Union[Header, bytes, "Packet"]) -> "Packet":
        if isinstance(other, Packet):
            return Packet(self.headers + other.headers)
        if isinstance(other, Header):
            return Packet(self.headers + [other])
        if isinstance(other, (bytes, bytearray)):
            return Packet(self.headers + [Raw(bytes(other))])
        raise PacketError(f"cannot stack {type(other).__name__} onto a packet")

    def copy(self) -> "Packet":
        """A deep-enough copy: headers are re-decoded from the wire bytes.

        Re-encoding guarantees the copy shares no mutable state with the
        original, which matters when a switch floods one packet out many
        ports and an app rewrites one of the copies.
        """
        clone = Packet.decode(self.encode())
        clone.trace_id = self.trace_id
        return clone

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, header_type: Type[H]) -> Optional[H]:
        """The first header of the given type, or ``None``."""
        for header in self.headers:
            if isinstance(header, header_type):
                return header
        return None

    def __contains__(self, header_type: type) -> bool:
        return self.get(header_type) is not None

    def __getitem__(self, header_type: Type[H]) -> H:
        header = self.get(header_type)
        if header is None:
            raise KeyError(header_type.__name__)
        return header

    def __iter__(self) -> Iterator[Header]:
        return iter(self.headers)

    @property
    def payload(self) -> bytes:
        """The bytes of the trailing :class:`Raw` header, if any."""
        raw = self.get(Raw)
        return raw.data if raw is not None else b""

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialise the packet, fixing up linkage fields along the way."""
        # Let each header learn about its successor (ethertype, proto...).
        for i, header in enumerate(self.headers):
            successor = self.headers[i + 1] if i + 1 < len(self.headers) else None
            header.link_to(successor)
        # Encode back-to-front so lengths and checksums see their payload.
        encoded = b""
        for header in reversed(self.headers):
            encoded = header.encode(encoded)
        return encoded

    def __len__(self) -> int:
        return len(self.encode())

    @classmethod
    def decode(cls, data: bytes, first: Optional[Type[Header]] = None) -> "Packet":
        """Parse ``data``, starting from ``first`` (default: Ethernet).

        Decoding follows each header's demux field until a header reports
        no known successor; any remaining bytes become a :class:`Raw`
        trailer.
        """
        if first is None:
            # Imported lazily to avoid a circular import at module load.
            from repro.packet.ethernet import Ethernet

            first = Ethernet
        headers: List[Header] = []
        cursor: Optional[Type[Header]] = first
        remaining = bytes(data)
        while cursor is not None and remaining:
            try:
                header, consumed = cursor.decode(remaining)
            except DecodeError:
                raise
            except Exception as exc:  # struct errors, index errors, ...
                raise DecodeError(
                    f"failed to decode {cursor.__name__}: {exc}"
                ) from exc
            headers.append(header)
            remaining = remaining[consumed:]
            cursor = header.payload_class()
        if remaining:
            headers.append(Raw(remaining))
        return cls(headers)

    def summary(self) -> str:
        """A compact one-line description, e.g. ``Ethernet/IPv4/UDP(64B)``."""
        names = "/".join(type(h).__name__ for h in self.headers)
        return f"{names}({len(self)}B)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return self.encode() == other.encode()

    def __repr__(self) -> str:
        return f"<Packet {self.summary()}>"
