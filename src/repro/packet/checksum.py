"""RFC 1071 Internet checksum, used by IPv4, ICMP, TCP, and UDP."""

from __future__ import annotations

__all__ = ["internet_checksum", "pseudo_header"]


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    Odd-length buffers are padded with a trailing zero byte, per RFC 1071.
    The returned value is already complemented and ready to be written into
    a header's checksum field.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    # Fold carries back into the low 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def pseudo_header(src: bytes, dst: bytes, proto: int, length: int) -> bytes:
    """Build the IPv4 pseudo-header prepended for TCP/UDP checksums."""
    return src + dst + bytes([0, proto]) + length.to_bytes(2, "big")
