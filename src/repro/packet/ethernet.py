"""Ethernet II and IEEE 802.1Q VLAN headers."""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple, Type, Union

from repro.errors import DecodeError
from repro.packet.addresses import BROADCAST_MAC, MACAddress
from repro.packet.base import Header

__all__ = ["Ethernet", "VLAN", "EtherType", "register_ethertype"]


class EtherType:
    """Well-known EtherType values used across the platform."""

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100
    LLDP = 0x88CC


_ETHERTYPE_REGISTRY: Dict[int, Type[Header]] = {}


def register_ethertype(ethertype: int, header_cls: Type[Header]) -> None:
    """Associate an EtherType with the header class that decodes it."""
    _ETHERTYPE_REGISTRY[ethertype] = header_cls


def lookup_ethertype(ethertype: int) -> Optional[Type[Header]]:
    return _ETHERTYPE_REGISTRY.get(ethertype)


def _ethertype_of(header: Header) -> Optional[int]:
    for etype, cls in _ETHERTYPE_REGISTRY.items():
        if isinstance(header, cls):
            return etype
    return None


class Ethernet(Header):
    """Ethernet II frame header: dst(6) src(6) ethertype(2)."""

    name = "ethernet"
    __slots__ = ("dst", "src", "ethertype")
    _FMT = struct.Struct("!6s6sH")

    def __init__(
        self,
        dst: Union[str, MACAddress] = BROADCAST_MAC,
        src: Union[str, MACAddress] = "00:00:00:00:00:00",
        ethertype: int = 0,
    ) -> None:
        self.dst = MACAddress(dst)
        self.src = MACAddress(src)
        self.ethertype = ethertype

    def link_to(self, successor: Optional[Header]) -> None:
        if successor is None:
            return
        etype = _ethertype_of(successor)
        if etype is not None:
            self.ethertype = etype

    def encode(self, following: bytes) -> bytes:
        return (
            self._FMT.pack(self.dst.packed(), self.src.packed(), self.ethertype)
            + following
        )

    @classmethod
    def decode(cls, data: bytes) -> Tuple["Ethernet", int]:
        if len(data) < cls._FMT.size:
            raise DecodeError(
                f"Ethernet header needs {cls._FMT.size} bytes, got {len(data)}"
            )
        dst, src, ethertype = cls._FMT.unpack_from(data)
        return cls(MACAddress(dst), MACAddress(src), ethertype), cls._FMT.size

    def payload_class(self) -> Optional[Type[Header]]:
        return lookup_ethertype(self.ethertype)


class VLAN(Header):
    """IEEE 802.1Q tag: PCP(3) DEI(1) VID(12), then inner ethertype(2)."""

    name = "vlan"
    __slots__ = ("vid", "pcp", "dei", "ethertype")
    _FMT = struct.Struct("!HH")

    def __init__(self, vid: int = 0, pcp: int = 0, dei: int = 0,
                 ethertype: int = 0) -> None:
        if not 0 <= vid < 4096:
            raise DecodeError(f"VLAN id out of range: {vid}")
        if not 0 <= pcp < 8:
            raise DecodeError(f"VLAN priority out of range: {pcp}")
        self.vid = vid
        self.pcp = pcp
        self.dei = dei & 1
        self.ethertype = ethertype

    def link_to(self, successor: Optional[Header]) -> None:
        if successor is None:
            return
        etype = _ethertype_of(successor)
        if etype is not None:
            self.ethertype = etype

    def encode(self, following: bytes) -> bytes:
        tci = (self.pcp << 13) | (self.dei << 12) | self.vid
        return self._FMT.pack(tci, self.ethertype) + following

    @classmethod
    def decode(cls, data: bytes) -> Tuple["VLAN", int]:
        if len(data) < cls._FMT.size:
            raise DecodeError(
                f"VLAN tag needs {cls._FMT.size} bytes, got {len(data)}"
            )
        tci, ethertype = cls._FMT.unpack_from(data)
        return (
            cls(vid=tci & 0xFFF, pcp=tci >> 13, dei=(tci >> 12) & 1,
                ethertype=ethertype),
            cls._FMT.size,
        )

    def payload_class(self) -> Optional[Type[Header]]:
        return lookup_ethertype(self.ethertype)


register_ethertype(EtherType.VLAN, VLAN)
