"""ICMP echo request/reply and destination-unreachable (RFC 792)."""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import DecodeError
from repro.packet.base import Header
from repro.packet.checksum import internet_checksum
from repro.packet.ipv4 import IPProto, register_ip_proto

__all__ = ["ICMP", "ICMPType"]


class ICMPType:
    """ICMP message types used by the emulator's hosts."""

    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


class ICMP(Header):
    """An ICMP header with the echo ``ident``/``seq`` rest-of-header layout.

    For non-echo types the two 16-bit fields are simply the rest-of-header
    words (e.g. unused/zero for destination unreachable), which is faithful
    to the wire format.
    """

    name = "icmp"
    __slots__ = ("icmp_type", "code", "ident", "seq")
    _FMT = struct.Struct("!BBHHH")

    def __init__(
        self,
        icmp_type: int = ICMPType.ECHO_REQUEST,
        code: int = 0,
        ident: int = 0,
        seq: int = 0,
    ) -> None:
        self.icmp_type = icmp_type
        self.code = code
        self.ident = ident
        self.seq = seq

    @property
    def is_echo_request(self) -> bool:
        return self.icmp_type == ICMPType.ECHO_REQUEST

    @property
    def is_echo_reply(self) -> bool:
        return self.icmp_type == ICMPType.ECHO_REPLY

    def encode(self, following: bytes) -> bytes:
        body = self._FMT.pack(
            self.icmp_type, self.code, 0, self.ident, self.seq
        ) + following
        checksum = internet_checksum(body)
        return body[:2] + checksum.to_bytes(2, "big") + body[4:]

    @classmethod
    def decode(cls, data: bytes) -> Tuple["ICMP", int]:
        if len(data) < cls._FMT.size:
            raise DecodeError(
                f"ICMP needs {cls._FMT.size} bytes, got {len(data)}"
            )
        if internet_checksum(data) != 0:
            raise DecodeError("ICMP checksum mismatch")
        icmp_type, code, _checksum, ident, seq = cls._FMT.unpack_from(data)
        return cls(icmp_type, code, ident, seq), cls._FMT.size


register_ip_proto(IPProto.ICMP, ICMP)
