"""IPv4 header (RFC 791), without options."""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple, Type, Union

from repro.errors import DecodeError
from repro.packet.addresses import IPv4Address
from repro.packet.base import Header
from repro.packet.checksum import internet_checksum
from repro.packet.ethernet import EtherType, register_ethertype

__all__ = ["IPv4", "IPProto", "register_ip_proto"]


class IPProto:
    """Well-known IP protocol numbers."""

    ICMP = 1
    TCP = 6
    UDP = 17


_PROTO_REGISTRY: Dict[int, Type[Header]] = {}


def register_ip_proto(proto: int, header_cls: Type[Header]) -> None:
    """Associate an IP protocol number with its header class."""
    _PROTO_REGISTRY[proto] = header_cls


def _proto_of(header: Header) -> Optional[int]:
    for proto, cls in _PROTO_REGISTRY.items():
        if isinstance(header, cls):
            return proto
    return None


class IPv4(Header):
    """A 20-byte IPv4 header.

    ``total_length`` and ``checksum`` are computed on encode; ``dscp`` maps
    to the upper 6 bits of the legacy ToS byte and is what QoS-aware apps
    (slicing, TE) match and rewrite.
    """

    name = "ipv4"
    __slots__ = ("src", "dst", "proto", "ttl", "dscp", "ecn", "ident",
                 "flags", "frag_offset")
    _FMT = struct.Struct("!BBHHHBBH4s4s")

    def __init__(
        self,
        src: Union[str, IPv4Address] = "0.0.0.0",
        dst: Union[str, IPv4Address] = "0.0.0.0",
        proto: int = 0,
        ttl: int = 64,
        dscp: int = 0,
        ecn: int = 0,
        ident: int = 0,
        flags: int = 0b010,  # don't-fragment by default
        frag_offset: int = 0,
    ) -> None:
        self.src = IPv4Address(src)
        self.dst = IPv4Address(dst)
        self.proto = proto
        self.ttl = ttl
        self.dscp = dscp
        self.ecn = ecn
        self.ident = ident
        self.flags = flags
        self.frag_offset = frag_offset

    def link_to(self, successor: Optional[Header]) -> None:
        if successor is None:
            return
        proto = _proto_of(successor)
        if proto is not None:
            self.proto = proto

    def encode(self, following: bytes) -> bytes:
        total_length = self._FMT.size + len(following)
        tos = (self.dscp << 2) | self.ecn
        flags_frag = (self.flags << 13) | self.frag_offset
        header = self._FMT.pack(
            (4 << 4) | 5,  # version 4, IHL 5 (no options)
            tos,
            total_length,
            self.ident,
            flags_frag,
            self.ttl,
            self.proto,
            0,  # checksum placeholder
            self.src.packed(),
            self.dst.packed(),
        )
        checksum = internet_checksum(header)
        header = header[:10] + checksum.to_bytes(2, "big") + header[12:]
        return header + following

    @classmethod
    def decode(cls, data: bytes) -> Tuple["IPv4", int]:
        if len(data) < cls._FMT.size:
            raise DecodeError(
                f"IPv4 needs {cls._FMT.size} bytes, got {len(data)}"
            )
        (ver_ihl, tos, total_length, ident, flags_frag,
         ttl, proto, checksum, src, dst) = cls._FMT.unpack_from(data)
        version, ihl = ver_ihl >> 4, ver_ihl & 0xF
        if version != 4:
            raise DecodeError(f"not an IPv4 packet (version={version})")
        if ihl < 5:
            raise DecodeError(f"IPv4 IHL too small: {ihl}")
        header_len = ihl * 4
        if len(data) < header_len:
            raise DecodeError("IPv4 header truncated (options missing)")
        if internet_checksum(data[:header_len]) != 0:
            raise DecodeError("IPv4 header checksum mismatch")
        header = cls(
            src=IPv4Address(src),
            dst=IPv4Address(dst),
            proto=proto,
            ttl=ttl,
            dscp=tos >> 2,
            ecn=tos & 0b11,
            ident=ident,
            flags=flags_frag >> 13,
            frag_offset=flags_frag & 0x1FFF,
        )
        return header, header_len

    def payload_class(self) -> Optional[Type[Header]]:
        return _PROTO_REGISTRY.get(self.proto)

    def decrement_ttl(self) -> bool:
        """Decrement TTL in place; returns False when it has expired."""
        if self.ttl <= 1:
            self.ttl = 0
            return False
        self.ttl -= 1
        return True


register_ethertype(EtherType.IPV4, IPv4)
