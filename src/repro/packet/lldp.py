"""LLDP (IEEE 802.1AB) — the discovery protocol the controller uses to
learn switch-to-switch links.

Only the three mandatory TLVs are implemented (chassis id, port id, TTL)
plus the end-of-LLDPDU marker, which is all OpenFlow-style discovery needs.
The chassis id carries the switch datapath id as a locally-assigned string;
the port id carries the egress port number.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import DecodeError
from repro.packet.addresses import MACAddress
from repro.packet.base import Header
from repro.packet.ethernet import EtherType, register_ethertype

__all__ = ["LLDP", "LLDP_MULTICAST"]

#: Destination MAC for LLDP frames (nearest-bridge group address).
LLDP_MULTICAST = MACAddress("01:80:c2:00:00:0e")

_TLV_END = 0
_TLV_CHASSIS_ID = 1
_TLV_PORT_ID = 2
_TLV_TTL = 3

_CHASSIS_SUBTYPE_LOCAL = 7
_PORT_SUBTYPE_LOCAL = 7


def _tlv(tlv_type: int, value: bytes) -> bytes:
    if len(value) > 511:
        raise DecodeError(f"LLDP TLV value too long: {len(value)}")
    word = (tlv_type << 9) | len(value)
    return word.to_bytes(2, "big") + value


class LLDP(Header):
    """An LLDPDU carrying (chassis_id, port_id, ttl)."""

    name = "lldp"
    __slots__ = ("chassis_id", "port_id", "ttl")

    def __init__(self, chassis_id: int = 0, port_id: int = 0,
                 ttl: int = 120) -> None:
        self.chassis_id = chassis_id
        self.port_id = port_id
        self.ttl = ttl

    def encode(self, following: bytes) -> bytes:
        chassis = bytes([_CHASSIS_SUBTYPE_LOCAL]) + str(self.chassis_id).encode()
        port = bytes([_PORT_SUBTYPE_LOCAL]) + str(self.port_id).encode()
        return (
            _tlv(_TLV_CHASSIS_ID, chassis)
            + _tlv(_TLV_PORT_ID, port)
            + _tlv(_TLV_TTL, struct.pack("!H", self.ttl))
            + _tlv(_TLV_END, b"")
            + following
        )

    @classmethod
    def decode(cls, data: bytes) -> Tuple["LLDP", int]:
        offset = 0
        chassis_id = port_id = None
        ttl = 120
        while True:
            if len(data) - offset < 2:
                raise DecodeError("LLDP truncated before end TLV")
            word = int.from_bytes(data[offset:offset + 2], "big")
            tlv_type, tlv_len = word >> 9, word & 0x1FF
            offset += 2
            if tlv_type == _TLV_END:
                break
            value = data[offset:offset + tlv_len]
            if len(value) != tlv_len:
                raise DecodeError("LLDP TLV value truncated")
            offset += tlv_len
            if tlv_type == _TLV_CHASSIS_ID:
                if not value or value[0] != _CHASSIS_SUBTYPE_LOCAL:
                    raise DecodeError("unsupported LLDP chassis subtype")
                chassis_id = int(value[1:].decode())
            elif tlv_type == _TLV_PORT_ID:
                if not value or value[0] != _PORT_SUBTYPE_LOCAL:
                    raise DecodeError("unsupported LLDP port subtype")
                port_id = int(value[1:].decode())
            elif tlv_type == _TLV_TTL:
                if tlv_len != 2:
                    raise DecodeError("LLDP TTL TLV must be 2 bytes")
                ttl = struct.unpack("!H", value)[0]
            # Unknown TLVs are skipped, per the standard.
        if chassis_id is None or port_id is None:
            raise DecodeError("LLDP missing mandatory chassis/port TLV")
        return cls(chassis_id, port_id, ttl), offset


register_ethertype(EtherType.LLDP, LLDP)
