"""TCP header (RFC 793), without options.

As with UDP, the checksum is emitted as zero (offload semantics); the
emulator's transport endpoints rely on the lossless-by-default link model
or explicit loss injection rather than checksum validation.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import DecodeError
from repro.packet.base import Header
from repro.packet.ipv4 import IPProto, register_ip_proto

__all__ = ["TCP", "TCPFlags"]


class TCPFlags:
    """Bit values for the TCP flags field."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80


class TCP(Header):
    """A 20-byte TCP header."""

    name = "tcp"
    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags",
                 "window", "urgent")
    _FMT = struct.Struct("!HHIIBBHHH")

    def __init__(
        self,
        src_port: int = 0,
        dst_port: int = 0,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        window: int = 65535,
        urgent: int = 0,
    ) -> None:
        for port in (src_port, dst_port):
            if not 0 <= port < 65536:
                raise DecodeError(f"TCP port out of range: {port}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = flags
        self.window = window
        self.urgent = urgent

    def has_flags(self, mask: int) -> bool:
        """True when every flag bit in ``mask`` is set."""
        return (self.flags & mask) == mask

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TCPFlags.SYN)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & TCPFlags.FIN)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & TCPFlags.ACK)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & TCPFlags.RST)

    def encode(self, following: bytes) -> bytes:
        data_offset = 5  # 20-byte header, no options
        return (
            self._FMT.pack(
                self.src_port,
                self.dst_port,
                self.seq,
                self.ack,
                data_offset << 4,
                self.flags,
                self.window,
                0,  # checksum: offloaded
                self.urgent,
            )
            + following
        )

    @classmethod
    def decode(cls, data: bytes) -> Tuple["TCP", int]:
        if len(data) < cls._FMT.size:
            raise DecodeError(
                f"TCP needs {cls._FMT.size} bytes, got {len(data)}"
            )
        (src_port, dst_port, seq, ack, offset_byte, flags,
         window, _checksum, urgent) = cls._FMT.unpack_from(data)
        header_len = (offset_byte >> 4) * 4
        if header_len < cls._FMT.size:
            raise DecodeError(f"TCP data offset too small: {header_len}")
        if len(data) < header_len:
            raise DecodeError("TCP header truncated (options missing)")
        return (
            cls(src_port, dst_port, seq, ack, flags, window, urgent),
            header_len,
        )


register_ip_proto(IPProto.TCP, TCP)
