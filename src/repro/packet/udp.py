"""UDP header (RFC 768).

The checksum field is emitted as zero, which RFC 768 defines as "checksum
not computed".  This mirrors NIC checksum offload as seen by virtual
switches: the dataplane never needs L4 checksums, and tests that care can
compute one with :func:`repro.packet.checksum.internet_checksum` over the
pseudo-header explicitly.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import DecodeError
from repro.packet.base import Header
from repro.packet.ipv4 import IPProto, register_ip_proto

__all__ = ["UDP"]


class UDP(Header):
    """UDP header: src_port(2) dst_port(2) length(2) checksum(2)."""

    name = "udp"
    __slots__ = ("src_port", "dst_port")
    _FMT = struct.Struct("!HHHH")

    def __init__(self, src_port: int = 0, dst_port: int = 0) -> None:
        for port in (src_port, dst_port):
            if not 0 <= port < 65536:
                raise DecodeError(f"UDP port out of range: {port}")
        self.src_port = src_port
        self.dst_port = dst_port

    def encode(self, following: bytes) -> bytes:
        length = self._FMT.size + len(following)
        return self._FMT.pack(self.src_port, self.dst_port, length, 0) + following

    @classmethod
    def decode(cls, data: bytes) -> Tuple["UDP", int]:
        if len(data) < cls._FMT.size:
            raise DecodeError(
                f"UDP needs {cls._FMT.size} bytes, got {len(data)}"
            )
        src_port, dst_port, length, _checksum = cls._FMT.unpack_from(data)
        if length < cls._FMT.size:
            raise DecodeError(f"UDP length field too small: {length}")
        return cls(src_port, dst_port), cls._FMT.size


register_ip_proto(IPProto.UDP, UDP)
