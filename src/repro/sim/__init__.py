"""Deterministic discrete-event simulation kernel for ZenSDN."""

from repro.sim.kernel import Event, Process, Signal, Simulator

__all__ = ["Event", "Process", "Signal", "Simulator"]
