"""Discrete-event simulation kernel.

The kernel is the heartbeat of ZenSDN: every link transmission, switch
lookup, controller computation, and timer in the platform is an event on a
single priority queue ordered by simulated time.  Determinism is a design
goal — two runs with the same seed produce identical event orderings, which
makes every experiment in ``benchmarks/`` reproducible bit-for-bit.

Two programming styles are supported:

* **Callbacks** — ``sim.schedule(delay, fn, *args)`` runs ``fn`` at
  ``now + delay``.
* **Processes** — generator functions spawned with ``sim.spawn`` that
  ``yield sim.sleep(dt)`` or ``yield signal.wait()`` to advance simulated
  time without inverting control flow.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

__all__ = ["Event", "Observer", "Signal", "Simulator", "Process"]

# Heap entries are plain (time, seq, event) tuples: tuple comparison stops
# at the unique seq, and tuples cost a fraction of a dataclass to build and
# compare — the run loop is the hottest code in the platform.


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be cancelled
    before they fire.  A cancelled event stays in the heap but is skipped by
    the run loop; the owning simulator keeps a live count so
    :attr:`Simulator.pending_events` never has to scan the heap.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "_sim", "_fired")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None
        self._fired = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None and not self._fired:
            sim._cancelled_count += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Observer:
    """A periodic side-channel tick that can never perturb the run.

    Observers live outside the event heap: they consume no sequence
    numbers, never count toward :attr:`Simulator.events_processed`, and
    the kernel forbids them from scheduling events or processes while
    their callback runs.  Two runs of the same seed are therefore
    bit-identical whether observers are attached or not — the property
    ``repro.obs`` leans on to scrape metrics mid-run.
    """

    __slots__ = ("interval", "callback", "next_time", "active", "fired")

    def __init__(self, interval: float, callback: Callable[[], Any],
                 next_time: float) -> None:
        self.interval = interval
        self.callback = callback
        self.next_time = next_time
        self.active = True
        self.fired = 0

    def cancel(self) -> None:
        self.active = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else "cancelled"
        return (f"<Observer every {self.interval}s next="
                f"{self.next_time:.6f} {state}>")


class Signal:
    """A broadcast condition processes can wait on.

    ``yield signal.wait()`` suspends the waiting process until another party
    calls :meth:`fire`.  The value passed to ``fire`` becomes the result of
    the ``yield`` expression for every waiter.
    """

    __slots__ = ("_sim", "_waiters")

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._waiters: list[Process] = []

    def wait(self) -> "_Wait":
        return _Wait(self)

    def fire(self, value: Any = None) -> None:
        """Wake every waiting process at the current simulated instant."""
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim.schedule(0.0, proc._resume, value)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)


class _Wait:
    """Yieldable token returned by :meth:`Signal.wait`."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal) -> None:
        self.signal = signal


class _Sleep:
    """Yieldable token returned by :meth:`Simulator.sleep`."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        self.delay = delay


class Process:
    """A generator-based cooperative process running on the kernel.

    The wrapped generator may yield:

    * ``sim.sleep(dt)`` — resume after ``dt`` simulated seconds,
    * ``signal.wait()`` — resume when the signal fires,
    * another :class:`Process` — resume when that process finishes.
    """

    __slots__ = ("sim", "gen", "alive", "result", "_done", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.alive = True
        self.result: Any = None
        self._done = Signal(sim)
        self.name = name or getattr(gen, "__name__", "process")

    def wait(self) -> _Wait:
        """Yieldable: suspend the caller until this process terminates."""
        return self._done.wait()

    def kill(self) -> None:
        """Terminate the process; its generator is closed immediately."""
        if not self.alive:
            return
        self.alive = False
        self.gen.close()
        self._done.fire(None)

    def _resume(self, value: Any = None) -> None:
        if not self.alive:
            return
        try:
            yielded = self.gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            self._done.fire(stop.value)
            return
        if isinstance(yielded, _Sleep):
            self.sim.schedule(yielded.delay, self._resume, None)
        elif isinstance(yielded, _Wait):
            yielded.signal._waiters.append(self)
        elif isinstance(yielded, Process):
            yielded._done._waiters.append(self)
        else:
            self.alive = False
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value "
                f"{yielded!r}; yield sim.sleep(), signal.wait(), or a Process"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the kernel's :class:`random.Random`; every stochastic
        component in the platform draws from :attr:`rng` (or a
        :meth:`fork_rng` child) so a run is fully determined by this value.
    """

    def __init__(self, seed: int = 0, telemetry=None,
                 stable_ties: bool = False) -> None:
        self._now = 0.0
        self._heap: list = []  # (time, seq, Event) tuples
        self._seq = itertools.count()
        #: Stable-tie mode (the sharded kernel): heap order keys become
        #: ``(0, seq)`` for ordinary events and ``(1, *key)`` for events
        #: scheduled with an explicit ``key=``, so same-instant ordering
        #: of keyed events is a property of the key — not of insertion
        #: order — and therefore identical no matter how the simulation
        #: is partitioned across shards.  Off by default: plain int
        #: sequence keys are cheaper and every legacy seeded run depends
        #: on them.
        self._stable_ties = stable_ties
        self._processed = 0
        #: Cancelled-but-still-queued events, maintained by Event.cancel()
        #: and the run loop so pending_events is O(1).
        self._cancelled_count = 0
        self.seed = seed
        self.rng = random.Random(seed)
        self._rng_children = 0
        #: Named monotone counters handed out by :meth:`next_id`.
        self._id_counters: dict = {}
        #: Side-channel periodic observers (see :class:`Observer`).  The
        #: run loop pays one float compare per event while any are
        #: registered; ``_obs_next`` is +inf otherwise.
        self._observers: list[Observer] = []
        self._obs_next = float("inf")
        self._in_observer = False
        # Telemetry is optional and passive: the kernel publishes event
        # counts and lends the tracer its clock, but telemetry can never
        # schedule events or draw randomness — determinism is untouched.
        if telemetry is None:
            from repro.telemetry import NULL_TELEMETRY
            telemetry = NULL_TELEMETRY
        self.telemetry = telemetry
        self._tel_on = telemetry.enabled
        telemetry.bind_clock(lambda: self._now)
        self._m_events = telemetry.metrics.counter(
            "sim_events_total",
            "Events executed by the kernel run loop",
        )
        self._m_now = telemetry.metrics.gauge(
            "sim_now_seconds", "Simulated clock at the last run() exit"
        )

    # ------------------------------------------------------------------
    # Time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay=}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any,
        key: Optional[tuple] = None,
    ) -> Event:
        """Run ``callback(*args)`` at absolute simulated ``time``.

        ``key`` (stable-tie mode only) pins this event's same-instant
        ordering to a partition-independent tuple — link arrivals use
        ``(link id, per-direction sequence)`` so a frame crossing a
        shard boundary lands in exactly the heap position it would have
        occupied in an unsharded run.  Ignored outside stable-tie mode.
        """
        if self._in_observer:
            raise SimulationError(
                "observers are read-only: scheduling events from an "
                "observer callback would perturb the run"
            )
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}; now is {self._now}"
            )
        event = Event(time, callback, args)
        event._sim = self
        if self._stable_ties:
            order = (1,) + key if key is not None else (0, next(self._seq))
        else:
            order = next(self._seq)
        heapq.heappush(self._heap, (time, order, event))
        return event

    def call_every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        jitter: float = 0.0,
    ) -> Callable[[], None]:
        """Run ``callback`` periodically; returns a function that stops it.

        ``jitter`` adds a uniform random offset in ``[0, jitter)`` to each
        period, which desynchronises periodic behaviours (e.g. LLDP probes
        from many switches) without sacrificing determinism.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval=}")
        stopped = False
        pending: list[Event] = []

        def tick() -> None:
            if stopped:
                return
            callback(*args)
            arm()

        def arm() -> None:
            if stopped:
                return
            delay = interval + (self.rng.uniform(0, jitter) if jitter else 0)
            pending[:] = [self.schedule(delay, tick)]

        def stop() -> None:
            nonlocal stopped
            stopped = True
            for ev in pending:
                ev.cancel()

        arm()
        return stop

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a generator-based process; it first runs at the current time."""
        proc = Process(self, gen, name=name)
        self.schedule(0.0, proc._resume, None)
        return proc

    def sleep(self, delay: float) -> _Sleep:
        """Yieldable: suspend the calling process for ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"cannot sleep a negative time: {delay=}")
        return _Sleep(delay)

    def signal(self) -> Signal:
        """Create a new :class:`Signal` bound to this simulator."""
        return Signal(self)

    # ------------------------------------------------------------------
    # Observers (read-only periodic ticks)
    # ------------------------------------------------------------------
    def observe_every(self, interval: float,
                      callback: Callable[[], Any]) -> Observer:
        """Fire ``callback()`` every ``interval`` simulated seconds.

        Observer ticks ride alongside the event heap instead of in it:
        a tick at time *t* fires after every event strictly before *t*
        and before any event at *t* or later, with :attr:`now` set to
        *t*.  The callback must be a pure read — scheduling from inside
        it raises :class:`SimulationError` — so attaching any number of
        observers leaves the run's event sequence, RNG stream, and
        :attr:`events_processed` bit-identical.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval=}")
        obs = Observer(interval, callback, self._now + interval)
        self._observers.append(obs)
        if obs.next_time < self._obs_next:
            self._obs_next = obs.next_time
        return obs

    def _refresh_obs_next(self) -> None:
        self._obs_next = min(
            (o.next_time for o in self._observers if o.active),
            default=float("inf"),
        )

    def _fire_observers(self, upto: float, inclusive: bool = True) -> None:
        """Fire every due tick (tick time <= ``upto``) in time order."""
        while (self._obs_next <= upto if inclusive
               else self._obs_next < upto):
            tick = self._obs_next
            self._now = tick
            self._in_observer = True
            try:
                # Registration order breaks same-instant ties, so the
                # firing sequence is deterministic.
                for obs in self._observers:
                    if obs.active and obs.next_time <= tick:
                        obs.callback()
                        obs.fired += 1
                        obs.next_time = tick + obs.interval
            finally:
                self._in_observer = False
            self._observers = [o for o in self._observers if o.active]
            self._refresh_obs_next()

    # ------------------------------------------------------------------
    # Identifiers
    # ------------------------------------------------------------------
    def next_id(self, namespace: str = "") -> int:
        """Allocate the next integer (1, 2, ...) from a named counter.

        Counters live on the simulator, so an id is a deterministic
        function of allocation order within this run — never of process
        history — and every component drawing from the same namespace
        (e.g. all traffic generators allocating flow ids) is guaranteed
        collision-free.
        """
        value = self._id_counters.get(namespace, 0) + 1
        self._id_counters[namespace] = value
        return value

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def fork_rng(self, name: Optional[str] = None) -> random.Random:
        """Derive an independent, deterministic child RNG.

        Components that draw random numbers at data rate (e.g. lossy links)
        use a forked stream so adding a new random consumer elsewhere does
        not perturb their sequence.

        With ``name`` the stream is keyed by ``(seed, name)`` instead of
        by allocation order — the same entity gets the same stream no
        matter which components were built before it, which is what lets
        a sharded run reproduce an unsharded one bit for bit.  (String
        seeding is process-stable in CPython: it hashes via SHA-512, not
        the randomised ``hash()``.)
        """
        if name is not None:
            return random.Random(f"{self.seed}\x1f{name}")
        self._rng_children += 1
        return random.Random((self.seed, self._rng_children).__hash__())

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        exclusive: bool = False,
    ) -> int:
        """Execute events until the queue drains or a bound is hit.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            the clock is then advanced to ``until``.
        max_events:
            Stop after executing this many events (a runaway-loop guard).
        exclusive:
            Treat ``until`` as a half-open bound: events exactly *at*
            ``until`` stay queued (and observer ticks at ``until`` stay
            pending).  The sharded kernel's conservative windows are
            half-open — a cross-shard frame may arrive exactly at the
            window edge, and it must be merged into the heap before any
            local event at that instant runs.

        Returns
        -------
        int
            The number of events executed by this call.
        """
        executed = 0
        # Local aliases: attribute lookups in this loop are measurable at
        # millions of events per run (benchmark E12 tracks events/s).
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            if max_events is not None and executed >= max_events:
                break
            time, _seq, event = heap[0]
            if event.cancelled:
                heappop(heap)
                self._cancelled_count -= 1
                continue
            if until is not None and (
                time > until or (exclusive and time == until)
            ):
                break
            heappop(heap)
            event._fired = True
            if time >= self._obs_next:
                self._fire_observers(time)
            self._now = time
            event.callback(*event.args)
            executed += 1
        self._processed += executed
        if until is not None and self._now < until:
            if until >= self._obs_next:
                self._fire_observers(until, inclusive=not exclusive)
            self._now = until
        if self._tel_on:
            self._m_events.inc(executed)
            self._m_now.set(self._now)
        return executed

    @property
    def next_event_time(self) -> float:
        """Time of the earliest pending (non-cancelled) event, or +inf.

        Cancelled entries found at the top of the heap are popped on the
        way — the same lazy cleanup the run loop performs.
        """
        heap = self._heap
        while heap:
            time, _seq, event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                self._cancelled_count -= 1
                continue
            return time
        return float("inf")

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain; guard against infinite loops."""
        return self.run(max_events=max_events)

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued.

        O(1): the heap length minus a live cancelled-entry count, so
        polling this in a loop (tests, watchdogs) is no longer quadratic.
        """
        return len(self._heap) - self._cancelled_count

    def drain(self, events: Iterable[Event]) -> None:
        """Cancel a collection of events (convenience for teardown)."""
        for event in events:
            event.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator t={self._now:.6f} pending={len(self._heap)} "
            f"processed={self._processed}>"
        )
