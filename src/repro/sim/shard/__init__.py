"""Sharded parallel simulation kernel (conservative sync).

Partition a topology into spatial shards, run each shard's event loop
in its own worker process, and synchronise conservatively using
cross-shard link latency as lookahead.  ``--shards 1`` is the
differential oracle: byte-identical merged observables at any shard
count, multiprocess or in-process.
"""

from repro.sim.shard.boundary import BoundaryLink, ShardMessage
from repro.sim.shard.engine import ShardedResult, run_sharded
from repro.sim.shard.partition import Partition, partition_topology
from repro.sim.shard.program import Program, build_program, build_routes
from repro.sim.shard.worker import ShardWorker

__all__ = [
    "BoundaryLink",
    "Partition",
    "Program",
    "ShardMessage",
    "ShardWorker",
    "ShardedResult",
    "build_program",
    "build_routes",
    "partition_topology",
    "run_sharded",
]
