"""Cross-shard boundary links: serialised frames + timestamps.

A topology link whose endpoints live on different shards is realised
twice, once per shard, as a :class:`BoundaryLink`:

* the **transmit half** is a real :class:`~repro.netem.link._Direction`
  — same bandwidth/queue/loss machinery, same keyed loss RNG — whose
  arrival hook, instead of scheduling a local delivery, appends a
  :class:`ShardMessage` (arrival time, link id, direction, per-direction
  sequence, epoch, encoded frame) to the shard's outbox;
* the **receive half** is the mirror direction object: the engine feeds
  it incoming messages and it schedules the delivery with exactly the
  partition-independent tie key ``(link id * 2 + direction, sequence)``
  the unsharded link would have used, so the frame lands in the same
  heap position either way.

Epochs reproduce cut semantics: both shards bump their halves when the
(locally scheduled) fault op fires, so a frame serialised before a cut
is dropped on arrival exactly as the in-process link drops it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.netem.link import Attachment, _Direction, dscp_classifier
from repro.packet import Packet
from repro.sim import Simulator

__all__ = ["BoundaryLink", "ShardMessage", "decode_frame"]

#: (arrival_time, link_index, direction, tx_seq, epoch, frame_bytes,
#: trace_id, parent_span) — plain tuple so it pickles cheaply across
#: worker pipes.  The last two fields carry the causal trace context
#: over the wire: encoding strips ``Packet.trace_id``, so the tx half
#: rides it (plus the boundary-tx span id) alongside the frame and the
#: rx stub re-adopts the trace into its own tracer on delivery.  They
#: are ``None`` when tracing is off or the frame was never sampled.
ShardMessage = Tuple[float, int, int, int, int, bytes,
                     Optional[int], Optional[int]]


def decode_frame(data: bytes) -> Packet:
    return Packet.decode(data)


class _BoundaryTx(_Direction):
    """Transmit half: a stock direction whose arrivals leave the shard."""

    __slots__ = ("outbox", "link_index", "direction")

    def __init__(self, sim: Simulator, spec, rng,
                 outbox: List[ShardMessage], link_index: int,
                 direction: int) -> None:
        super().__init__(sim, spec.bandwidth_bps, spec.delay,
                         spec.loss_rate, spec.queue_capacity, rng,
                         priority_bands=spec.priority_bands,
                         classifier=(dscp_classifier
                                     if spec.priority_bands > 1 else None))
        self.outbox = outbox
        self.link_index = link_index
        self.direction = direction
        self.key_base = link_index * 2 + direction

    def _schedule_arrival(self, arrival: float, packet: Packet) -> None:
        self._key_seq += 1
        trace_id = packet.trace_id
        parent_span = None
        if self._tracer is not None and trace_id is not None:
            parent_span = self._tracer.record(
                trace_id, "shard.boundary_tx", "shard",
                start=self.sim.now, end=arrival,
                link=self.name, seq=self._key_seq)
        self.outbox.append((arrival, self.link_index, self.direction,
                            self._key_seq, self.epoch, packet.encode(),
                            trace_id, parent_span))


class BoundaryLink:
    """One shard's view of a link it shares with another shard.

    Quacks like :class:`~repro.netem.link.Link` for everything the
    shard-local machinery touches: ``send_from``, ``fail``/``recover``,
    ``up``, ``direction_stats``, telemetry/utilisation no-ops.
    """

    def __init__(self, sim: Simulator, index: int, spec,
                 local_att: Attachment, local_is_a: bool,
                 outbox: List[ShardMessage]) -> None:
        self.sim = sim
        self.index = index
        self.spec = spec
        self.up = True
        self.local_name = spec.a if local_is_a else spec.b
        self.remote_name = spec.b if local_is_a else spec.a
        # Direction 0 is a->b everywhere; the local transmit half is
        # whichever direction leaves this shard.
        tx_dir = 0 if local_is_a else 1
        rx_dir = 1 - tx_dir
        self._tx = _BoundaryTx(
            sim, spec, sim.fork_rng(name=f"linkdir:{index}:{tx_dir}"),
            outbox, index, tx_dir)
        # The remote attachment is a stub: the tx half never delivers
        # locally, it only needs a non-None dst to transmit.
        self._tx.dst = Attachment(self.remote_name, 0, lambda packet: None)
        self._rx = _Direction(
            sim, spec.bandwidth_bps, spec.delay, spec.loss_rate,
            spec.queue_capacity,
            sim.fork_rng(name=f"linkdir:{index}:{rx_dir}"),
            priority_bands=spec.priority_bands)
        self._rx.key_base = index * 2 + rx_dir
        self._rx.dst = local_att

    # -- data path ---------------------------------------------------
    def send_from(self, node_name: str, packet: Packet) -> None:
        if node_name == self.local_name:
            self._tx.send(packet, self.up)
        # Frames "from" the remote end arrive via deliver(), never here.

    def deliver(self, message: ShardMessage) -> None:
        """Merge one incoming cross-shard frame into the local heap.

        When the message carries trace context, the receive half
        re-adopts the trace into this shard's tracer (ids stay globally
        unique by the stride scheme, so no renumbering) and records the
        boundary-rx span parented to the sender's boundary-tx span —
        the stitch the artifact merge later relies on.
        """
        (arrival, _index, _direction, tx_seq, epoch, frame,
         trace_id, parent_span) = message
        rx = self._rx
        packet = decode_frame(frame)
        if trace_id is not None and rx._tracer is not None:
            if rx._tracer.adopt_foreign(trace_id):
                packet.trace_id = trace_id
                rx._tracer.record(
                    trace_id, "shard.boundary_rx", "shard",
                    start=arrival, end=arrival,
                    parent=parent_span, link=rx.name, seq=tx_seq)
        rx.sim.schedule_at(arrival, rx._arrive, packet,
                           epoch, key=(rx.key_base, tx_seq))

    # -- failure injection ------------------------------------------
    def fail(self) -> None:
        self.up = False
        # Both halves: in-flight frames in either direction die, no
        # matter which shard they are currently buffered in.
        self._tx.epoch += 1
        self._rx.epoch += 1

    def recover(self) -> None:
        self.up = True

    # -- Link API the rest of the stack touches ----------------------
    def attach_telemetry(self, telemetry) -> None:
        """Bind both halves' metrics and tracers.

        With per-shard telemetry on (``--trace``), the tx half records
        the boundary-tx span whose id rides the outbox tuple, and the
        rx half records the adopting boundary-rx span on delivery.
        """
        if telemetry is None or not telemetry.enabled:
            return
        a, b = self.spec.a, self.spec.b
        names = {0: f"{a}->{b}", 1: f"{b}->{a}"}
        self._tx.attach_telemetry(telemetry, names[self._tx.direction])
        self._rx.attach_telemetry(telemetry,
                                  names[1 - self._tx.direction])

    def reset_utilisation_window(self) -> None:
        self._tx.reset_window()
        self._rx.reset_window()

    @property
    def max_utilisation(self) -> float:
        return self._tx.utilisation_since_reset()

    def other_end(self, node_name: str) -> Optional[Attachment]:
        if node_name == self.remote_name:
            return self._rx.dst
        return self._tx.dst

    def half_stats(self) -> dict:
        """Per-direction counters for the halves this shard owns.

        Keyed by global direction (0 = a->b, 1 = b->a); the engine sums
        the tx and rx contributions fieldwise across shards, which
        reconstructs exactly the unsharded link's counters (each field
        is only ever incremented on one side).
        """
        def snap(d: _Direction) -> dict:
            return {
                "tx_packets": d.tx_packets,
                "tx_bytes": d.tx_bytes,
                "dropped_queue": d.dropped_queue,
                "dropped_loss": d.dropped_loss,
                "dropped_cut": d.dropped_cut,
                "band_tx_packets": list(d.band_tx_packets),
                "band_dropped": list(d.band_dropped),
            }

        tx_dir = self._tx.direction
        return {str(tx_dir): snap(self._tx),
                str(1 - tx_dir): snap(self._rx)}

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return (f"<BoundaryLink {self.local_name} <-> "
                f"{self.remote_name}(remote) {state}>")
