"""Conservative-sync execution engine for sharded workload runs.

The coordinator (this module) drives N :class:`ShardWorker` event loops
— in-process for the differential oracle and tests, or one OS process
per shard for wall-clock speedup — with an LBTS-style window protocol:

1. ``t_min`` = the earliest pending event or undelivered cross-shard
   frame anywhere in the system.
2. Every shard may safely run to ``grant = t_min + L`` *exclusive*,
   where ``L`` is the partition lookahead (minimum cut-link delay): a
   frame sent at ``s >= t_min`` arrives at ``s + delay >= grant``, so
   nothing that happens elsewhere during the window can affect a local
   event strictly before ``grant``.
3. Outboxes are routed to the receiving shards, which merge each frame
   into their heap at its timestamped arrival with the
   partition-independent tie key — then the next window starts.
4. Once ``t_min + L`` clears the horizon, one final *inclusive* window
   runs every shard to ``duration``; frames serialised in that window
   all arrive strictly after the horizon, so discarding them matches
   the unsharded run leaving those arrivals unexecuted in its heap.

``shards=1`` degenerates to a single inclusive window — the same code
path, one worker, no messages — which is the differential oracle the
CI digest gate compares against.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Dict, List, Optional

from repro.analysis import percentile
from repro.errors import SimulationError
from repro.sim.shard.partition import Partition, partition_topology
from repro.sim.shard.worker import ShardWorker
from repro.trace.artifact import TraceArtifact
from repro.workload.spec import WorkloadSpec, build_spec_topology

__all__ = ["ShardedResult", "run_sharded"]


class ShardedResult:
    """Outcome of one sharded run: merged observables + metadata.

    :attr:`digest` covers only the merged *observables* — flows, host
    and switch counters, per-link-direction counters — which are
    partition-invariant by construction.  Execution metadata (events,
    rounds, wall time) lives in :attr:`summary` outside the digest:
    total event count legitimately differs by the duplicated boundary
    fault ops, and wall time is the whole point of varying shards.
    """

    __slots__ = ("spec", "shards", "effective_shards", "processes",
                 "observables", "summary", "trace_artifact")

    def __init__(self, spec: WorkloadSpec, shards: int,
                 effective_shards: int, processes: bool,
                 observables: dict, summary: dict,
                 trace_artifact=None) -> None:
        self.spec = spec
        self.shards = shards
        self.effective_shards = effective_shards
        self.processes = processes
        self.observables = observables
        self.summary = summary
        #: Merged per-shard :class:`~repro.trace.artifact.TraceArtifact`
        #: when the run was traced; deliberately OUTSIDE the digest.
        self.trace_artifact = trace_artifact

    @property
    def digest(self) -> str:
        blob = json.dumps(self.observables, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    @property
    def ok(self) -> bool:
        return True  # no SLO plane in shard mode; health is the digest

    def to_dict(self) -> dict:
        return {
            "kind": "sharded_workload",
            "name": self.spec.name,
            "spec": self.spec.to_dict(),
            "shards": self.shards,
            "effective_shards": self.effective_shards,
            "processes": self.processes,
            "summary": self.summary,
            "observables": self.observables,
            "digest": self.digest,
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def __repr__(self) -> str:
        return (f"<ShardedResult {self.spec.name!r} "
                f"shards={self.effective_shards} "
                f"{self.summary.get('flows_completed', 0)} flows "
                f"digest={self.digest[:12]}>")


# ----------------------------------------------------------------------
# Worker adapters: same protocol in-process and across a pipe
# ----------------------------------------------------------------------
class _LocalAdapter:
    def __init__(self, spec_doc: dict, shard_id: int, shards: int,
                 trace: bool = False) -> None:
        self.worker = ShardWorker(spec_doc, shard_id, shards, trace=trace)
        self.next_time = self.worker.next_event_time

    def advance_start(self, grant, final, messages) -> None:
        self._result = self.worker.advance(grant, messages, final)

    def advance_finish(self):
        out, self.next_time, executed = self._result
        return out, executed

    def collect(self) -> dict:
        return self.worker.collect()

    def traces(self) -> dict:
        return self.worker.collect_traces()

    def close(self) -> None:
        pass


def _shard_child(conn, spec_doc: dict, shard_id: int, shards: int,
                 trace: bool = False) -> None:
    """Child-process main: rebuild the shard, serve window commands."""
    try:
        worker = ShardWorker(spec_doc, shard_id, shards, trace=trace)
        conn.send(("ready", worker.next_event_time))
        while True:
            command = conn.recv()
            op = command[0]
            if op == "advance":
                _, grant, final, messages = command
                conn.send(worker.advance(grant, messages, final))
            elif op == "collect":
                conn.send(worker.collect())
            elif op == "traces":
                conn.send(worker.collect_traces())
            elif op == "quit":
                return
    except EOFError:  # coordinator died; exit quietly
        return
    except Exception as exc:  # surface the traceback to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        raise
    finally:
        conn.close()


class _ProcessAdapter:
    def __init__(self, ctx, spec_doc: dict, shard_id: int,
                 shards: int, trace: bool = False) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(target=_shard_child,
                                args=(child_conn, spec_doc, shard_id,
                                      shards, trace))
        self.proc.daemon = True
        self.proc.start()
        child_conn.close()
        self.next_time: Optional[float] = None

    def ready(self) -> None:
        tag, payload = self._recv()
        if tag != "ready":  # pragma: no cover - defensive
            raise SimulationError(f"shard worker failed to start: {payload}")
        self.next_time = payload

    def _recv(self):
        reply = self.conn.recv()
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            raise SimulationError(f"shard worker crashed: {reply[1]}")
        return reply

    def advance_start(self, grant, final, messages) -> None:
        self.conn.send(("advance", grant, final, messages))

    def advance_finish(self):
        out, self.next_time, executed = self._recv()
        return out, executed

    def collect(self) -> dict:
        self.conn.send(("collect",))
        return self._recv()

    def traces(self) -> dict:
        self.conn.send(("traces",))
        return self._recv()

    def close(self) -> None:
        try:
            self.conn.send(("quit",))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=10)
        if self.proc.is_alive():  # pragma: no cover - defensive
            self.proc.terminate()
        self.conn.close()


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def _sum_stats(a: dict, b: dict) -> dict:
    out = {}
    for key, va in a.items():
        vb = b[key]
        if isinstance(va, list):
            out[key] = [x + y for x, y in zip(va, vb)]
        else:
            out[key] = va + vb
    return out


def _merge_observables(parts: List[dict]) -> dict:
    flows: List[list] = []
    hosts: Dict[str, list] = {}
    switches: Dict[str, dict] = {}
    links: Dict[str, Dict[str, dict]] = {}
    for part in parts:
        flows.extend(part["flows"])
        hosts.update(part["hosts"])
        switches.update(part["switches"])
        for index, halves in part["links"].items():
            bucket = links.setdefault(index, {})
            for direction, stats in halves.items():
                if direction in bucket:
                    # A boundary direction split across two shards: the
                    # tx and rx halves increment disjoint fields, so a
                    # fieldwise sum reconstructs the unsharded counter.
                    bucket[direction] = _sum_stats(bucket[direction], stats)
                else:
                    bucket[direction] = stats
    flows.sort()
    return {"flows": flows, "hosts": hosts, "switches": switches,
            "links": links}


# ----------------------------------------------------------------------
# The window loop
# ----------------------------------------------------------------------
def _route(partition: Partition, outboxes: List[List[tuple]],
           pending: List[List[tuple]]) -> None:
    for messages in outboxes:
        for message in messages:
            dest = partition.shard_of_link_end(message[1], message[2])
            pending[dest].append(message)


def _window_loop(adapters, partition: Partition,
                 duration: float) -> dict:
    n = len(adapters)
    lookahead = partition.lookahead
    pending: List[List[tuple]] = [[] for _ in range(n)]
    rounds = 0
    executed_total = 0
    while True:
        t_min = float("inf")
        for i, adapter in enumerate(adapters):
            t_min = min(t_min, adapter.next_time)
            for message in pending[i]:
                t_min = min(t_min, message[0])
        final = t_min + lookahead > duration
        grant = duration if final else t_min + lookahead
        for i, adapter in enumerate(adapters):
            adapter.advance_start(grant, final, pending[i])
            pending[i] = []
        outboxes = []
        for adapter in adapters:
            out, executed = adapter.advance_finish()
            outboxes.append(out)
            executed_total += executed
        rounds += 1
        _route(partition, outboxes, pending)
        if final:
            for queue in pending:
                for message in queue:
                    if message[0] <= duration:  # pragma: no cover
                        raise SimulationError(
                            "conservative sync violated: a frame "
                            f"arrived at {message[0]} inside the "
                            f"closed horizon {duration}"
                        )
            return {"rounds": rounds, "events": executed_total}


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_sharded(spec: WorkloadSpec, shards: int = 1,
                processes: Optional[bool] = None,
                out: Optional[str] = None,
                trace: bool = False,
                trace_out: Optional[str] = None) -> ShardedResult:
    """Run one workload spec on the sharded kernel.

    ``processes=None`` picks multiprocess execution exactly when the
    partition yields more than one shard; ``processes=False`` forces
    the in-process coordinator (tests, profiling, CI determinism
    checks — bit-identical to the multiprocess run by construction,
    asserted in the differential tests).

    ``trace=True`` arms per-shard telemetry (each tracer minting ids in
    its own stride band) and merges every shard's span forest into one
    global :class:`~repro.trace.artifact.TraceArtifact` on
    :attr:`ShardedResult.trace_artifact`, optionally saved to
    ``trace_out``.  The observables digest is bit-identical with
    tracing on or off.
    """
    topology = build_spec_topology(spec)
    partition = partition_topology(topology, shards)
    effective = partition.shards
    use_processes = (processes if processes is not None
                     else effective > 1)
    spec_doc = spec.to_dict()

    trace_parts: Optional[List[dict]] = None
    started = time.perf_counter()
    if use_processes and effective > 1:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            ctx = multiprocessing.get_context("spawn")
        adapters = [_ProcessAdapter(ctx, spec_doc, i, shards, trace=trace)
                    for i in range(effective)]
        try:
            for adapter in adapters:
                adapter.ready()
            stats = _window_loop(adapters, partition, spec.duration)
            parts = [adapter.collect() for adapter in adapters]
            if trace:
                trace_parts = [adapter.traces() for adapter in adapters]
        finally:
            for adapter in adapters:
                adapter.close()
    else:
        adapters = [_LocalAdapter(spec_doc, i, shards, trace=trace)
                    for i in range(effective)]
        stats = _window_loop(adapters, partition, spec.duration)
        parts = [adapter.collect() for adapter in adapters]
        if trace:
            trace_parts = [adapter.traces() for adapter in adapters]
    wall = time.perf_counter() - started

    observables = _merge_observables(parts)
    fcts = [flow[5] - flow[4] for flow in observables["flows"]
            if flow[5] is not None]
    program_flows = None
    for adapter in adapters:
        if isinstance(adapter, _LocalAdapter):
            program_flows = adapter.worker.program.flows_started
            break
    if program_flows is None:
        # Multiprocess parents never built a worker; recompute cheaply.
        from repro.sim.shard.program import build_program

        program_flows = build_program(spec, topology).flows_started
    summary = {
        "name": spec.name,
        "seed": spec.seed,
        "duration": spec.duration,
        "shards": effective,
        "processes": use_processes and effective > 1,
        "lookahead": (partition.lookahead
                      if partition.lookahead != float("inf") else None),
        "cut_links": len(partition.cut_links),
        "flows_started": program_flows,
        "flows_completed": len(fcts),
        "fct_p50": percentile(fcts, 50) if fcts else None,
        "fct_p95": percentile(fcts, 95) if fcts else None,
        "fct_p99": percentile(fcts, 99) if fcts else None,
        "events": stats["events"],
        "rounds": stats["rounds"],
        "wall_s": wall,
    }
    trace_artifact = None
    if trace_parts is not None:
        trace_artifact = TraceArtifact.merge(
            [TraceArtifact.from_dict(doc) for doc in trace_parts],
            meta={"kind": "sharded-run", "name": spec.name,
                  "seed": spec.seed, "shards": effective})
    result = ShardedResult(spec, shards, effective,
                           use_processes and effective > 1,
                           observables, summary,
                           trace_artifact=trace_artifact)
    if out:
        result.save(out)
    if trace_out and trace_artifact is not None:
        trace_artifact.save(trace_out)
    return result
