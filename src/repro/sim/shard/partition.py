"""Deterministic spatial partitioning of a topology into shards.

The partitioner groups switches into *regions* — fat-tree pods,
carrier-WAN metro domains, or (for unrecognised name schemes) single
switches — then packs regions onto shards with a greedy balanced
assignment.  Hosts always follow their attached switch, so a cut edge
is always switch-to-switch and its propagation delay is a known lower
bound on cross-shard causality: the conservative sync lookahead.

Two hard guarantees, property-tested in ``tests/test_shard_partition.py``:

* every node lands in exactly one shard, and
* every cut link carries strictly positive delay (switches joined by a
  zero-delay link are fused into one region up front, so they can never
  be separated).

The result is a pure function of ``(topology, shards)`` — no RNG, no
iteration-order dependence — so every worker process can recompute the
same :class:`Partition` from the spec alone.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.errors import TopologyError
from repro.netem.topology import Topology

__all__ = ["Partition", "partition_topology"]

#: fat_tree builder names: c{i} cores, p{pod}a{i} / p{pod}e{i} switches.
_FAT_POD = re.compile(r"^p(\d+)[ae]\d+$")
_FAT_CORE = re.compile(r"^c(\d+)$")
#: carrier_wan builder names: core{i}, m{i}_{m}, a{i}_{m}_{a}.
_WAN_CORE = re.compile(r"^core(\d+)$")
_WAN_METRO = re.compile(r"^m(\d+)_\d+$")
_WAN_ACCESS = re.compile(r"^a(\d+)_\d+_\d+$")


def _region_key(name: str) -> Tuple:
    """Spatial region label for one switch, by naming convention.

    Keys sort: recognised families cluster by pod/operator region, the
    generic fallback makes each switch its own region (the packer then
    just balances switch subtrees).
    """
    m = _FAT_POD.match(name)
    if m:
        return ("pod", int(m.group(1)))
    m = _FAT_CORE.match(name)
    if m:
        return ("core", int(m.group(1)))
    m = _WAN_CORE.match(name) or _WAN_METRO.match(name) \
        or _WAN_ACCESS.match(name)
    if m:
        return ("region", int(next(g for g in m.groups() if g is not None)))
    return ("sw", name)


class Partition:
    """The shard assignment for one topology.

    Attributes
    ----------
    shards:
        Effective shard count (never more than the number of regions).
    assignment:
        node name -> shard id, every node exactly once.
    cut_links:
        Indices into ``topology.links`` whose endpoints live on
        different shards.
    lookahead:
        ``min(delay)`` over the cut links — the conservative sync
        window the engine may grant beyond the global minimum event
        time.  ``inf`` when nothing is cut (single shard).
    """

    __slots__ = ("topology", "shards", "assignment", "cut_links",
                 "lookahead")

    def __init__(self, topology: Topology, shards: int,
                 assignment: Dict[str, int]) -> None:
        self.topology = topology
        self.shards = shards
        self.assignment = assignment
        self.cut_links: List[int] = []
        lookahead = float("inf")
        for index, link in enumerate(topology.links):
            if assignment[link.a] != assignment[link.b]:
                self.cut_links.append(index)
                lookahead = min(lookahead, link.delay)
        self.lookahead = lookahead

    def nodes_of(self, shard_id: int) -> set:
        return {name for name, sid in self.assignment.items()
                if sid == shard_id}

    def shard_of_link_end(self, index: int, direction: int) -> int:
        """Shard owning the *receiving* end of one link direction
        (0 = a->b delivers at b, 1 = b->a delivers at a)."""
        link = self.topology.links[index]
        return self.assignment[link.b if direction == 0 else link.a]

    def validate(self) -> None:
        """Re-assert the partition invariants (tests, paranoia)."""
        nodes = set(self.topology.nodes)
        assigned = set(self.assignment)
        if assigned != nodes:
            raise TopologyError(
                f"partition must cover every node exactly once; "
                f"missing={sorted(nodes - assigned)} "
                f"extra={sorted(assigned - nodes)}"
            )
        for index in self.cut_links:
            link = self.topology.links[index]
            if link.delay <= 0.0:
                raise TopologyError(
                    f"cut link {link.a} -- {link.b} has zero delay; "
                    f"conservative sync needs positive lookahead"
                )

    def __repr__(self) -> str:
        return (f"<Partition {self.shards} shards, "
                f"{len(self.cut_links)} cut links, "
                f"lookahead={self.lookahead}>")


def partition_topology(topology: Topology, shards: int) -> Partition:
    """Split ``topology`` into at most ``shards`` spatial shards.

    Deterministic in ``(topology, shards)``.  ``shards <= 1`` returns
    the trivial single-shard partition (the differential oracle).
    """
    if shards < 1:
        raise TopologyError(f"shard count must be >= 1, got {shards}")
    switches = [s.name for s in topology.switches]
    attachment = topology.host_attachment()
    if shards == 1 or len(switches) <= 1:
        assignment = {name: 0 for name in topology.nodes}
        return Partition(topology, 1, assignment)

    # Union-find over switches: fuse endpoints of zero-delay
    # switch-switch links so a cut edge always has positive delay.
    parent = {name: name for name in switches}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    switch_set = set(switches)
    for link in topology.links:
        if (link.a in switch_set and link.b in switch_set
                and link.delay <= 0.0):
            ra, rb = find(link.a), find(link.b)
            if ra != rb:
                # Deterministic union: smaller name becomes the root.
                if rb < ra:
                    ra, rb = rb, ra
                parent[rb] = ra

    # Region label per union-find group: the smallest member's key, so
    # fused switches inherit one spatial identity.
    groups: Dict[str, List[str]] = {}
    for name in switches:
        groups.setdefault(find(name), []).append(name)
    region_members: Dict[Tuple, List[str]] = {}
    for members in groups.values():
        key = min(_region_key(n) for n in members)
        region_members.setdefault(key, []).extend(members)

    # Greedy balanced packing: heaviest region first onto the lightest
    # shard, ties broken by region key / lowest shard id — stable.
    host_count: Dict[str, int] = {}
    for host, switch in attachment.items():
        host_count[switch] = host_count.get(switch, 0) + 1

    def weight(members: List[str]) -> int:
        return len(members) + sum(host_count.get(n, 0) for n in members)

    effective = min(shards, len(region_members))
    loads = [0] * effective
    region_shard: Dict[Tuple, int] = {}
    order = sorted(region_members,
                   key=lambda k: (-weight(region_members[k]), k))
    for key in order:
        target = min(range(effective), key=lambda i: (loads[i], i))
        region_shard[key] = target
        loads[target] += weight(region_members[key])

    assignment: Dict[str, int] = {}
    for key, members in region_members.items():
        for name in members:
            assignment[name] = region_shard[key]
    for host, switch in attachment.items():
        assignment[host] = assignment[switch]
    # Hosts the attachment map missed (disconnected descriptions fail
    # validate() long before this) would surface here as a KeyError in
    # Partition(); cover them defensively on shard 0.
    for name in topology.nodes:
        assignment.setdefault(name, 0)

    part = Partition(topology, effective, assignment)
    part.validate()
    return part
