"""Precomputed traffic/fault program for sharded workload runs.

The classic :func:`repro.workload.runner.run_workload` path arms live
generators whose RNG draws interleave with the rest of the run.  That
is fine on one event loop, but a partitioned run cannot reproduce a
global draw order — so the sharded engine *compiles* the spec first:
every traffic entry in a :class:`~repro.workload.spec.WorkloadSpec` is
open-loop (Poisson, diurnal-thinned Poisson, periodic incast, CBR), so
the full list of flows — start time, endpoints, id, size, ports — is a
pure function of ``(spec, seed)`` computable before the run starts.

Each worker schedules only the ops whose source lives on its shard, in
the one global program order, which is exactly what makes a 4-shard
run bit-identical to the single-shard oracle.

Routing is compiled here too: per-destination shortest paths (BFS over
the canonical sorted switch adjacency) become static ``ip_dst`` flow
entries, the static-forwarding execution model the sharded engine runs
(no controller — control-plane faults are rejected up front).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import TopologyError
from repro.netem.topology import Topology
from repro.workload.sizes import size_source_from_spec
from repro.workload.spec import WorkloadSpec

import random

__all__ = ["Program", "build_program", "build_routes"]

#: Flow-id block per traffic entry: entry i owns [base, base + 1e6).
FLOW_ID_BLOCK = 1_000_000


class Program:
    """The compiled, partition-independent schedule of one spec.

    ``ops`` is the single global op list, in compilation order (the
    order workers schedule them in, which pins same-instant tie-breaks
    across shard counts).  Op shapes:

    * ``("flow", t, src, dst, flow_id, size, sport, dport, rate, psize)``
    * ``("cbr", start, duration, src, dst, flow_id, rate_bps, psize,
      sport, dport)``
    * ``("link_down" | "link_up", t, a, b)``
    """

    __slots__ = ("ops", "sinks", "flows_started", "fault_count")

    def __init__(self) -> None:
        self.ops: List[tuple] = []
        #: (host name, udp port) pairs needing a FlowSink.
        self.sinks: List[Tuple[str, int]] = []
        self.flows_started = 0
        self.fault_count = 0


def _entry_rng(seed: int, index: int, role: str) -> random.Random:
    """Entity-keyed stream: stable across processes and shard counts."""
    return random.Random(f"{seed}\x1ftraffic:{index}:{role}")


class _NameTenantMatrix:
    """The generator-plane TenantMatrix, compiled over host *names*.

    Mirrors :class:`repro.workload.generators.TenantMatrix` draw
    semantics (cumulative user weights, largest-remainder host split,
    intra-tenant bias) but runs offline on strings.
    """

    def __init__(self, rng: random.Random, hosts: List[str],
                 tenants: List[dict]) -> None:
        from repro.workload.generators import TenantMatrix

        # Reuse the real partition/draw logic: it only needs list
        # elements it can hand back, never Host attributes.
        self._matrix = TenantMatrix(rng, hosts, tenants)

    def pick(self) -> Tuple[str, str]:
        return self._matrix.pick()

    def aggregate_rate(self, flows_per_user_per_s: float) -> float:
        return self._matrix.aggregate_rate(flows_per_user_per_s)


class _PortRotor:
    """The generators' ephemeral source-port rotation, 30000..60000."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 30000

    def next(self) -> int:
        port = self.value
        self.value += 1
        if self.value > 60000:
            self.value = 30000
        return port


def _compile_flows(program: Program, entry: dict, index: int,
                   seed: int, hosts: List[str],
                   matrix: Optional[_NameTenantMatrix]) -> None:
    """Poisson / diurnal-thinned Poisson arrivals, fully unrolled."""
    import math

    kind = entry.get("kind", "flows")
    start = float(entry.get("start", 0.0))
    duration = float(entry.get("duration", 10.0))
    dst_port = int(entry.get("dst_port", 9000))
    flow_rate = float(entry.get("flow_rate_bps", 10e6))
    packet_size = int(entry.get("packet_size", 1000))
    rng = _entry_rng(seed, index, "arrivals")
    sizes: Iterator[int] = size_source_from_spec(
        _entry_rng(seed, index, "sizes"),
        entry.get("sizes", {"dist": "pareto", "mean": 50_000}))
    use_matrix = bool(entry.get("tenant_matrix"))
    if use_matrix and matrix is None:
        raise TopologyError(
            "traffic entry requests tenant_matrix but the spec "
            "declares no tenants"
        )
    rate = float(entry.get(
        "rate",
        matrix.aggregate_rate(float(entry.get("flows_per_user_per_s",
                                              2e-5)))
        if (use_matrix and matrix is not None) else 10.0,
    ))
    if rate <= 0:
        raise TopologyError("arrival rate must be positive")
    if len(hosts) < 2:
        raise TopologyError("flow generation needs >= 2 hosts")

    period = float(entry.get("period", 86_400.0))
    trough = float(entry.get("trough", 0.2))
    phase = float(entry.get("phase", 0.0))

    def rate_fraction(t: float) -> float:
        cycle = 0.5 * (1.0 - math.cos(2.0 * math.pi * (t - phase) / period))
        return trough + (1.0 - trough) * cycle

    base = (index + 1) * FLOW_ID_BLOCK
    rotor = _PortRotor()
    end_at = start + duration
    n = 0
    t = start + rng.expovariate(rate)
    while t <= end_at:
        accept = True
        if kind == "diurnal":
            accept = rng.random() < rate_fraction(t)
        if accept:
            if use_matrix:
                src, dst = matrix.pick()
            else:
                src, dst = rng.sample(hosts, 2)
            size = next(sizes)
            program.ops.append(("flow", t, src, dst, base + n, size,
                                rotor.next(), dst_port, flow_rate,
                                packet_size))
            n += 1
        t += rng.expovariate(rate)
    program.flows_started += n
    program.sinks.extend((h, dst_port) for h in hosts)


def _compile_incast(program: Program, entry: dict, index: int,
                    seed: int, hosts: List[str]) -> None:
    start = float(entry.get("start", 0.0))
    duration = float(entry.get("duration", 10.0))
    dst_port = int(entry.get("dst_port", 9000))
    period = float(entry.get("period", 1.0))
    if period <= 0:
        raise TopologyError(f"incast period must be positive: {period}")
    nbytes = int(entry.get("bytes_per_sender", 20_000))
    flow_rate = float(entry.get("flow_rate_bps", 10e6))
    packet_size = int(entry.get("packet_size", 1000))
    aggregator = hosts[-1]
    senders = hosts[:-1]
    if not senders:
        raise TopologyError("incast needs at least one sender")
    fanin = min(int(entry.get("fanin") or len(senders)), len(senders))
    rng = _entry_rng(seed, index, "incast")
    base = (index + 1) * FLOW_ID_BLOCK
    rotor = _PortRotor()
    end_at = start + duration
    n = 0
    t = start
    # Mirrors IncastGenerator: a burst landing exactly on the end
    # instant does not fire.
    while t < end_at:
        for src in rng.sample(senders, fanin):
            program.ops.append(("flow", t, src, aggregator, base + n,
                                nbytes, rotor.next(), dst_port,
                                flow_rate, packet_size))
            n += 1
        t += period
    program.flows_started += n
    program.sinks.append((aggregator, dst_port))


def _compile_cbr(program: Program, entry: dict, index: int,
                 hosts: List[str]) -> None:
    if len(hosts) < 2:
        raise TopologyError("cbr entry needs >= 2 hosts")
    start = float(entry.get("start", 0.0))
    duration = float(entry.get("duration", 10.0))
    dst_port = int(entry.get("dst_port", 9000))
    program.ops.append((
        "cbr", start, duration, hosts[0], hosts[1],
        (index + 1) * FLOW_ID_BLOCK,
        float(entry.get("rate_bps", 1e6)),
        int(entry.get("packet_size", 1000)),
        20000, dst_port,
    ))
    program.sinks.append((hosts[1], dst_port))


def build_program(spec: WorkloadSpec, topology: Topology) -> Program:
    """Compile one spec into its partition-independent op list."""
    hosts = sorted(n.name for n in topology.hosts)
    program = Program()

    matrix: Optional[_NameTenantMatrix] = None
    if spec.tenants:
        matrix = _NameTenantMatrix(
            random.Random(f"{spec.seed}\x1ftenants"), hosts, spec.tenants)

    for index, entry in enumerate(spec.traffic):
        kind = entry.get("kind", "flows")
        if kind in ("flows", "diurnal"):
            _compile_flows(program, entry, index, spec.seed, hosts, matrix)
        elif kind == "incast":
            _compile_incast(program, entry, index, spec.seed, hosts)
        elif kind == "cbr":
            _compile_cbr(program, entry, index, hosts)
        else:
            raise TopologyError(f"unknown traffic kind {kind!r}")

    for fault in spec.faults:
        kind = fault["kind"]
        if kind != "link_flap":
            raise TopologyError(
                f"sharded runs execute a static-forwarding dataplane "
                f"with no control channel; fault kind {kind!r} is not "
                f"supported under --shards"
            )
        for k in range(int(fault["count"])):
            t = float(fault["at"]) + k * float(fault["period"])
            program.ops.append(("link_down", t, fault["a"], fault["b"]))
            program.ops.append(("link_up", t + float(fault["down_for"]),
                                fault["a"], fault["b"]))
            program.fault_count += 2

    # Sinks: unique, stable order.
    program.sinks = sorted(set(program.sinks))
    return program


def build_routes(topology: Topology) -> Dict[str, Dict[str, str]]:
    """Destination-rooted next hops: ``routes[host][switch] -> neighbour``.

    For every host H attached to switch S, a BFS from S over the sorted
    switch adjacency yields, for each other switch X, the neighbour of
    X on one canonical shortest path toward S.  ``routes[host][S]`` is
    the host name itself (deliver on the access port).
    """
    adjacency = topology.switch_adjacency()
    attachment = topology.host_attachment()
    routes: Dict[str, Dict[str, str]] = {}
    for host in sorted(attachment):
        root = attachment[host]
        next_hop: Dict[str, str] = {root: host}
        frontier = [root]
        while frontier:
            nxt: List[str] = []
            for switch in frontier:
                for neighbour in adjacency[switch]:
                    if neighbour not in next_hop:
                        # Discovered from ``switch`` ⇒ the path from
                        # ``neighbour`` back to the root goes via it.
                        next_hop[neighbour] = switch
                        nxt.append(neighbour)
            frontier = nxt
        routes[host] = next_hop
    return routes
