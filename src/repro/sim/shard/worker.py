"""One shard's event loop: rebuild, run windows, report observables.

A :class:`ShardWorker` is constructed from plain picklable inputs —
``(spec document, shard id, shard count)`` — and rebuilds *everything*
deterministically: topology, partition, compiled program, a
stable-ties :class:`~repro.sim.Simulator`, and a shard-sliced
:class:`~repro.netem.network.Network` whose cut links are
:class:`~repro.sim.shard.boundary.BoundaryLink` stubs.

The execution model is static forwarding: per-destination shortest-path
``ip_dst`` flow entries installed directly on the local datapaths
(miss = drop, no controller), static ARP from the topology specs, and
the compiled open-loop traffic program.  That is the model under which
a 4-shard run is provably bit-identical to the 1-shard oracle — see
ARCHITECTURE.md, "Sharded kernel".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dataplane import FlowEntry, Match, Output
from repro.netem.network import Network
from repro.netem.traffic import CBRStream, FlowSink, send_framed_flow
from repro.sim import Simulator
from repro.sim.shard.boundary import BoundaryLink, ShardMessage
from repro.sim.shard.partition import Partition, partition_topology
from repro.sim.shard.program import Program, build_program, build_routes
from repro.telemetry import Telemetry
from repro.trace.artifact import SHARD_ID_STRIDE, TraceArtifact
from repro.workload.spec import WorkloadSpec, build_spec_topology

__all__ = ["ShardWorker"]


class ShardWorker:
    """Everything one shard owns, plus the window-protocol surface."""

    def __init__(self, spec_doc: dict, shard_id: int, shards: int,
                 trace: bool = False) -> None:
        self.spec = WorkloadSpec.from_dict(spec_doc)
        self.shard_id = shard_id
        self.topology = build_spec_topology(self.spec)
        self.partition: Partition = partition_topology(self.topology, shards)
        self.program: Program = build_program(self.spec, self.topology)
        # Per-shard telemetry: the tracer mints trace and span ids in
        # this shard's stride band, so the engine can merge every
        # shard's artifact without renumbering.  Telemetry is a pure
        # observer (doctrine), so the digest is bit-identical either
        # way — asserted by the differential tests.
        self.telemetry = (
            Telemetry(trace_id_base=shard_id * SHARD_ID_STRIDE)
            if trace else None)
        self.sim = Simulator(seed=self.spec.seed, stable_ties=True,
                             telemetry=self.telemetry)
        self.outbox: List[ShardMessage] = []
        self.boundaries: Dict[int, BoundaryLink] = {}
        local = self.partition.nodes_of(shard_id)

        def boundary_factory(index, spec, att, local_is_a):
            link = BoundaryLink(self.sim, index, spec, att, local_is_a,
                                self.outbox)
            self.boundaries[index] = link
            return link

        self.net = Network(
            self.topology, sim=self.sim,
            num_tables=1, miss_behaviour="drop", fast_path=True,
            local_nodes=local, link_keys=True,
            boundary_factory=boundary_factory,
        )
        self._install_routes()
        self._install_arp()
        self.sinks: Dict[Tuple[str, int], FlowSink] = {}
        for host_name, port in self.program.sinks:
            host = self.net.hosts.get(host_name)
            if host is not None:
                self.sinks[(host_name, port)] = FlowSink(host, port)
        self._schedule_program(local)
        self.executed = 0

    # ------------------------------------------------------------------
    # Static control plane
    # ------------------------------------------------------------------
    def _install_routes(self) -> None:
        routes = build_routes(self.topology)
        nodes = self.topology.nodes
        for host_name in sorted(routes):
            ip = nodes[host_name].ip
            match = Match(eth_type=0x0800, ip_dst=ip)
            for switch_name, next_hop in sorted(routes[host_name].items()):
                dp = self.net.switches.get(switch_name)
                if dp is None:
                    continue  # another shard's switch
                port = self.net.port_of(switch_name, next_hop)
                dp.install_flow(FlowEntry(match, actions=(Output(port),)))

    def _install_arp(self) -> None:
        specs = [n for n in self.topology.nodes.values() if not n.is_switch]
        for host in self.net.hosts.values():
            for spec in specs:
                if spec.name != host.name:
                    host.add_static_arp(spec.ip, spec.mac)

    # ------------------------------------------------------------------
    # Program scheduling
    # ------------------------------------------------------------------
    def _schedule_program(self, local: set) -> None:
        """Arm the local subsequence of the global op list, in global
        order — same-instant (0, seq) ties then break identically at
        every shard count."""
        sim = self.sim
        nodes = self.topology.nodes
        for op in self.program.ops:
            kind = op[0]
            if kind == "flow":
                _, t, src, dst, flow_id, size, sport, dport, rate, psize = op
                if src not in local:
                    continue
                sim.schedule_at(t, self._start_flow, src, nodes[dst].ip,
                                flow_id, size, sport, dport, rate, psize)
            elif kind == "cbr":
                _, start, duration, src, dst, flow_id, bps, psize, sport, \
                    dport = op
                if src not in local:
                    continue
                CBRStream(self.net.hosts[src], nodes[dst].ip,
                          rate_bps=bps, packet_size=psize, start=start,
                          duration=duration, src_port=sport,
                          dst_port=dport, flow_id=flow_id)
            else:  # link_down / link_up
                _, t, a, b = op
                if a not in local and b not in local:
                    continue
                if kind == "link_down":
                    sim.schedule_at(t, self.net.fail_link, a, b)
                else:
                    sim.schedule_at(t, self.net.recover_link, a, b)

    def _start_flow(self, src: str, dst_ip, flow_id: int, size: int,
                    sport: int, dport: int, rate: float,
                    psize: int) -> None:
        send_framed_flow(self.sim, self.net.hosts[src], dst_ip, flow_id,
                         size, sport, dport, rate, psize)

    # ------------------------------------------------------------------
    # Window protocol
    # ------------------------------------------------------------------
    @property
    def next_event_time(self) -> float:
        return self.sim.next_event_time

    def advance(self, grant: float, messages: List[ShardMessage],
                final: bool) -> Tuple[List[ShardMessage], float, int]:
        """Merge incoming frames, run one conservative window, drain
        the outbox.

        Non-final windows are half-open (events strictly before
        ``grant``): a frame arriving exactly at the next window edge is
        merged into the heap before any local event at that instant
        runs.  The final window is inclusive — the engine only issues
        it once no cross-shard frame can arrive at or before the
        horizon.
        """
        for message in messages:
            self.boundaries[message[1]].deliver(message)
        executed = self.sim.run(until=grant, exclusive=not final)
        self.executed += executed
        out, self.outbox[:] = list(self.outbox), []
        return out, self.sim.next_event_time, executed

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------
    def collect(self) -> dict:
        """This shard's slice of the run's observables.

        Everything is keyed by entity (flow id, node name, link index +
        direction) so the engine's merge is order-free; counters split
        across shards (boundary link halves) sum fieldwise back to the
        unsharded values.
        """
        flows = []
        for sink in self.sinks.values():
            for record in sink.flows.values():
                flows.append([record.flow_id, record.src, record.dst,
                              record.size, record.start_time,
                              record.end_time, record.bytes_received,
                              record.packets_received])
        flows.sort()
        hosts = {
            name: [h.rx_packets, h.rx_bytes, h.tx_packets, h.tx_bytes]
            for name, h in self.net.hosts.items()
        }
        switches = {name: dp.stats()
                    for name, dp in self.net.switches.items()}
        links: Dict[str, dict] = {}
        local = self.partition.nodes_of(self.shard_id)
        for index, spec in enumerate(self.topology.links):
            if index in self.boundaries:
                links[str(index)] = self.boundaries[index].half_stats()
            elif spec.a in local and spec.b in local:
                link = self.net.link(spec.a, spec.b)
                ab, ba = link.direction_stats()
                for half in (ab, ba):
                    half.pop("utilisation", None)
                links[str(index)] = {"0": ab, "1": ba}
        return {
            "flows": flows,
            "hosts": hosts,
            "switches": switches,
            "links": links,
        }

    def collect_traces(self) -> dict:
        """This shard's tracer snapshot, in TraceArtifact dict form.

        Kept out of :meth:`collect` deliberately: observables feed the
        partition-invariance digest, and the trace plane must never
        move that needle.
        """
        tracer = (self.sim.telemetry.tracer
                  if self.telemetry is not None else None)
        if tracer is None or not tracer.enabled:
            return TraceArtifact([], meta={"shard": self.shard_id}
                                 ).to_dict()
        return TraceArtifact.from_tracer(
            tracer, meta={"shard": self.shard_id}).to_dict()
