"""The switch-side ZOF agent.

A :class:`SwitchAgent` adapts a :class:`~repro.dataplane.switch.Datapath`
onto the switch end of a :class:`~repro.southbound.channel.ControlChannel`:
it answers the handshake, applies programming verbs, and converts datapath
callbacks into asynchronous ZOF events.  It is the only component that
knows both worlds, keeping the dataplane wire-protocol-free.

A configurable ``flowmod_delay`` models the install latency of real
switch ASICs (typically 1–10 ms for TCAM updates); barriers serialise
against it, which is what makes barrier-paced update schemes (zUpdate
et al.) meaningful to measure.
"""

from __future__ import annotations

from typing import Optional

from repro.dataplane.flowtable import FlowEntry
from repro.dataplane.meter import MeterEntry
from repro.dataplane.switch import Datapath, Port
from repro.errors import DataplaneError, TableFullError
from repro.packet import Packet
from repro.southbound.channel import ChannelEndpoint, ControlChannel
from repro.southbound.messages import (
    BarrierReply,
    BarrierRequest,
    ControllerRole,
    EchoReply,
    EchoRequest,
    Error,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowStatsEntry,
    GroupMod,
    Hello,
    Message,
    MeterMod,
    ModCommand,
    PacketIn,
    PacketOut,
    PortDesc,
    PortStatus,
    RoleReply,
    RoleRequest,
    StatsKind,
    StatsReply,
    StatsRequest,
)

__all__ = ["SwitchAgent"]


class _AgentGroup:
    """Every ZOF agent bound to one datapath, plus shared role state.

    A datapath accepts one control channel per controller instance; the
    group owns what OF 1.3 scopes to the *switch* rather than the
    connection: the ``generation_id`` fence (monotonic across all
    connections, so a stale master cannot out-claim a newer one) and
    the at-most-one-PRIMARY arbitration (granting PRIMARY silently
    demotes the previous PRIMARY connection to SECONDARY).  Datapath
    callbacks fan out to every agent; per-agent role filters decide
    who actually forwards them.
    """

    __slots__ = ("agents", "generation_id")

    def __init__(self, datapath: Datapath) -> None:
        self.agents: list = []
        self.generation_id = 0
        datapath.on_packet_in = self._fan_packet_in
        datapath.on_flow_removed = self._fan_flow_removed
        datapath.on_port_status = self._fan_port_status

    def _fan_packet_in(self, packet, in_port, reason) -> None:
        for agent in self.agents:
            agent._on_packet_in(packet, in_port, reason)

    def _fan_flow_removed(self, table_id, entry, reason) -> None:
        for agent in self.agents:
            agent._on_flow_removed(table_id, entry, reason)

    def _fan_port_status(self, port, reason) -> None:
        for agent in self.agents:
            agent._on_port_status(port, reason)


class SwitchAgent:
    """Binds one datapath to one control channel (switch side)."""

    def __init__(
        self,
        datapath: Datapath,
        channel: ControlChannel,
        flowmod_delay: float = 0.0,
    ) -> None:
        self.datapath = datapath
        self.channel = channel
        self.endpoint: ChannelEndpoint = channel.switch_end
        self.flowmod_delay = flowmod_delay
        self._tel = datapath.telemetry
        self.peer_version: Optional[int] = None
        self.controller_role = ControllerRole.EQUAL
        #: Simulated time at which the last queued flow-mod completes;
        #: barriers reply no earlier than this.
        self._apply_cursor = 0.0

        group = getattr(datapath, "_agent_group", None)
        if group is None:
            group = _AgentGroup(datapath)
            datapath._agent_group = group
        group.agents.append(self)
        self._group = group

        self.endpoint.handler = self._handle
        self.endpoint.on_connect = self._on_connect
        self.endpoint.on_disconnect = self._on_disconnect

    @property
    def generation_id(self) -> int:
        """The datapath-wide role-generation fence (shared, monotonic)."""
        return self._group.generation_id

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def _on_connect(self) -> None:
        self.endpoint.send(Hello())

    def _on_disconnect(self) -> None:
        # Role state is per-connection and dies with it; the generation
        # fence belongs to the datapath and survives, so a reconnecting
        # controller must re-declare its role under the current fence.
        self.controller_role = ControllerRole.EQUAL

    def crash(self, wipe_state: bool = True) -> None:
        """Simulate the agent process dying (switch reboot).

        The control channel drops and, with ``wipe_state`` (the default),
        all programmed state — flow tables, groups, meters — is lost,
        like a hardware reboot.  ``wipe_state=False`` models only the
        agent process dying while the ASIC keeps forwarding on its
        installed rules (the ovs-vswitchd-crash case).
        """
        if self.channel.connected:
            self.channel.disconnect()
        self.peer_version = None
        self._apply_cursor = 0.0
        if wipe_state:
            for table in self.datapath.tables:
                table.clear()
            self.datapath.groups.clear()
            self.datapath.meters.clear()

    def restart(self) -> None:
        """Bring the agent back up: reconnect and re-handshake."""
        self.channel.connect()

    # ------------------------------------------------------------------
    # Datapath events -> ZOF messages
    # ------------------------------------------------------------------
    def _on_packet_in(self, packet: Packet, in_port: int,
                      reason: str) -> None:
        if not self.channel.connected:
            return
        if self.controller_role == ControllerRole.SECONDARY:
            return  # SLAVE connections get no asynchronous packet-ins
        data = packet.encode()
        if packet.trace_id is not None and self._tel.tracing:
            # The trace id cannot ride the wire; stash it keyed by the
            # encoded bytes and the controller adopts it on arrival.
            # Valid because the channel is ordered and lossless.
            self._tel.tracer.stash(("packet_in", in_port, data),
                                   packet.trace_id, scope=self.channel)
        self.endpoint.send(PacketIn(in_port, reason, data))

    def _on_flow_removed(self, table_id: int, entry: FlowEntry,
                         reason: str) -> None:
        if not self.channel.connected:
            return
        if self.controller_role == ControllerRole.SECONDARY:
            return  # the master narrates expiries, slaves stay quiet
        if not entry.flags & FlowMod.SEND_FLOW_REM:
            return
        now = self.datapath.sim.now
        self.endpoint.send(FlowRemoved(
            table_id=table_id,
            match=entry.match,
            priority=entry.priority,
            cookie=entry.cookie,
            reason=reason,
            duration=now - entry.install_time,
            packet_count=entry.packet_count,
            byte_count=entry.byte_count,
        ))

    def _on_port_status(self, port: Port, reason: str) -> None:
        if not self.channel.connected:
            return
        self.endpoint.send(PortStatus(reason, self._port_desc(port)))

    @staticmethod
    def _port_desc(port: Port) -> PortDesc:
        return PortDesc(port.number, port.mac.packed(), port.up)

    # ------------------------------------------------------------------
    # ZOF messages -> datapath operations
    # ------------------------------------------------------------------
    def _handle(self, msg: Message) -> None:
        if isinstance(msg, Hello):
            self.peer_version = msg.version
        elif isinstance(msg, EchoRequest):
            self._reply(msg, EchoReply(msg.data))
        elif isinstance(msg, FeaturesRequest):
            self._reply(msg, FeaturesReply(
                dpid=self.datapath.dpid,
                num_tables=len(self.datapath.tables),
                ports=[self._port_desc(p)
                       for p in self.datapath.ports.values()],
            ))
        elif (isinstance(msg, (FlowMod, GroupMod, MeterMod, PacketOut))
                and self.controller_role == ControllerRole.SECONDARY):
            # OF 1.3 §6.3.1: SLAVE controllers are read-only.
            self._send_error(msg, Error.BAD_ROLE,
                             "connection is SLAVE; mutation refused")
        elif isinstance(msg, FlowMod):
            self._queue_apply(self._apply_flow_mod, msg)
        elif isinstance(msg, GroupMod):
            self._queue_apply(self._apply_group_mod, msg)
        elif isinstance(msg, MeterMod):
            self._queue_apply(self._apply_meter_mod, msg)
        elif isinstance(msg, PacketOut):
            self._apply_packet_out(msg)
        elif isinstance(msg, BarrierRequest):
            self._schedule_barrier(msg)
        elif isinstance(msg, StatsRequest):
            self._reply(msg, self._build_stats(msg))
        elif isinstance(msg, RoleRequest):
            self._apply_role(msg)
        elif isinstance(msg, (Error, EchoReply)):
            pass  # informational
        else:
            self._reply(msg, Error(
                Error.BAD_REQUEST,
                f"switch cannot handle {type(msg).__name__}",
            ))

    def _reply(self, request: Message, response: Message) -> None:
        response.xid = request.xid
        self.endpoint.send(response)

    # -- programming verbs, serialised behind flowmod_delay -----------
    def _queue_apply(self, fn, msg: Message) -> None:
        sim = self.datapath.sim
        start = max(sim.now, self._apply_cursor)
        finish = start + self.flowmod_delay
        self._apply_cursor = finish
        if finish <= sim.now:
            fn(msg)
        else:
            sim.schedule_at(finish, fn, msg)

    def _schedule_barrier(self, msg: BarrierRequest) -> None:
        sim = self.datapath.sim
        at = max(sim.now, self._apply_cursor)
        if at <= sim.now:
            self._reply(msg, BarrierReply())
        else:
            sim.schedule_at(at, self._reply, msg, BarrierReply())

    def _apply_flow_mod(self, msg: FlowMod) -> None:
        try:
            if msg.command == FlowModCommand.ADD:
                entry = FlowEntry(
                    match=msg.match,
                    actions=msg.actions,
                    priority=msg.priority,
                    idle_timeout=msg.idle_timeout,
                    hard_timeout=msg.hard_timeout,
                    cookie=msg.cookie,
                    goto_table=msg.goto_table,
                    flags=msg.flags,
                )
                self.datapath.install_flow(entry, msg.table_id)
            elif msg.command == FlowModCommand.MODIFY:
                table = self.datapath.table(msg.table_id)
                for entry in table.entries(
                    lambda e: e.match.is_subset_of(msg.match)
                ):
                    entry.actions = list(msg.actions)
                    entry.flags = msg.flags
                # In-place action rewrite bypasses the table's mutation
                # hooks; cached microflow paths hold the old actions.
                self.datapath.invalidate_fast_path()
            elif msg.command in (FlowModCommand.DELETE,
                                 FlowModCommand.DELETE_STRICT):
                self.datapath.remove_flows(
                    table_id=msg.table_id,
                    match=msg.match,
                    priority=msg.priority,
                    strict=msg.command == FlowModCommand.DELETE_STRICT,
                )
            else:
                raise DataplaneError(f"unknown FlowMod command {msg.command}")
        except TableFullError as exc:
            self._send_error(msg, Error.TABLE_FULL, str(exc))
        except DataplaneError as exc:
            self._send_error(msg, Error.BAD_REQUEST, str(exc))

    def _apply_group_mod(self, msg: GroupMod) -> None:
        groups = self.datapath.groups
        try:
            if msg.command == ModCommand.ADD:
                groups.add(msg.to_entry())
            elif msg.command == ModCommand.MODIFY:
                groups.modify(msg.to_entry())
            elif msg.command == ModCommand.DELETE:
                groups.delete(msg.group_id)
            else:
                raise DataplaneError(f"unknown GroupMod command {msg.command}")
        except DataplaneError as exc:
            self._send_error(msg, Error.BAD_GROUP, str(exc))

    def _apply_meter_mod(self, msg: MeterMod) -> None:
        meters = self.datapath.meters
        try:
            if msg.command == ModCommand.ADD:
                meters.add(MeterEntry(
                    msg.meter_id, msg.rate_bps, msg.burst_bytes or None
                ))
            elif msg.command == ModCommand.MODIFY:
                meters.modify(MeterEntry(
                    msg.meter_id, msg.rate_bps, msg.burst_bytes or None
                ))
            elif msg.command == ModCommand.DELETE:
                meters.delete(msg.meter_id)
            else:
                raise DataplaneError(f"unknown MeterMod command {msg.command}")
        except DataplaneError as exc:
            self._send_error(msg, Error.BAD_METER, str(exc))

    def _apply_packet_out(self, msg: PacketOut) -> None:
        try:
            packet = Packet.decode(msg.data)
            if self._tel.tracing:
                tid, sent_at = self._tel.tracer.adopt(
                    ("packet_out", self.datapath.dpid, msg.data)
                )
                if tid is not None:
                    packet.trace_id = tid
                    self._tel.tracer.record(
                        tid, "channel.packet_out", "channel",
                        start=sent_at, dpid=self.datapath.dpid,
                    )
            self.datapath.send_packet_out(packet, msg.actions, msg.in_port)
        except DataplaneError as exc:
            self._send_error(msg, Error.BAD_ACTION, str(exc))

    def _apply_role(self, msg: RoleRequest) -> None:
        group = self._group
        if (msg.role != ControllerRole.EQUAL
                and msg.generation_id < group.generation_id):
            self._send_error(msg, Error.BAD_ROLE,
                             f"stale generation {msg.generation_id}")
            return
        if msg.role == ControllerRole.PRIMARY:
            # At most one PRIMARY per datapath: the previous master is
            # silently demoted (it learns via its own cluster view).
            for peer in group.agents:
                if (peer is not self
                        and peer.controller_role == ControllerRole.PRIMARY):
                    peer.controller_role = ControllerRole.SECONDARY
        self.controller_role = msg.role
        if msg.role != ControllerRole.EQUAL:
            group.generation_id = msg.generation_id
        self._reply(msg, RoleReply(self.controller_role,
                                   group.generation_id))

    def _send_error(self, request: Message, code: int, detail: str) -> None:
        err = Error(code, detail)
        err.xid = request.xid  # correlate with the failing request
        self.endpoint.send(err)

    # -- statistics ----------------------------------------------------
    def _build_stats(self, msg: StatsRequest) -> StatsReply:
        dp = self.datapath
        if msg.kind == StatsKind.PORT:
            return StatsReply(StatsKind.PORT, [
                p.stats() for p in dp.ports.values()
            ])
        if msg.kind == StatsKind.TABLE:
            return StatsReply(StatsKind.TABLE, [
                {
                    "table_id": t.table_id,
                    "active": len(t),
                    "lookups": t.lookup_count,
                    "matches": t.matched_count,
                }
                for t in dp.tables
            ])
        if msg.kind == StatsKind.FLOW:
            tables = (
                dp.tables if msg.table_id == 0xFF
                else [dp.table(msg.table_id)]
            )
            now = dp.sim.now
            entries = [
                FlowStatsEntry(
                    table_id=t.table_id,
                    priority=e.priority,
                    cookie=e.cookie,
                    packet_count=e.packet_count,
                    byte_count=e.byte_count,
                    duration=now - e.install_time,
                    match=e.match,
                )
                for t in tables
                for e in t
            ]
            return StatsReply(StatsKind.FLOW, entries)
        if msg.kind == StatsKind.AGGREGATE:
            packets = sum(e.packet_count for t in dp.tables for e in t)
            nbytes = sum(e.byte_count for t in dp.tables for e in t)
            return StatsReply(StatsKind.AGGREGATE, [{
                "packets": packets,
                "bytes": nbytes,
                "flows": dp.flow_count(),
            }])
        return StatsReply(msg.kind, [])

    def __repr__(self) -> str:
        return f"<SwitchAgent dpid={self.datapath.dpid}>"
