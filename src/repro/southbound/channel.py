"""The control channel between a switch and its controller.

Messages are *actually serialised* at the sending endpoint and reparsed at
the receiving one, so codec bugs surface in integration tests and the
byte counts reported for benchmark E9 are real.  The channel models
propagation latency, optional serialisation bandwidth, and in-order
delivery (ZOF, like OpenFlow, assumes a TCP-like transport).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Optional

from repro.errors import ChannelClosedError
from repro.sim import Simulator
from repro.southbound.messages import (
    Message,
    REPLY_TYPES,
    decode_message,
    encode_message,
)

__all__ = ["ControlChannel", "ChannelEndpoint", "ChannelStats"]


class ChannelStats:
    """Per-direction message and byte counters, broken down by type."""

    def __init__(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.by_type: Dict[str, int] = defaultdict(int)
        self.bytes_by_type: Dict[str, int] = defaultdict(int)

    def reset(self) -> None:
        """Zero all counters (measurement windows)."""
        self.__init__()

    def record(self, msg: Message, size: int) -> None:
        name = type(msg).__name__
        self.messages += 1
        self.bytes += size
        self.by_type[name] += 1
        self.bytes_by_type[name] += size

    def snapshot(self) -> dict:
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "by_type": dict(self.by_type),
        }

    def __repr__(self) -> str:
        return f"<ChannelStats {self.messages} msgs, {self.bytes} B>"


class ChannelEndpoint:
    """One side of a control channel.

    ``handler`` receives every inbound message.  :meth:`request` provides
    xid-correlated request/reply: the callback fires instead of the
    handler when the reply arrives.
    """

    def __init__(self, channel: "ControlChannel", name: str) -> None:
        self._channel = channel
        self.name = name
        self.handler: Optional[Callable[[Message], None]] = None
        self.on_connect: Optional[Callable[[], None]] = None
        self.on_disconnect: Optional[Callable[[], None]] = None
        self.sent = ChannelStats()
        self.received = ChannelStats()
        self._next_xid = 1
        self._pending: Dict[int, Callable[[Message], None]] = {}
        self.peer: "ChannelEndpoint" = None  # set by the channel
        # Telemetry children; bound by ControlChannel when enabled.
        self._m_msgs = None
        self._m_bytes = None

    def send(self, msg: Message) -> int:
        """Transmit ``msg``; assigns an xid when the caller left it 0."""
        if not self._channel.connected:
            raise ChannelClosedError(
                f"{self.name}: channel is down, cannot send "
                f"{type(msg).__name__}"
            )
        if msg.xid == 0:
            msg.xid = self._next_xid
            self._next_xid += 1
        wire = encode_message(msg)
        self.sent.record(msg, len(wire))
        if self._m_msgs is not None:
            self._m_msgs.inc()
            self._m_bytes.inc(len(wire))
        self._channel._deliver(self, wire)
        return msg.xid

    def request(self, msg: Message,
                callback: Callable[[Message], None]) -> int:
        """Send ``msg`` and route the same-xid reply to ``callback``."""
        xid = self.send(msg)
        self._pending[xid] = callback
        return xid

    def _receive(self, wire: bytes) -> None:
        msg = decode_message(wire)
        self.received.record(msg, len(wire))
        # Only genuine replies take part in xid correlation: both ends
        # assign xids independently, so an async event may coincide with
        # a pending request's xid without being its answer.
        if isinstance(msg, REPLY_TYPES):
            pending = self._pending.pop(msg.xid, None)
            if pending is not None:
                pending(msg)
                return
        if self.handler is not None:
            self.handler(msg)

    def _connection_changed(self, up: bool) -> None:
        if up and self.on_connect is not None:
            self.on_connect()
        if not up:
            self._pending.clear()
            if self.on_disconnect is not None:
                self.on_disconnect()

    def __repr__(self) -> str:
        return f"<ChannelEndpoint {self.name}>"


class ControlChannel:
    """A bidirectional, ordered, lossless message pipe with latency.

    Parameters
    ----------
    sim:
        Simulation kernel.
    latency:
        One-way propagation delay in seconds.  This is the dominant term
        in reactive flow setup (benchmark E1) — a controller 5 ms away
        costs every new flow ≥ 2×5 ms.
    bandwidth_bps:
        Serialisation rate; 0 means infinite (latency-only model).
    """

    def __init__(
        self,
        sim: Simulator,
        latency: float = 0.001,
        bandwidth_bps: float = 0.0,
        telemetry=None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.connected = False
        self.name = name
        self.switch_end = ChannelEndpoint(self, "switch")
        self.controller_end = ChannelEndpoint(self, "controller")
        self.switch_end.peer = self.controller_end
        self.controller_end.peer = self.switch_end
        self._busy_until: Dict[ChannelEndpoint, float] = {
            self.switch_end: 0.0,
            self.controller_end: 0.0,
        }
        if telemetry is not None and telemetry.enabled:
            msgs = telemetry.metrics.counter(
                "channel_messages_total", "Control messages sent",
                ("channel", "direction"),
            )
            nbytes = telemetry.metrics.counter(
                "channel_bytes_total", "Control bytes sent (wire size)",
                ("channel", "direction"),
            )
            label = name or "channel"
            self.switch_end._m_msgs = msgs.labels(label, "to_controller")
            self.switch_end._m_bytes = nbytes.labels(label, "to_controller")
            self.controller_end._m_msgs = msgs.labels(label, "to_switch")
            self.controller_end._m_bytes = nbytes.labels(label, "to_switch")

    def connect(self) -> None:
        """Bring the channel up and notify both endpoints."""
        if self.connected:
            return
        self.connected = True
        self.switch_end._connection_changed(True)
        self.controller_end._connection_changed(True)

    def disconnect(self) -> None:
        """Tear the channel down; in-flight messages are lost."""
        if not self.connected:
            return
        self.connected = False
        self.switch_end._connection_changed(False)
        self.controller_end._connection_changed(False)

    def _deliver(self, sender: ChannelEndpoint, wire: bytes) -> None:
        receiver = sender.peer
        depart = self.sim.now
        if self.bandwidth_bps:
            start = max(depart, self._busy_until[sender])
            depart = start + len(wire) * 8 / self.bandwidth_bps
            self._busy_until[sender] = depart
        arrival_delay = (depart - self.sim.now) + self.latency
        self.sim.schedule(arrival_delay, self._arrive, receiver, wire)

    def _arrive(self, receiver: ChannelEndpoint, wire: bytes) -> None:
        if not self.connected:
            return  # lost in the disconnect
        receiver._receive(wire)

    def total_stats(self) -> dict:
        """Combined both-direction counters (benchmark E9 reads this)."""
        return {
            "to_controller": self.switch_end.sent.snapshot(),
            "to_switch": self.controller_end.sent.snapshot(),
        }

    def __repr__(self) -> str:
        state = "up" if self.connected else "down"
        return f"<ControlChannel {state} latency={self.latency * 1e3:.2f}ms>"
